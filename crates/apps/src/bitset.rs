//! A growable bitset with a chunk-friendly wire form.
//!
//! ClickLog's Phase 2 represents the set of distinct IPs as a bitset
//! (paper Figure 3: `distinct |= ip`), and its merge is a word-wise OR of
//! partial bitsets. The wire form is `Vec<FixedU64>` words: a populated
//! bitset's words are dense bit patterns that varints would spend 9–10
//! bytes (and a data-dependent decode loop) on, while the fixed form is
//! eight flat little-endian bytes per word — constant-stride, so the
//! Phase 3 bit count and the Phase 2 OR-merge run branch-free loops over
//! the word views ([`hurricane_format::FixedStride`]). The legacy
//! `Vec<u64>` varint form is still available via
//! [`BitSet::into_words`]/[`BitSet::from_words`].

use hurricane_format::{FixedU64, SeqView};

/// A fixed-capacity bitset indexed by `u32` keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitset with room for `bits` bits preallocated.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Sets bit `i`, growing as needed.
    pub fn set(&mut self, i: u32) {
        let word = (i / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (i % 64);
    }

    /// Returns whether bit `i` is set.
    pub fn get(&self, i: u32) -> bool {
        let word = (i / 64) as usize;
        self.words
            .get(word)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of set bits (the distinct count of ClickLog's Phase 3).
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Word-wise OR with another bitset — the Phase 2 merge
    /// (`output.insert(partial1 | partial2)`).
    pub fn or_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Consumes into the wire form.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Builds from the wire form.
    pub fn from_words(words: Vec<u64>) -> Self {
        Self { words }
    }

    /// Merges two wire-form bitsets (the owned-combiner shape usable
    /// with `hurricane_core::merges::ReduceMerge::new`).
    pub fn or_words(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
        let (mut long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        for (i, w) in short.into_iter().enumerate() {
            long[i] |= w;
        }
        long
    }

    /// Consumes into the fixed-stride wire form (see the module docs).
    pub fn into_fixed_words(self) -> Vec<FixedU64> {
        self.words.into_iter().map(FixedU64).collect()
    }

    /// Builds from the fixed-stride wire form.
    pub fn from_fixed_words(words: Vec<FixedU64>) -> Self {
        Self {
            words: words.into_iter().map(|w| w.0).collect(),
        }
    }

    /// ORs a borrowed word-sequence view into an owned accumulator — the
    /// Phase 2 merge fold for `hurricane_core::merges::ReduceMerge::
    /// folding`: the partial bitset is read straight out of the chunk
    /// through the word-OR kernel (`hurricane_format::kernels`), never
    /// materialized as an owned `Vec`.
    pub fn or_fixed_words_into(acc: &mut Vec<FixedU64>, words: SeqView<'_, FixedU64>) {
        words.or_into(acc);
    }

    /// Counts the set bits of a borrowed fixed-word view — Phase 3's
    /// per-record fold, running the popcount kernel over the eight-byte
    /// little-endian words in place.
    pub fn count_fixed_words(words: SeqView<'_, FixedU64>) -> u64 {
        words.popcount()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut bs = BitSet::new();
        assert!(!bs.get(100));
        bs.set(0);
        bs.set(63);
        bs.set(64);
        bs.set(1000);
        assert!(bs.get(0) && bs.get(63) && bs.get(64) && bs.get(1000));
        assert!(!bs.get(1));
        assert_eq!(bs.count(), 4);
    }

    #[test]
    fn duplicate_sets_are_idempotent() {
        let mut bs = BitSet::new();
        bs.set(42);
        bs.set(42);
        assert_eq!(bs.count(), 1);
    }

    #[test]
    fn or_merges_distinct_sets() {
        let mut a = BitSet::new();
        a.set(1);
        a.set(100);
        let mut b = BitSet::new();
        b.set(2);
        b.set(100);
        b.set(5000);
        a.or_with(&b);
        assert_eq!(a.count(), 4);
        assert!(a.get(5000));
    }

    #[test]
    fn or_words_handles_length_mismatch() {
        let a = vec![0b1u64];
        let b = vec![0b10u64, 0b100];
        let merged = BitSet::or_words(a, b);
        assert_eq!(merged, vec![0b11, 0b100]);
        // Symmetric.
        let merged2 = BitSet::or_words(vec![0b10u64, 0b100], vec![0b1u64]);
        assert_eq!(merged2, vec![0b11, 0b100]);
    }

    #[test]
    fn wire_roundtrip() {
        let mut bs = BitSet::with_capacity(256);
        bs.set(7);
        bs.set(200);
        let words = bs.clone().into_words();
        assert_eq!(BitSet::from_words(words), bs);
        let fixed = bs.clone().into_fixed_words();
        assert_eq!(BitSet::from_fixed_words(fixed), bs);
    }

    #[test]
    fn fixed_word_fold_matches_owned_or() {
        use hurricane_format::{Record, RecordView};
        let mut a = BitSet::new();
        a.set(1);
        a.set(100);
        let mut b = BitSet::new();
        b.set(2);
        b.set(5000);
        // Encode b's fixed words, view them, and OR into a's words.
        let b_words = b.clone().into_fixed_words();
        let mut buf = Vec::new();
        b_words.encode(&mut buf);
        let mut slice = buf.as_slice();
        let view = Vec::<FixedU64>::decode_view(&mut slice).unwrap();
        let mut acc = a.clone().into_fixed_words();
        BitSet::or_fixed_words_into(&mut acc, view);
        let merged = BitSet::from_fixed_words(acc);
        let mut expect = a.clone();
        expect.or_with(&b);
        assert_eq!(merged, expect);
        // And the borrowed count agrees with the owned count.
        let mut buf = Vec::new();
        merged.clone().into_fixed_words().encode(&mut buf);
        let mut slice = buf.as_slice();
        let view = Vec::<FixedU64>::decode_view(&mut slice).unwrap();
        assert_eq!(BitSet::count_fixed_words(view), expect.count());
    }
}
