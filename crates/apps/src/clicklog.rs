//! ClickLog on the Hurricane runtime (paper §2.1, Figures 1–3).
//!
//! Three phases over a log of clicks:
//!
//! 1. **Phase 1** maps each IP to its geographic region (simulated
//!    geolocation = equal adjacent key ranges) and routes it to the
//!    region's bag. Clones need no merge: their outputs concatenate.
//! 2. **Phase 2** (per region) builds the distinct-IP bitset. Clones each
//!    build a partial bitset from the chunks they happened to remove;
//!    the merge ORs the partials (`output.insert(partial1 | partial2)`).
//! 3. **Phase 3** (per region) counts the bits; its merge sums counts.
//!
//! Hot-path mechanics: bitsets travel as `Vec<FixedU64>` — fixed-stride
//! eight-byte words rather than varints (a populated word is a dense bit
//! pattern that costs 9–10 varint bytes and a data-dependent decode
//! loop). Phase 3's bit count and Phase 2's OR-merge
//! ([`hurricane_core::merges::ReduceMerge::folding`]) both run over
//! *borrowed* word views read straight out of the chunk with trusted
//! constant-stride loads — the partial bitsets are never materialized as
//! owned vectors on the merge path; only the single surviving
//! accumulator is.

use crate::bitset::BitSet;
use hurricane_core::graph::{AppGraph, GraphBag, GraphBuilder};
use hurricane_core::merges::ReduceMerge;
use hurricane_core::task::TaskCtx;
use hurricane_core::{AppReport, EngineError, HurricaneApp, HurricaneConfig};
use hurricane_storage::StorageCluster;
use hurricane_workloads::clicklog::region_of;
use std::sync::Arc;

/// Static parameters of a ClickLog job.
#[derive(Debug, Clone, Copy)]
pub struct ClickLogJob {
    /// Number of geographic regions.
    pub regions: usize,
    /// Size of the IP key space.
    pub num_ips: usize,
}

impl Default for ClickLogJob {
    fn default() -> Self {
        Self {
            regions: 8,
            num_ips: 1 << 16,
        }
    }
}

/// A built ClickLog application graph plus its notable bags.
pub struct ClickLogPlan {
    /// The validated graph.
    pub graph: AppGraph,
    /// The click-record source bag (fill with `u32` IP keys).
    pub input: GraphBag,
    /// Per-region distinct-count sink bags (each holds one `u64`).
    pub counts: Vec<GraphBag>,
}

impl ClickLogJob {
    /// Builds the three-phase application graph of Figure 1.
    pub fn plan(&self) -> ClickLogPlan {
        let regions = self.regions;
        let num_ips = self.num_ips;
        let mut g = GraphBuilder::new();
        let input = g.source("clicklog");
        let region_bags: Vec<GraphBag> =
            (0..regions).map(|r| g.bag(format!("region.{r}"))).collect();
        let outs: Vec<GraphBag> = region_bags.clone();
        // Phase 1 is the record-routing hot loop: stream each chunk's
        // records as borrowed views and re-emit per region. Holding the
        // chunk locally lets the closure write through `ctx` while the
        // views borrow the chunk.
        g.task("phase1", &[input], &outs, move |ctx: &mut TaskCtx| {
            while let Some(chunk) = ctx.next_chunk(0)? {
                hurricane_format::try_for_each_view::<u32, EngineError, _>(&chunk, |ip| {
                    let r = region_of(ip, num_ips, regions) as usize;
                    ctx.write_record(r, &ip)
                })?;
            }
            Ok(())
        });
        let mut counts = Vec::with_capacity(regions);
        for (r, &bag) in region_bags.iter().enumerate() {
            let distinct = g.bag(format!("distinct.{r}"));
            g.task_with_merge(
                format!("phase2.{r}"),
                &[bag],
                &[distinct],
                |ctx: &mut TaskCtx| {
                    let mut bits = BitSet::new();
                    ctx.for_each_record::<u32, _>(0, |ip| bits.set(ip))?;
                    ctx.write_record(0, &bits.into_fixed_words())?;
                    Ok(())
                },
                // Partial bitsets OR into the accumulator as borrowed
                // fixed-word views — the merge owns one bitset total.
                ReduceMerge::folding(BitSet::or_fixed_words_into),
            );
            let count = g.bag(format!("count.{r}"));
            g.task_with_merge(
                format!("phase3.{r}"),
                &[distinct],
                &[count],
                |ctx: &mut TaskCtx| {
                    // Count bits straight off the borrowed fixed-stride
                    // word views — no Vec is materialized per record.
                    let total = ctx.fold_records::<Vec<hurricane_format::FixedU64>, u64, _>(
                        0,
                        0,
                        |acc, words| acc + BitSet::count_fixed_words(words),
                    )?;
                    ctx.write_record(0, &total)?;
                    Ok(())
                },
                ReduceMerge::new(|a: u64, b: u64| a + b),
            );
            counts.push(count);
        }
        ClickLogPlan {
            graph: g.build().expect("clicklog graph is well-formed"),
            input,
            counts,
        }
    }

    /// Runs the job end-to-end on `cluster` and returns per-region
    /// distinct counts plus the run report.
    pub fn run(
        &self,
        cluster: Arc<StorageCluster>,
        config: HurricaneConfig,
        records: impl IntoIterator<Item = u32>,
    ) -> Result<(Vec<u64>, AppReport), EngineError> {
        let plan = self.plan();
        let mut app = HurricaneApp::deploy(plan.graph, cluster, config)?;
        app.fill_source(plan.input, records)?;
        let report = app.run()?;
        let mut counts = Vec::with_capacity(plan.counts.len());
        for &bag in &plan.counts {
            let vals: Vec<u64> = app.read_records(bag)?;
            counts.push(vals.into_iter().sum());
        }
        Ok((counts, report))
    }

    /// Single-threaded reference: distinct IPs per region.
    pub fn reference(&self, records: impl IntoIterator<Item = u32>) -> Vec<u64> {
        let mut sets = vec![BitSet::new(); self.regions];
        for ip in records {
            let r = region_of(ip, self.num_ips, self.regions) as usize;
            sets[r].set(ip);
        }
        sets.into_iter().map(|s| s.count()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_storage::ClusterConfig;
    use hurricane_workloads::clicklog::{ClickLogGen, ClickLogSpec};
    use std::time::Duration;

    fn config() -> HurricaneConfig {
        HurricaneConfig {
            compute_nodes: 4,
            worker_slots: 2,
            chunk_size: 16 * 1024,
            clone_interval: Duration::from_millis(10),
            master_poll: Duration::from_millis(1),
            ..Default::default()
        }
    }

    fn run_and_check(skew: f64, records: u64) {
        let job = ClickLogJob {
            regions: 8,
            num_ips: 1 << 14,
        };
        let gen = ClickLogGen::new(ClickLogSpec {
            num_ips: job.num_ips,
            regions: job.regions,
            skew,
            records,
            seed: 0xFEED,
        });
        let data: Vec<u32> = gen.collect();
        let expected = job.reference(data.iter().copied());
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let (counts, report) = job
            .run(cluster, config(), data.iter().copied())
            .expect("clicklog run");
        assert_eq!(counts, expected, "distinct counts must match reference");
        assert!(report.merges_run >= job.regions as u32 * 2 - 2);
    }

    #[test]
    fn uniform_clicklog_is_exact() {
        run_and_check(0.0, 30_000);
    }

    #[test]
    fn skewed_clicklog_is_exact() {
        run_and_check(1.0, 30_000);
    }

    #[test]
    fn reference_counts_distinct() {
        let job = ClickLogJob {
            regions: 2,
            num_ips: 100,
        };
        // Keys 0..49 => region 0, 50..99 => region 1 (with duplicates).
        let counts = job.reference(vec![0, 1, 1, 49, 50, 50, 99]);
        assert_eq!(counts, vec![3, 2]);
    }

    #[test]
    fn empty_input_gives_zero_counts() {
        let job = ClickLogJob {
            regions: 4,
            num_ips: 1 << 10,
        };
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let (counts, _) = job.run(cluster, config(), Vec::<u32>::new()).unwrap();
        assert_eq!(counts, vec![0, 0, 0, 0]);
    }
}
