//! Partitioned hash join on the Hurricane runtime (paper §5.3).
//!
//! The paper's join "splits the smaller relation into 32 equal-sized
//! partitions, and sorts them in memory. It then creates 32 corresponding
//! partitions in the larger relation, and finally streams the larger
//! partitions, while the smaller partition is in memory, outputting
//! matching keys."
//!
//! Here the in-memory build structure is a hash table (same role as the
//! paper's sorted array: an in-memory index over the small partition).
//! The crucial skew property is how cloning composes with the two-sided
//! input: every clone of a probe task *snapshots* the build side in full
//! (non-destructive concurrent scan) while the probe side's chunks are
//! removed exactly-once — so clones split the probe work for a hot
//! partition with zero repartitioning, and the output needs no merge
//! (concatenation of match tuples is already correct).
//!
//! Hot-path mechanics: the partitioned relations travel as
//! [`FixedTuple`] — `(FixedU32, FixedU64)`, a constant 12-byte stride —
//! so every partition-bag chunk is a flat array of tuples. The probe
//! loop types each chunk with [`hurricane_format::stride_records`] and
//! iterates it with trusted constant-stride loads: no per-record varint
//! loop, no validation pass, no `Vec`.

use hurricane_core::graph::{AppGraph, GraphBag, GraphBuilder};
use hurricane_core::task::TaskCtx;
use hurricane_core::{AppReport, EngineError, HurricaneApp, HurricaneConfig};
use hurricane_format::{stride_records, FixedU32, FixedU64};
use hurricane_storage::StorageCluster;
use hurricane_workloads::join::Tuple;
use std::collections::HashMap;
use std::sync::Arc;

/// One joined output row: `(key, r_payload, s_payload)`.
pub type JoinRow = (u32, u64, u64);

/// The partitioned wire form of one relation tuple: fixed-stride ints
/// (12 bytes), giving partition-bag chunks O(1) random access and
/// branch-free iteration.
pub type FixedTuple = (FixedU32, FixedU64);

/// Static parameters of a join job.
#[derive(Debug, Clone, Copy)]
pub struct HashJoinJob {
    /// Number of key-hash partitions.
    pub partitions: usize,
}

impl Default for HashJoinJob {
    fn default() -> Self {
        Self { partitions: 8 }
    }
}

/// A built join graph plus its notable bags.
pub struct HashJoinPlan {
    /// The validated graph.
    pub graph: AppGraph,
    /// Small (build) relation source: fill with [`Tuple`]s.
    pub r_input: GraphBag,
    /// Large (probe) relation source: fill with [`Tuple`]s.
    pub s_input: GraphBag,
    /// Join output bags, one per partition; records are
    /// `(key, r_payload, s_payload)`.
    pub outputs: Vec<GraphBag>,
}

fn partition_of(key: u32, partitions: usize) -> usize {
    (hurricane_common::SplitMix64::mix(key as u64) % partitions as u64) as usize
}

impl HashJoinJob {
    /// Builds the two-stage join graph: partition both relations, then
    /// probe each partition pair.
    pub fn plan(&self) -> HashJoinPlan {
        let parts = self.partitions;
        let mut g = GraphBuilder::new();
        let r_input = g.source("relation.r");
        let s_input = g.source("relation.s");
        let r_parts: Vec<GraphBag> = (0..parts).map(|p| g.bag(format!("r.{p}"))).collect();
        let s_parts: Vec<GraphBag> = (0..parts).map(|p| g.bag(format!("s.{p}"))).collect();
        let all_outs: Vec<GraphBag> = r_parts.iter().chain(&s_parts).copied().collect();
        g.task(
            "partition",
            &[r_input, s_input],
            &all_outs,
            move |ctx: &mut TaskCtx| {
                // Route both relations by key hash, streaming borrowed
                // views per chunk (Tuple's view is itself: two ints) and
                // re-emitting in the fixed-stride partition wire form.
                while let Some(chunk) = ctx.next_chunk(0)? {
                    hurricane_format::try_for_each_view::<Tuple, EngineError, _>(&chunk, |t| {
                        let fixed: FixedTuple = (FixedU32(t.0), FixedU64(t.1));
                        ctx.write_record(partition_of(t.0, parts), &fixed)
                    })?;
                }
                while let Some(chunk) = ctx.next_chunk(1)? {
                    hurricane_format::try_for_each_view::<Tuple, EngineError, _>(&chunk, |t| {
                        let fixed: FixedTuple = (FixedU32(t.0), FixedU64(t.1));
                        ctx.write_record(parts + partition_of(t.0, parts), &fixed)
                    })?;
                }
                Ok(())
            },
        );
        let mut outputs = Vec::with_capacity(parts);
        for p in 0..parts {
            let out = g.bag(format!("joined.{p}"));
            g.task(
                format!("probe.{p}"),
                &[r_parts[p], s_parts[p]],
                &[out],
                move |ctx: &mut TaskCtx| {
                    // Build side: full non-destructive scan (every clone
                    // holds the whole table, paper §4.3's concurrent read).
                    let build: Vec<FixedTuple> = ctx.snapshot_input(0)?;
                    let mut table: HashMap<u32, Vec<u64>> = HashMap::new();
                    for (FixedU32(k), FixedU64(payload)) in build {
                        table.entry(k).or_default().push(payload);
                    }
                    // Probe side: exactly-once chunks shared across clones.
                    // Every chunk is a flat array of 12-byte tuples. The
                    // key column is gathered out of the interleaved run
                    // into a dense vector first (the strided-gather
                    // kernel; the buffer is reused across chunks), so the
                    // table-probe loop scans contiguous keys and decodes
                    // a tuple's payload only on a match.
                    let mut keys: Vec<u32> = Vec::new();
                    while let Some(chunk) = ctx.next_chunk(1)? {
                        let tuples = stride_records::<FixedTuple>(&chunk)?;
                        keys.clear();
                        tuples.gather_prefix_u32_into(&mut keys);
                        for (i, &k) in keys.iter().enumerate() {
                            if let Some(rs) = table.get(&k) {
                                let (_, FixedU64(s_payload)) = tuples.get(i);
                                for &r_payload in rs {
                                    ctx.write_record(0, &(k, r_payload, s_payload))?;
                                }
                            }
                        }
                    }
                    Ok(())
                },
            );
            outputs.push(out);
        }
        HashJoinPlan {
            graph: g.build().expect("join graph is well-formed"),
            r_input,
            s_input,
            outputs,
        }
    }

    /// Runs the join and returns all output tuples plus the run report.
    pub fn run(
        &self,
        cluster: Arc<StorageCluster>,
        config: HurricaneConfig,
        r: &[Tuple],
        s: &[Tuple],
    ) -> Result<(Vec<JoinRow>, AppReport), EngineError> {
        let plan = self.plan();
        let mut app = HurricaneApp::deploy(plan.graph, cluster, config)?;
        app.fill_source(plan.r_input, r.iter().copied())?;
        app.fill_source(plan.s_input, s.iter().copied())?;
        let report = app.run()?;
        let mut out = Vec::new();
        for &bag in &plan.outputs {
            out.extend(app.read_records::<(u32, u64, u64)>(bag)?);
        }
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_storage::ClusterConfig;
    use hurricane_workloads::join::{large_relation, reference_join, small_relation, JoinSpec};
    use std::time::Duration;

    fn config() -> HurricaneConfig {
        HurricaneConfig {
            compute_nodes: 4,
            worker_slots: 2,
            chunk_size: 16 * 1024,
            clone_interval: Duration::from_millis(10),
            master_poll: Duration::from_millis(1),
            ..Default::default()
        }
    }

    fn check_join(skew: f64) {
        let spec = JoinSpec {
            num_keys: 512,
            small_tuples: 3_000,
            large_tuples: 12_000,
            skew,
            seed: 0xBEEF,
        };
        let r = small_relation(&spec);
        let s = large_relation(&spec);
        let mut expected = reference_join(&r, &s);
        expected.sort_unstable();
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let (mut got, _report) = HashJoinJob { partitions: 8 }
            .run(cluster, config(), &r, &s)
            .expect("join run");
        got.sort_unstable();
        assert_eq!(got.len(), expected.len(), "join cardinality");
        assert_eq!(got, expected, "join result must match nested-loop oracle");
    }

    #[test]
    fn uniform_join_matches_reference() {
        check_join(0.0);
    }

    #[test]
    fn skewed_join_matches_reference() {
        check_join(1.0);
    }

    #[test]
    fn empty_relations_yield_empty_join() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let (out, _) = HashJoinJob { partitions: 4 }
            .run(cluster, config(), &[], &[(1, 1)])
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn partition_function_covers_all_partitions() {
        let parts = 8;
        let mut seen = vec![false; parts];
        for k in 0..1000u32 {
            seen[partition_of(k, parts)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
