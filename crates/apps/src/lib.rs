//! Reference analytics applications on Hurricane (paper §2.1, §5.3).
//!
//! Three applications exercise the full programming model on the real
//! (threaded) runtime:
//!
//! * [`clicklog`] — the paper's running example: geolocate click records
//!   into regions, count distinct IPs per region with a bitset whose
//!   clone partials reconcile through an OR merge (Figures 1–3).
//! * [`hashjoin`] — partitioned hash join: the build side is read in
//!   full by every clone (the bag API's concurrent-scan mode) while the
//!   probe side's chunks are shared exactly-once, so cloning splits
//!   probe work without any repartitioning.
//! * [`pagerank`] — five unrolled iterations of PageRank, the paper's
//!   multi-stage application: per-iteration scatter tasks whose clone
//!   partials merge by keyed contribution sums.
//!
//! Each module also contains a single-threaded *reference* implementation
//! used as the correctness oracle in tests and examples, plus a [`bitset`]
//! substrate shared by ClickLog.

pub mod bitset;
pub mod clicklog;
pub mod hashjoin;
pub mod pagerank;

pub use bitset::BitSet;
