//! PageRank on the Hurricane runtime (paper §5.3).
//!
//! "PageRank is essentially a scatter of vertex values performed by
//! joining vertex identifiers with outgoing edge source vertex
//! identifiers, followed by a groupby aggregation on vertex identifiers."
//! Iterations are unrolled into the application graph (the paper's
//! "long multi-phase application graphs").
//!
//! State representation: a *rank bag* holds `(vertex, contribution, deg)`
//! records, where the effective rank is `0.15/N + 0.85 · contribution`.
//! Each iteration's scatter task snapshots the full rank bag (every clone
//! needs the whole vector) and consumes its private copy of the edge bag
//! chunk-by-chunk — so clones split edge traversal, the skewed part of
//! the work on power-law graphs. Clone partials merge by keyed
//! contribution sums.
//!
//! Hot-path mechanics: the init task fans the edge list into one private
//! copy per iteration by **chunk splatting** — each input chunk forwards
//! to all `iters` outputs as refcount bumps (`TaskCtx::splat_chunk`),
//! never re-encoding an edge — and both the degree count and the
//! per-iteration edge traversal stream **borrowed views**
//! (`TaskCtx::for_each_record`), so the steady-state loop does no
//! per-record allocation. Clone partials reconcile through *borrowed*
//! keyed merges ([`KeyedMerge::folding`]): the merge streams `(vertex,
//! (contrib, deg))` views out of the chunk bytes and owns only the
//! surviving per-vertex accumulators.

use hurricane_core::graph::{AppGraph, GraphBag, GraphBuilder};
use hurricane_core::merges::{ConcatMerge, KeyedMerge};
use hurricane_core::task::{BagReader, BagWriter, MergeLogic, TaskCtx};
use hurricane_core::{AppReport, EngineError, HurricaneApp, HurricaneConfig};
use hurricane_storage::StorageCluster;
use std::sync::Arc;

/// PageRank damping factor.
pub const DAMPING: f64 = 0.85;

/// One rank record on the wire: `(vertex, contribution, out_degree)`.
pub type RankRecord = (u32, f64, u32);

/// Static parameters of a PageRank job.
#[derive(Debug, Clone, Copy)]
pub struct PageRankJob {
    /// Number of vertices (ids `0..n`).
    pub vertices: u32,
    /// Number of iterations (the paper runs 5).
    pub iterations: usize,
}

impl Default for PageRankJob {
    fn default() -> Self {
        Self {
            vertices: 1 << 10,
            iterations: 5,
        }
    }
}

/// Init-task merge: output 0 (the rank/degree table) merges by keyed
/// degree sum; outputs ≥ 1 (per-iteration edge copies) concatenate.
struct InitMerge {
    vertices: u32,
}

impl MergeLogic for InitMerge {
    fn merge(
        &self,
        output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        if output_index == 0 {
            // Partial records are (v, (contrib, partial_deg)): every
            // partial carries the same initial contribution (1/N), and
            // the per-clone partial degrees sum to the true out-degree.
            // The fold runs over borrowed views; only the per-vertex
            // accumulator is owned.
            let _ = self.vertices;
            let keyed =
                KeyedMerge::<u32, (f64, u32), _>::folding(|acc: &mut (f64, u32), b: (f64, u32)| {
                    acc.1 += b.1
                });
            keyed.merge(0, partials, out)
        } else {
            ConcatMerge.merge(output_index, partials, out)
        }
    }
}

impl PageRankJob {
    /// Builds the unrolled iteration graph.
    pub fn plan(&self) -> PageRankPlan {
        let n = self.vertices;
        let iters = self.iterations;
        let mut g = GraphBuilder::new();
        let edges_src = g.source("edges");
        let ranks0 = g.bag("ranks.0");
        let edge_copies: Vec<GraphBag> = (0..iters).map(|i| g.bag(format!("edges.{i}"))).collect();
        let mut init_outs = vec![ranks0];
        init_outs.extend(&edge_copies);
        // Init: count out-degrees, emit initial rank records, and fan the
        // edge list out into one private copy per iteration (bags are
        // consumed destructively; iterations each need their own).
        //
        // The fan-out is *chunk splatting*: each input chunk is already
        // the exact byte stream an edge copy needs, so it is forwarded to
        // all `iters` outputs as refcount bumps — the per-record
        // re-encode-k-times loop this task used to run is gone, and the
        // degree count reads the same chunk through borrowed views.
        g.task_with_merge(
            "init",
            &[edges_src],
            &init_outs,
            move |ctx: &mut TaskCtx| {
                let copy_outs: Vec<usize> = (1..=iters).collect();
                let mut deg = vec![0u32; n as usize];
                while let Some(chunk) = ctx.next_chunk(0)? {
                    hurricane_format::for_each_view::<(u32, u32), _>(&chunk, |(u, _)| {
                        deg[u as usize] += 1;
                    })?;
                    ctx.splat_chunk(&copy_outs, &chunk)?;
                }
                for v in 0..n {
                    // (vertex, (contribution, partial degree)) — keyed
                    // merge reconciles degrees across clones.
                    ctx.write_record(0, &(v, (1.0 / n as f64, deg[v as usize])))?;
                }
                Ok(())
            },
            InitMerge { vertices: n },
        );
        let mut prev_ranks = ranks0;
        for (i, &edges_i) in edge_copies.iter().enumerate() {
            let next_ranks = g.bag(format!("ranks.{}", i + 1));
            g.task_with_merge(
                format!("iter.{i}"),
                &[prev_ranks, edges_i],
                &[next_ranks],
                move |ctx: &mut TaskCtx| {
                    // Full rank/degree table: every clone needs all of it.
                    // The decode buffer lives in a thread-local so clones
                    // executing on the same worker thread reuse its
                    // capacity instead of re-collecting a Vec each run.
                    thread_local! {
                        static TABLE: std::cell::RefCell<Vec<(u32, (f64, u32))>> =
                            const { std::cell::RefCell::new(Vec::new()) };
                    }
                    let mut rank = vec![0.0f64; n as usize];
                    let mut deg = vec![0u32; n as usize];
                    TABLE.with(|buf| -> Result<(), EngineError> {
                        let mut table = buf.borrow_mut();
                        ctx.snapshot_input_into(0, &mut table)?;
                        for &(v, (contrib, d)) in table.iter() {
                            rank[v as usize] = 0.15 / n as f64 + DAMPING * contrib;
                            deg[v as usize] = d;
                        }
                        Ok(())
                    })?;
                    // Edge chunks: exactly-once across clones — this is
                    // where skewed work splits. Borrowed views keep the
                    // traversal allocation-free.
                    let mut acc = vec![0.0f64; n as usize];
                    ctx.for_each_record::<(u32, u32), _>(1, |(u, v)| {
                        let d = deg[u as usize];
                        if d > 0 {
                            acc[v as usize] += rank[u as usize] / d as f64;
                        }
                    })?;
                    for v in 0..n {
                        ctx.write_record(0, &(v, (acc[v as usize], deg[v as usize])))?;
                    }
                    Ok(())
                },
                // Per-vertex contribution sums fold in place over
                // borrowed views (rank combine on the borrowed plane).
                KeyedMerge::<u32, (f64, u32), _>::folding(|acc: &mut (f64, u32), b: (f64, u32)| {
                    acc.0 += b.0;
                    acc.1 = acc.1.max(b.1);
                }),
            );
            prev_ranks = next_ranks;
        }
        PageRankPlan {
            graph: g.build().expect("pagerank graph is well-formed"),
            edges: edges_src,
            final_ranks: prev_ranks,
            vertices: n,
        }
    }

    /// Runs the job and returns the final rank vector plus the report.
    pub fn run(
        &self,
        cluster: Arc<StorageCluster>,
        config: HurricaneConfig,
        edges: &[(u32, u32)],
    ) -> Result<(Vec<f64>, AppReport), EngineError> {
        let plan = self.plan();
        let mut app = HurricaneApp::deploy(plan.graph, cluster, config)?;
        app.fill_source(plan.edges, edges.iter().copied())?;
        let report = app.run()?;
        let records: Vec<(u32, (f64, u32))> = app.read_records(plan.final_ranks)?;
        let n = plan.vertices as usize;
        let mut ranks = vec![0.0f64; n];
        for (v, (contrib, _)) in records {
            ranks[v as usize] = 0.15 / n as f64 + DAMPING * contrib;
        }
        Ok((ranks, report))
    }

    /// Single-threaded reference PageRank (same damping, same iteration
    /// structure).
    pub fn reference(&self, edges: &[(u32, u32)]) -> Vec<f64> {
        let n = self.vertices as usize;
        let mut deg = vec![0u32; n];
        for &(u, _) in edges {
            deg[u as usize] += 1;
        }
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..self.iterations {
            let mut acc = vec![0.0f64; n];
            for &(u, v) in edges {
                if deg[u as usize] > 0 {
                    acc[v as usize] += rank[u as usize] / deg[u as usize] as f64;
                }
            }
            for v in 0..n {
                rank[v] = 0.15 / n as f64 + DAMPING * acc[v];
            }
        }
        rank
    }
}

/// A built PageRank graph plus its notable bags.
pub struct PageRankPlan {
    /// The validated graph.
    pub graph: AppGraph,
    /// Edge-list source (fill with `(src, dst)` pairs).
    pub edges: GraphBag,
    /// The final rank bag (records are [`RankRecord`]-shaped keyed pairs).
    pub final_ranks: GraphBag,
    /// Vertex count.
    pub vertices: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_storage::ClusterConfig;
    use hurricane_workloads::rmat::{RmatGen, RmatSpec};
    use std::time::Duration;

    fn config() -> HurricaneConfig {
        HurricaneConfig {
            compute_nodes: 4,
            worker_slots: 2,
            chunk_size: 16 * 1024,
            clone_interval: Duration::from_millis(10),
            master_poll: Duration::from_millis(1),
            ..Default::default()
        }
    }

    fn check(edges: &[(u32, u32)], vertices: u32, iterations: usize) {
        let job = PageRankJob {
            vertices,
            iterations,
        };
        let expected = job.reference(edges);
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let (got, _report) = job.run(cluster, config(), edges).expect("pagerank run");
        assert_eq!(got.len(), expected.len());
        for (v, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert!((g - e).abs() < 1e-9, "vertex {v}: got {g}, expected {e}");
        }
    }

    #[test]
    fn tiny_cycle_graph() {
        // 0 -> 1 -> 2 -> 0: symmetric, all ranks equal.
        check(&[(0, 1), (1, 2), (2, 0)], 3, 5);
    }

    #[test]
    fn star_graph_concentrates_rank() {
        let edges: Vec<(u32, u32)> = (1..16u32).map(|v| (v, 0)).collect();
        let job = PageRankJob {
            vertices: 16,
            iterations: 5,
        };
        let expected = job.reference(&edges);
        assert!(expected[0] > expected[1] * 5.0, "hub must dominate");
        check(&edges, 16, 5);
    }

    #[test]
    fn rmat_graph_matches_reference() {
        let spec = RmatSpec {
            scale: 8,
            edges: 2048,
            seed: 11,
        };
        let edges: Vec<(u32, u32)> = RmatGen::new(spec)
            .map(|(u, v)| (u as u32, v as u32))
            .collect();
        check(&edges, 256, 5);
    }

    #[test]
    fn single_iteration_works() {
        check(&[(0, 1), (0, 2), (1, 2)], 3, 1);
    }
}
