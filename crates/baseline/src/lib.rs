//! A real, executable static-partitioning engine (the Spark-shaped
//! comparison baseline).
//!
//! The paper's baselines (Hadoop, Spark) share one structural property
//! that Hurricane attacks: **work is partitioned statically**. Partitions
//! are fixed before execution (hash of the key), each partition is bound
//! to exactly one reducer task, map output is *sorted and shuffled* so
//! that key ranges do not overlap, and the stage ends when its slowest
//! partition finishes. No partition can be split mid-flight, so a hot key
//! serializes the job.
//!
//! [`mapreduce`] implements exactly that execution model on threads, at
//! laptop scale, so benchmarks and tests can compare Hurricane's cloning
//! against a genuine static engine on identical inputs — not just against
//! the simulator's cost model.

use hurricane_common::SplitMix64;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Statistics from one static map/reduce execution.
#[derive(Debug, Clone, Default)]
pub struct StaticReport {
    /// Wall-clock duration of the whole job.
    pub elapsed: Duration,
    /// Wall-clock duration of the map + shuffle stage.
    pub map_elapsed: Duration,
    /// Wall-clock duration of the reduce stage.
    pub reduce_elapsed: Duration,
    /// Records emitted by the map stage.
    pub shuffled_records: u64,
    /// Busy time of the busiest reducer vs the average — the load
    /// imbalance a static engine cannot fix (1.0 = perfectly balanced).
    pub reduce_imbalance: f64,
}

/// Executes a static map/shuffle/sort/reduce job.
///
/// * `inputs` is pre-split into map tasks (one vector per map task).
/// * `map` emits `(key, value)` pairs.
/// * Pairs are hash-partitioned into `partitions` reduce partitions and
///   **sorted by key** within each partition (the sort-based shuffle
///   Hurricane's merge paradigm subsumes, paper §6).
/// * `reduce` folds each key group; each partition is processed by
///   exactly one reducer, scheduled statically round-robin onto
///   `workers` threads — the no-cloning property under test.
///
/// # Panics
///
/// Panics if `partitions == 0` or `workers == 0`, or if a worker thread
/// panics.
pub fn mapreduce<I, K, V, R, M, F>(
    inputs: Vec<Vec<I>>,
    partitions: usize,
    workers: usize,
    map: M,
    reduce: F,
) -> (Vec<Vec<R>>, StaticReport)
where
    I: Send + 'static,
    K: Ord + std::hash::Hash + Clone + Send + 'static,
    V: Send + 'static,
    R: Send + 'static,
    M: Fn(I, &mut dyn FnMut(K, V)) + Send + Sync + 'static,
    F: Fn(&K, Vec<V>) -> R + Send + Sync + 'static,
{
    assert!(partitions > 0, "need at least one partition");
    assert!(workers > 0, "need at least one worker");
    let start = Instant::now();
    let map = Arc::new(map);
    let reduce = Arc::new(reduce);

    // --- Map stage: static input splits, one thread per split batch. ----
    let (tx, rx) = mpsc::channel::<Vec<(usize, K, V)>>();
    let mut handles = Vec::new();
    let num_splits = inputs.len();
    for split in inputs {
        let tx = tx.clone();
        let map = map.clone();
        handles.push(thread::spawn(move || {
            let mut out: Vec<(usize, K, V)> = Vec::new();
            for item in split {
                map(item, &mut |k: K, v: V| {
                    let p = (hash_key(&k) % partitions as u64) as usize;
                    out.push((p, k, v));
                });
            }
            let _ = tx.send(out);
        }));
    }
    drop(tx);
    let mut buckets: Vec<Vec<(K, V)>> = (0..partitions).map(|_| Vec::new()).collect();
    let mut shuffled = 0u64;
    for batch in rx {
        shuffled += batch.len() as u64;
        for (p, k, v) in batch {
            buckets[p].push((k, v));
        }
    }
    for h in handles {
        h.join().expect("map worker panicked");
    }
    let _ = num_splits;
    let map_elapsed = start.elapsed();

    // --- Shuffle sort: key-sorted runs per partition (no overlap). ------
    // Group values per key with a BTreeMap, i.e. the sort the paper says
    // static frameworks must pay and Hurricane's merges avoid.
    let groups: Vec<BTreeMap<K, Vec<V>>> = buckets
        .into_iter()
        .map(|bucket| {
            let mut m: BTreeMap<K, Vec<V>> = BTreeMap::new();
            for (k, v) in bucket {
                m.entry(k).or_default().push(v);
            }
            m
        })
        .collect();

    // --- Reduce stage: each partition bound to ONE reducer, statically
    // assigned round-robin to workers. ------------------------------------
    let reduce_start = Instant::now();
    type ReducerWork<K, V> = Vec<(usize, BTreeMap<K, Vec<V>>)>;
    let mut assignments: Vec<ReducerWork<K, V>> = (0..workers).map(|_| Vec::new()).collect();
    for (p, g) in groups.into_iter().enumerate() {
        assignments[p % workers].push((p, g));
    }
    let (rtx, rrx) = mpsc::channel::<(usize, Vec<R>, Duration)>();
    let mut rhandles = Vec::new();
    for mine in assignments {
        let rtx = rtx.clone();
        let reduce = reduce.clone();
        rhandles.push(thread::spawn(move || {
            for (p, groups) in mine {
                let t0 = Instant::now();
                let mut out = Vec::with_capacity(groups.len());
                for (k, vs) in groups {
                    out.push(reduce(&k, vs));
                }
                let _ = rtx.send((p, out, t0.elapsed()));
            }
        }));
    }
    drop(rtx);
    let mut results: Vec<Vec<R>> = (0..partitions).map(|_| Vec::new()).collect();
    let mut partition_times = vec![Duration::ZERO; partitions];
    for (p, out, took) in rrx {
        results[p] = out;
        partition_times[p] = took;
    }
    for h in rhandles {
        h.join().expect("reduce worker panicked");
    }
    let reduce_elapsed = reduce_start.elapsed();
    let max_t = partition_times.iter().max().copied().unwrap_or_default();
    let avg_t = if partitions > 0 {
        partition_times.iter().sum::<Duration>() / partitions as u32
    } else {
        Duration::ZERO
    };
    let report = StaticReport {
        elapsed: start.elapsed(),
        map_elapsed,
        reduce_elapsed,
        shuffled_records: shuffled,
        reduce_imbalance: if avg_t.as_nanos() > 0 {
            max_t.as_secs_f64() / avg_t.as_secs_f64()
        } else {
            1.0
        },
    };
    (results, report)
}

fn hash_key<K: std::hash::Hash>(k: &K) -> u64 {
    use std::hash::Hasher;
    // A tiny deterministic hasher over SplitMix64, so partitioning is
    // stable across runs and platforms.
    struct Mix(u64);
    impl Hasher for Mix {
        fn finish(&self) -> u64 {
            SplitMix64::mix(self.0)
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = SplitMix64::mix(self.0 ^ b as u64);
            }
        }
    }
    let mut h = Mix(0x5EED);
    k.hash(&mut h);
    h.finish()
}

/// Splits `items` into `n` round-robin map splits (static input split).
pub fn split_input<T>(items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    assert!(n > 0);
    let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        out[i % n].push(item);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count_shape() {
        let inputs = split_input(vec![1u32, 2, 2, 3, 3, 3], 2);
        let (results, report) = mapreduce(
            inputs,
            4,
            2,
            |x: u32, emit: &mut dyn FnMut(u32, u64)| emit(x, 1),
            |k: &u32, vs: Vec<u64>| (*k, vs.len() as u64),
        );
        let mut flat: Vec<(u32, u64)> = results.into_iter().flatten().collect();
        flat.sort_unstable();
        assert_eq!(flat, vec![(1, 1), (2, 2), (3, 3)]);
        assert_eq!(report.shuffled_records, 6);
    }

    #[test]
    fn keys_do_not_cross_partitions() {
        let inputs = split_input((0..1000u32).collect(), 4);
        let (results, _) = mapreduce(
            inputs,
            8,
            4,
            |x: u32, emit: &mut dyn FnMut(u32, u32)| emit(x % 50, x),
            |k: &u32, vs: Vec<u32>| (*k, vs.len()),
        );
        // Each key appears in exactly one partition (hash partitioning).
        let mut seen = std::collections::HashMap::new();
        for (p, part) in results.iter().enumerate() {
            for (k, _) in part {
                assert!(
                    seen.insert(*k, p).is_none_or(|prev| prev == p),
                    "key {k} appeared in two partitions"
                );
            }
        }
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn partitions_are_key_sorted() {
        let inputs = split_input(vec![5u32, 3, 9, 1, 7], 1);
        let (results, _) = mapreduce(
            inputs,
            1,
            1,
            |x: u32, emit: &mut dyn FnMut(u32, ())| emit(x, ()),
            |k: &u32, _vs: Vec<()>| *k,
        );
        // One partition holds all keys in sorted order (sort-based
        // shuffle).
        assert_eq!(results[0], vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn imbalance_visible_under_skew() {
        // One hot key with expensive reduction vs many cold keys.
        let inputs = split_input(
            (0..2000u32).map(|i| if i < 1900 { 0 } else { i }).collect(),
            4,
        );
        let (_, report) = mapreduce(
            inputs,
            8,
            4,
            |x: u32, emit: &mut dyn FnMut(u32, u32)| emit(x, x),
            |_k: &u32, vs: Vec<u32>| {
                // Cost proportional to group size.
                let mut acc = 0u64;
                for v in &vs {
                    for _ in 0..50 {
                        acc = acc.wrapping_add(*v as u64).rotate_left(1);
                    }
                }
                acc
            },
        );
        assert!(
            report.reduce_imbalance > 1.5,
            "hot key should imbalance reducers: {:.2}",
            report.reduce_imbalance
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let (results, report) = mapreduce(
            vec![Vec::<u32>::new()],
            2,
            1,
            |x: u32, emit: &mut dyn FnMut(u32, u32)| emit(x, x),
            |k: &u32, _vs: Vec<u32>| *k,
        );
        assert!(results.iter().all(|r| r.is_empty()));
        assert_eq!(report.shuffled_records, 0);
    }

    #[test]
    fn split_input_round_robins() {
        let splits = split_input((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[0], vec![0, 3, 6, 9]);
        assert_eq!(splits[2], vec![2, 5, 8]);
    }
}
