//! Criterion benchmarks of the *real* threaded runtime at laptop scale:
//! Hurricane (cloning on/off) vs the real static-partitioning baseline on
//! identical skewed ClickLog inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hurricane_apps::clicklog::ClickLogJob;
use hurricane_baseline::{mapreduce, split_input};
use hurricane_core::HurricaneConfig;
use hurricane_storage::{ClusterConfig, StorageCluster};
use hurricane_workloads::clicklog::{region_of, ClickLogGen, ClickLogSpec};
use std::time::Duration;

const RECORDS: u64 = 60_000;
const REGIONS: usize = 8;
const NUM_IPS: usize = 1 << 14;

fn data(skew: f64) -> Vec<u32> {
    ClickLogGen::new(ClickLogSpec {
        num_ips: NUM_IPS,
        regions: REGIONS,
        skew,
        records: RECORDS,
        seed: 0xBE7C,
    })
    .collect()
}

fn hurricane_config(cloning: bool) -> HurricaneConfig {
    HurricaneConfig {
        compute_nodes: 4,
        worker_slots: 2,
        chunk_size: 16 * 1024,
        clone_interval: Duration::from_millis(5),
        master_poll: Duration::from_millis(1),
        cloning_enabled: cloning,
        ..Default::default()
    }
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("real_engine_clicklog");
    g.sample_size(10);
    for &skew in &[0.0f64, 1.0] {
        let input = data(skew);
        g.bench_with_input(BenchmarkId::new("hurricane", skew), &input, |b, input| {
            let job = ClickLogJob {
                regions: REGIONS,
                num_ips: NUM_IPS,
            };
            b.iter(|| {
                let cluster = StorageCluster::new(4, ClusterConfig::default());
                job.run(cluster, hurricane_config(true), input.iter().copied())
                    .unwrap()
                    .0
            })
        });
        g.bench_with_input(
            BenchmarkId::new("hurricane_nc", skew),
            &input,
            |b, input| {
                let job = ClickLogJob {
                    regions: REGIONS,
                    num_ips: NUM_IPS,
                };
                b.iter(|| {
                    let cluster = StorageCluster::new(4, ClusterConfig::default());
                    job.run(cluster, hurricane_config(false), input.iter().copied())
                        .unwrap()
                        .0
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("static_baseline", skew),
            &input,
            |b, input| {
                b.iter(|| {
                    let splits = split_input(input.clone(), 8);
                    let (results, _) = mapreduce(
                        splits,
                        REGIONS,
                        4,
                        |ip: u32, emit: &mut dyn FnMut(u32, u32)| {
                            emit(region_of(ip, NUM_IPS, REGIONS), ip)
                        },
                        |region: &u32, ips: Vec<u32>| {
                            let mut set = hurricane_apps::BitSet::new();
                            for ip in ips {
                                set.set(ip);
                            }
                            (*region, set.count())
                        },
                    );
                    results
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
