//! Criterion microbenchmarks of the substrates: serialization, bag
//! operations, placement, workload generation — and the contended
//! storage-node benchmarks comparing the sharded hot path against the
//! pre-shard coarse-lock baseline (`hurricane_bench::coarse`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hurricane_bench::coarse::{CoarseClient, CoarseCluster};
use hurricane_common::DetRng;
use hurricane_format::{decode_all, encode_all};
use hurricane_storage::bag::{BagClient, BatchRemoveResult, RemoveResult};
use hurricane_storage::placement::CyclicPlacement;
use hurricane_storage::prefetch::Prefetcher;
use hurricane_storage::{ClusterConfig, StorageCluster, StorageEndpoint};
use hurricane_workloads::clicklog::{ClickLogGen, ClickLogSpec};
use hurricane_workloads::rmat::{RmatGen, RmatSpec};
use hurricane_workloads::ZipfSampler;
use std::sync::Arc;

fn bench_codec(c: &mut Criterion) {
    let records: Vec<(u64, String)> = (0..10_000).map(|i| (i, format!("payload-{i}"))).collect();
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("encode_10k_records", |b| {
        b.iter(|| encode_all(records.iter().cloned(), 64 * 1024).unwrap())
    });
    let chunks = encode_all(records.iter().cloned(), 64 * 1024).unwrap();
    g.bench_function("decode_10k_records", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for chunk in &chunks {
                n += decode_all::<(u64, String)>(chunk).unwrap().len();
            }
            n
        })
    });
    g.finish();
}

/// The compute-side record hot path (PR 4): owned vs borrowed decode,
/// two-pass vs single-pass encode, and the fan-out spectrum — re-encode
/// per output vs encode-once (`push_encoded`) vs chunk splatting.
fn bench_compute_path(c: &mut Criterion) {
    use hurricane_format::{Chunk, ChunkReader, ChunkWriter, Record};

    const RECS: u64 = 10_000;
    const CHUNK: usize = 64 * 1024;
    const FAN_OUT: usize = 4;

    /// The pre-PR-4 `ChunkWriter::push`: probe `encoded_len()`, seal on
    /// would-overflow, then `encode` — every record traversed twice.
    /// Kept here verbatim as the before-number for the encode benches.
    struct TwoPassWriter {
        chunk_size: usize,
        buf: Vec<u8>,
        records_in_buf: u64,
        records_total: u64,
    }

    impl TwoPassWriter {
        fn new(chunk_size: usize) -> Self {
            Self {
                chunk_size,
                buf: Vec::with_capacity(chunk_size),
                records_in_buf: 0,
                records_total: 0,
            }
        }

        fn push<T: Record>(
            &mut self,
            record: &T,
        ) -> Result<Option<Chunk>, hurricane_format::CodecError> {
            let len = record.encoded_len();
            if len > self.chunk_size {
                return Err(hurricane_format::CodecError::RecordTooLarge {
                    record: len,
                    chunk: self.chunk_size,
                });
            }
            let mut completed = None;
            if self.buf.len() + len > self.chunk_size {
                let data = std::mem::replace(&mut self.buf, Vec::with_capacity(self.chunk_size));
                self.records_in_buf = 0;
                completed = Some(Chunk::from_vec(data));
            }
            record.encode(&mut self.buf);
            self.records_in_buf += 1;
            self.records_total += 1;
            Ok(completed)
        }

        fn finish(mut self) -> Option<Chunk> {
            let _ = (self.records_in_buf, self.records_total);
            (!self.buf.is_empty()).then(|| Chunk::from_vec(std::mem::take(&mut self.buf)))
        }
    }

    let records: Vec<(u64, String)> = (0..RECS).map(|i| (i, format!("payload-{i}"))).collect();
    let chunks = encode_all(records.iter().cloned(), CHUNK).unwrap();

    let mut g = c.benchmark_group("compute_path");
    g.throughput(Throughput::Elements(RECS));

    // Decode-heavy loop: sum of name lengths over every record. The owned
    // path pays a String allocation per record plus a Vec per chunk; the
    // borrowed path reads `&str` views straight out of the chunk.
    g.bench_function("decode/owned_vec", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for chunk in &chunks {
                for (_, s) in decode_all::<(u64, String)>(chunk).unwrap() {
                    bytes += s.len();
                }
            }
            bytes
        })
    });
    g.bench_function("decode/borrowed_view", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for chunk in &chunks {
                ChunkReader::<(u64, String)>::new(chunk)
                    .for_each(|(_, s)| bytes += s.len())
                    .unwrap();
            }
            bytes
        })
    });

    // Encode: the two-pass (encoded_len + encode) before-number vs the
    // live single-pass push — on flat records (encoded_len is O(1), the
    // probe was nearly free) and on nested records (encoded_len walks
    // the whole vector, so two-pass traverses every byte twice).
    g.bench_function("encode/two_pass", |b| {
        b.iter(|| {
            let mut w = TwoPassWriter::new(CHUNK);
            let mut n = 0usize;
            for r in &records {
                n += w.push(r).unwrap().is_some() as usize;
            }
            n + w.finish().is_some() as usize
        })
    });
    g.bench_function("encode/single_pass", |b| {
        b.iter(|| {
            let mut w = ChunkWriter::<(u64, String)>::new(CHUNK);
            let mut n = 0usize;
            for r in &records {
                n += w.push(r).unwrap().is_some() as usize;
            }
            n + w.finish().is_some() as usize
        })
    });
    // Nested records: one record = 16 (id, name) pairs. Throughput stays
    // per-leaf-element so the numbers compare against the flat encode.
    type Nested = (u64, Vec<(u32, String)>);
    let nested: Vec<Nested> = (0..RECS / 16)
        .map(|i| {
            (
                i,
                (0..16u32).map(|j| (j, format!("field-{i}-{j}"))).collect(),
            )
        })
        .collect();
    g.bench_function("encode_nested/two_pass", |b| {
        b.iter(|| {
            let mut w = TwoPassWriter::new(CHUNK);
            let mut n = 0usize;
            for r in &nested {
                n += w.push(r).unwrap().is_some() as usize;
            }
            n + w.finish().is_some() as usize
        })
    });
    g.bench_function("encode_nested/single_pass", |b| {
        b.iter(|| {
            let mut w = ChunkWriter::<Nested>::new(CHUNK);
            let mut n = 0usize;
            for r in &nested {
                n += w.push(r).unwrap().is_some() as usize;
            }
            n + w.finish().is_some() as usize
        })
    });

    // Fan-out: the same stream delivered to FAN_OUT outputs. Throughput
    // stays per-input-record, so elems/sec across the three variants
    // reads directly as "cost of fanning one record out k ways".
    g.bench_function(format!("fanout_k{FAN_OUT}/reencode_per_output"), |b| {
        b.iter(|| {
            let mut ws: Vec<ChunkWriter<(u64, String)>> =
                (0..FAN_OUT).map(|_| ChunkWriter::new(CHUNK)).collect();
            let mut n = 0usize;
            for r in &records {
                for w in &mut ws {
                    n += w.push(r).unwrap().is_some() as usize;
                }
            }
            n
        })
    });
    g.bench_function(format!("fanout_k{FAN_OUT}/encode_once"), |b| {
        b.iter(|| {
            let mut ws: Vec<ChunkWriter<(u64, String)>> =
                (0..FAN_OUT).map(|_| ChunkWriter::new(CHUNK)).collect();
            let mut scratch = Vec::new();
            let mut n = 0usize;
            for r in &records {
                scratch.clear();
                r.encode(&mut scratch);
                for w in &mut ws {
                    n += w.push_encoded(&scratch).unwrap().is_some() as usize;
                }
            }
            n
        })
    });
    g.bench_function(format!("fanout_k{FAN_OUT}/chunk_splat"), |b| {
        b.iter(|| {
            let mut sinks: Vec<Vec<Chunk>> = (0..FAN_OUT).map(|_| Vec::new()).collect();
            for chunk in &chunks {
                for sink in &mut sinks {
                    sink.push(chunk.clone());
                }
            }
            sinks.iter().map(Vec::len).sum::<usize>()
        })
    });
    g.finish();
}

/// The merge plane (PR 5): the borrowed keyed fold vs the owned-decode
/// baseline it replaced, trusted `SeqView` iteration vs the validating
/// second pass, and fixed-stride random access vs sequential checked
/// decoding of the same bytes.
fn bench_merge_path(c: &mut Criterion) {
    use hurricane_common::SplitMix64;
    use hurricane_core::merges::KeyedMerge;
    use hurricane_core::task::{BagReader, BagWriter, MergeLogic};
    use hurricane_core::EngineError;
    use hurricane_format::{FixedU64, Record, RecordView, SeqView};
    use std::collections::BTreeMap;

    const RECS: u64 = 40_000;
    const KEYS: u64 = 1024;
    const PARTIALS: u64 = 2;
    const MERGE_CHUNK: usize = 64 * 1024;

    /// The pre-PR-5 `KeyedMerge`: decode every record owned, BTreeMap
    /// remove+insert per record. Vendored verbatim as the before-number
    /// for the borrowed fold.
    struct OwnedKeyedMerge;

    impl MergeLogic for OwnedKeyedMerge {
        fn merge(
            &self,
            _output_index: usize,
            partials: &mut [BagReader],
            out: &mut BagWriter,
        ) -> Result<(), EngineError> {
            let mut table: BTreeMap<u64, u64> = BTreeMap::new();
            for p in partials {
                while let Some(chunk) = p.next_chunk()? {
                    for (k, v) in hurricane_format::decode_all::<(u64, u64)>(&chunk)? {
                        match table.remove(&k) {
                            None => {
                                table.insert(k, v);
                            }
                            Some(prev) => {
                                table.insert(k, prev + v);
                            }
                        }
                    }
                }
            }
            for (k, v) in table {
                out.write_record(&(k, v))?;
            }
            out.flush()?;
            Ok(())
        }
    }

    /// Two sealed partial bags of (key, count) records plus an output
    /// writer — the unit a keyed merge consumes per call.
    fn keyed_setup() -> (Vec<BagReader>, BagWriter) {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let mut readers = Vec::new();
        for part in 0..PARTIALS {
            let bag = cluster.create_bag();
            let mut w = BagWriter::open(cluster.clone(), bag, part, MERGE_CHUNK);
            for i in 0..RECS / PARTIALS {
                let key = SplitMix64::mix(part * 1_000_003 + i) % KEYS;
                w.write_record(&(key, 1u64)).unwrap();
            }
            w.flush().unwrap();
            cluster.seal_bag(bag).unwrap();
            readers.push(BagReader::open(cluster.clone(), bag, 100 + part, 4, None));
        }
        let out_bag = cluster.create_bag();
        let out = BagWriter::open(cluster, out_bag, 999, MERGE_CHUNK);
        (readers, out)
    }

    let mut g = c.benchmark_group("merge_path");
    g.sample_size(10);
    g.throughput(Throughput::Elements(RECS));
    g.bench_function("keyed_fold/owned_btree", |b| {
        b.iter_batched(
            keyed_setup,
            |(mut readers, mut out)| {
                OwnedKeyedMerge.merge(0, &mut readers, &mut out).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("keyed_fold/borrowed", |b| {
        let live = KeyedMerge::<u64, u64, _>::new(|a, b| a + b);
        b.iter_batched(
            keyed_setup,
            |(mut readers, mut out)| {
                live.merge(0, &mut readers, &mut out).unwrap();
            },
            BatchSize::SmallInput,
        )
    });

    // Sequence iteration: records holding (id, name) element lists —
    // the shape where the validating second pass genuinely re-pays
    // (UTF-8 revalidation, length checks, Result plumbing per element).
    // The views are validated once outside the measurement, mirroring a
    // merge fold that constructs the record view and then walks the
    // sequence — the measured pass is only the per-element re-read.
    const SEQ_RECORDS: usize = 256;
    const ELEMS_PER: usize = 16;
    let seq_recs: Vec<Vec<(u32, String)>> = (0..SEQ_RECORDS)
        .map(|i| {
            (0..ELEMS_PER)
                .map(|j| (j as u32, format!("member-{i}-{j}")))
                .collect()
        })
        .collect();
    let mut seq_buf = Vec::new();
    for r in &seq_recs {
        r.encode(&mut seq_buf);
    }
    let mut views: Vec<SeqView<(u32, String)>> = Vec::new();
    let mut rest = seq_buf.as_slice();
    while !rest.is_empty() {
        views.push(Vec::<(u32, String)>::decode_view(&mut rest).unwrap());
    }
    g.throughput(Throughput::Elements((SEQ_RECORDS * ELEMS_PER) as u64));
    g.bench_function("seq_iter/validating", |b| {
        b.iter(|| {
            // The pre-PR-5 second pass: re-decode each element with the
            // checked decoder.
            let mut bytes = 0usize;
            for v in &views {
                let mut rest = v.payload();
                for _ in 0..v.len() {
                    let (id, name) = <(u32, String)>::decode_view(&mut rest).unwrap();
                    bytes += id as usize + name.len();
                }
            }
            bytes
        })
    });
    g.bench_function("seq_iter/trusted", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for v in &views {
                for (id, name) in v.iter() {
                    bytes += id as usize + name.len();
                }
            }
            bytes
        })
    });

    // Fixed stride: bitset-style dense words in the constant-width wire
    // form, summing every 8th word (the sparse-batch pattern random
    // access exists for). `get` touches exactly the words it needs; the
    // baseline has no stride, so reaching element i means sequentially
    // decoding elements 0..i — the whole sequence, checked.
    const WORD_RECORDS: usize = 256;
    const WORDS_PER: usize = 64;
    const GATHER_STEP: usize = 8;
    let fixed_recs: Vec<Vec<FixedU64>> = (0..WORD_RECORDS)
        .map(|i| {
            (0..WORDS_PER)
                .map(|j| FixedU64(SplitMix64::mix((i * WORDS_PER + j) as u64)))
                .collect()
        })
        .collect();
    let mut fixed_buf = Vec::new();
    for r in &fixed_recs {
        r.encode(&mut fixed_buf);
    }
    let mut fixed_views: Vec<SeqView<FixedU64>> = Vec::new();
    let mut rest = fixed_buf.as_slice();
    while !rest.is_empty() {
        fixed_views.push(Vec::<FixedU64>::decode_view(&mut rest).unwrap());
    }
    let gathered = (WORD_RECORDS * WORDS_PER / GATHER_STEP) as u64;
    g.throughput(Throughput::Elements(gathered));
    g.bench_function("fixed_stride/gather_8th/sequential_decode", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for v in &fixed_views {
                let mut rest = v.payload();
                for i in 0..v.len() {
                    let w = FixedU64::decode_view(&mut rest).unwrap().0;
                    if i % GATHER_STEP == 0 {
                        sum = sum.wrapping_add(w);
                    }
                }
            }
            sum
        })
    });
    g.bench_function("fixed_stride/gather_8th/get", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for v in &fixed_views {
                let mut i = 0;
                while i < v.len() {
                    sum = sum.wrapping_add(v.get(i).0);
                    i += GATHER_STEP;
                }
            }
            sum
        })
    });
    g.finish();
}

/// The SWAR trusted varint decoder against the per-byte scalar loop it
/// replaced, over dense `Vec<u64>` word sequences — the shape every
/// `SeqView::iter` trusted re-read walks.
fn bench_decode_swar(c: &mut Criterion) {
    use hurricane_common::SplitMix64;
    use hurricane_format::varint;

    /// The pre-SWAR `decode_trusted`: one dependent shift-or per byte.
    /// Vendored verbatim as the before-number.
    ///
    /// # Safety
    ///
    /// Same contract as [`varint::decode_trusted`].
    unsafe fn decode_trusted_scalar(input: &mut &[u8]) -> u64 {
        let mut value = 0u64;
        let mut shift = 0u32;
        let mut i = 0usize;
        loop {
            let byte = *input.get_unchecked(i);
            value |= ((byte & 0x7f) as u64) << shift;
            i += 1;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        *input = input.get_unchecked(i..);
        value
    }

    const WORDS: u64 = 40_000;
    // Dense word run: pseudorandom full-entropy words right-shifted by a
    // data-dependent amount, so encoded lengths span 1..=10 bytes with
    // no pattern a branch predictor can learn — the scalar loop pays a
    // mispredict per varint while SWAR's length math is branch-free.
    let words: Vec<u64> = (0..WORDS)
        .map(|i| {
            let w = SplitMix64::mix(i);
            w >> (SplitMix64::mix(i ^ 0x5ca1ab1e) % 64)
        })
        .collect();
    let mut buf = Vec::new();
    for &w in &words {
        varint::encode(w, &mut buf);
    }
    let expect: u64 = words.iter().fold(0, |a, &w| a.wrapping_add(w));

    let mut g = c.benchmark_group("decode_swar");
    g.throughput(Throughput::Elements(WORDS));
    g.bench_function("trusted_scalar_40k", |b| {
        b.iter(|| {
            let mut at = buf.as_slice();
            let mut sum = 0u64;
            for _ in 0..WORDS {
                // SAFETY: `at` is positioned at a varint this process
                // encoded (and the first iteration's full-buffer decode
                // validates transitively).
                sum = sum.wrapping_add(unsafe { decode_trusted_scalar(&mut at) });
            }
            assert_eq!(sum, expect);
            sum
        })
    });
    g.bench_function("trusted_swar_40k", |b| {
        b.iter(|| {
            let mut at = buf.as_slice();
            let mut sum = 0u64;
            for _ in 0..WORDS {
                // SAFETY: as above — bytes come from our own encoder.
                sum = sum.wrapping_add(unsafe { varint::decode_trusted(&mut at) });
            }
            assert_eq!(sum, expect);
            sum
        })
    });
    g.finish();
}

/// One merge phase's independent output indices dispatched through
/// `merges::merge_outputs` at parallelism 1 (the sequential baseline)
/// vs the worker pool — keyed merges over skewed partials, the
/// tentpole's wall-clock claim.
fn bench_merge_parallel(c: &mut Criterion) {
    use hurricane_common::SplitMix64;
    use hurricane_core::merges::{merge_outputs, KeyedMerge};
    use hurricane_core::task::{BagReader, BagWriter};

    const OUTPUTS: usize = 8;
    const INSTANCES: usize = 2;
    const RECS_PER_PARTIAL: u64 = 4_000;
    const KEYS: u64 = 512;
    const MERGE_CHUNK: usize = 64 * 1024;

    /// An `INSTANCES x OUTPUTS` grid of sealed keyed partials plus one
    /// writer per output — everything `run_merge` hands the dispatcher.
    #[allow(clippy::type_complexity)]
    fn grid_setup() -> Vec<(usize, Vec<BagReader>, BagWriter)> {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        (0..OUTPUTS)
            .map(|out_idx| {
                let readers: Vec<BagReader> = (0..INSTANCES)
                    .map(|inst| {
                        let bag = cluster.create_bag();
                        let seed = (out_idx * INSTANCES + inst) as u64;
                        let mut w = BagWriter::open(cluster.clone(), bag, seed, MERGE_CHUNK);
                        for i in 0..RECS_PER_PARTIAL {
                            let key = SplitMix64::mix(seed * 1_000_003 + i) % KEYS;
                            w.write_record(&(key, 1u64)).unwrap();
                        }
                        w.flush().unwrap();
                        cluster.seal_bag(bag).unwrap();
                        BagReader::open(cluster.clone(), bag, 100 + seed, 4, None)
                    })
                    .collect();
                let out_bag = cluster.create_bag();
                let out = BagWriter::open(cluster.clone(), out_bag, 999, MERGE_CHUNK);
                (out_idx, readers, out)
            })
            .collect()
    }

    let mut g = c.benchmark_group("merge_parallel");
    g.sample_size(10);
    g.throughput(Throughput::Elements(
        OUTPUTS as u64 * INSTANCES as u64 * RECS_PER_PARTIAL,
    ));
    let merge = KeyedMerge::<u64, u64, _>::new(|a, b| a + b);
    for par in [1usize, 4] {
        g.bench_function(format!("keyed_8_outputs/par{par}"), |b| {
            b.iter_batched(
                grid_setup,
                |jobs| merge_outputs(&merge, par, jobs).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_merge_spill(c: &mut Criterion) {
    use hurricane_common::{BagId, SplitMix64};
    use hurricane_core::merges::{merge_outputs, merge_outputs_bounded, KeyedMerge};
    use hurricane_core::task::{BagReader, BagWriter, SpillSink};
    use hurricane_core::EngineError;

    const INSTANCES: usize = 2;
    const RECS_PER_PARTIAL: u64 = 8_000;
    const KEYS: u64 = 2_048;
    const MERGE_CHUNK: usize = 16 * 1024;

    /// The manager's scratch-run protocol in miniature: runs are bags
    /// pinned to one node, written and read at batch factor 1 so they
    /// hold their sorted order, collected once folded.
    struct BenchSink {
        cluster: Arc<StorageCluster>,
        seed: u64,
    }

    impl SpillSink for BenchSink {
        fn create_run(&mut self) -> Result<BagWriter, EngineError> {
            let bag = self.cluster.create_bag();
            self.seed += 1;
            let client = BagClient::new(self.cluster.clone(), bag, self.seed).with_pinned_node(0);
            Ok(BagWriter::open_batched_client(client, MERGE_CHUNK, 1))
        }

        fn open_run(&mut self, bag: BagId) -> Result<BagReader, EngineError> {
            self.cluster.seal_bag(bag)?;
            self.seed += 1;
            Ok(BagReader::open(
                self.cluster.clone(),
                bag,
                self.seed,
                1,
                None,
            ))
        }

        fn release_run(&mut self, bag: BagId) -> Result<(), EngineError> {
            self.cluster.collect_bag(bag)?;
            Ok(())
        }
    }

    /// One keyed-merge job (2 sealed partials, 2 048 distinct keys) plus
    /// the cluster its scratch runs spill into.
    #[allow(clippy::type_complexity)]
    fn job_setup() -> (Arc<StorageCluster>, Vec<(usize, Vec<BagReader>, BagWriter)>) {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let readers: Vec<BagReader> = (0..INSTANCES)
            .map(|inst| {
                let bag = cluster.create_bag();
                let seed = inst as u64;
                let mut w = BagWriter::open(cluster.clone(), bag, seed, MERGE_CHUNK);
                let mut recs: Vec<(u64, u64)> = (0..RECS_PER_PARTIAL)
                    .map(|i| (SplitMix64::mix(seed * 1_000_003 + i) % KEYS, 1u64))
                    .collect();
                recs.sort_unstable();
                for rec in &recs {
                    w.write_record(rec).unwrap();
                }
                w.flush().unwrap();
                cluster.seal_bag(bag).unwrap();
                BagReader::open(cluster.clone(), bag, 100 + seed, 4, None)
            })
            .collect();
        let out_bag = cluster.create_bag();
        let out = BagWriter::open(cluster.clone(), out_bag, 999, MERGE_CHUNK);
        (cluster, vec![(0usize, readers, out)])
    }

    // The spill-vs-resident overhead, honestly: identical inputs and
    // outputs, only the accumulator budget varies. `resident` never
    // spills (the unbounded entry point); the budgets force one or more
    // drain/re-fold rounds through scratch bags on the storage tier.
    let mut g = c.benchmark_group("merge_spill");
    g.sample_size(10);
    g.throughput(Throughput::Elements(INSTANCES as u64 * RECS_PER_PARTIAL));
    let merge = KeyedMerge::<u64, u64, _>::new(|a, b| a + b);
    g.bench_function("keyed_2k_keys/resident", |b| {
        b.iter_batched(
            job_setup,
            |(_cluster, jobs)| merge_outputs(&merge, 1, jobs).unwrap(),
            BatchSize::SmallInput,
        )
    });
    for budget in [64 * 1024u64, 4 * 1024] {
        g.bench_function(format!("keyed_2k_keys/budget{}k", budget / 1024), |b| {
            b.iter_batched(
                job_setup,
                |(cluster, jobs)| {
                    let make_sink = || -> Box<dyn SpillSink> {
                        Box::new(BenchSink {
                            cluster: cluster.clone(),
                            seed: 9000,
                        })
                    };
                    merge_outputs_bounded(&merge, 1, jobs, budget, &make_sink).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_bags(c: &mut Criterion) {
    let mut g = c.benchmark_group("bags");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("insert_1k_chunks_8_nodes", |b| {
        b.iter_batched(
            || {
                let cluster = StorageCluster::new(8, ClusterConfig::default());
                let bag = cluster.create_bag();
                let client = BagClient::new(cluster, bag, 7);
                let chunk = hurricane_format::Chunk::from_vec(vec![0u8; 1024]);
                (client, chunk)
            },
            |(mut client, chunk)| {
                for _ in 0..1000 {
                    client.insert(chunk.clone()).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("remove_1k_chunks_8_nodes", |b| {
        b.iter_batched(
            || {
                let cluster = StorageCluster::new(8, ClusterConfig::default());
                let bag = cluster.create_bag();
                let mut client = BagClient::new(cluster.clone(), bag, 7);
                let chunk = hurricane_format::Chunk::from_vec(vec![0u8; 1024]);
                for _ in 0..1000 {
                    client.insert(chunk.clone()).unwrap();
                }
                cluster.seal_bag(bag).unwrap();
                BagClient::new(cluster, bag, 8)
            },
            |mut client| {
                let mut n = 0;
                while let RemoveResult::Chunk(_) = client.try_remove().unwrap() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

const CONTENDED_NODES: usize = 8;
const OPS_PER_CLIENT: u64 = 4_000;
const CONTENDED_CHUNK: usize = 256;
const BATCH: usize = 64;
/// Coalesce window for the RPC insert benches: eight 64-chunk batches
/// merge into one envelope per node, an 8x envelope amortization.
const COALESCE_WINDOW: usize = 8 * BATCH;

/// One shared template payload: per-op "data" is a refcount clone, so the
/// measurement isolates storage-path cost rather than allocator cost
/// (identically for the coarse baseline and the sharded path).
fn contended_chunk() -> hurricane_format::Chunk {
    thread_local! {
        static TEMPLATE: hurricane_format::Chunk =
            hurricane_format::Chunk::from_vec(vec![0u8; CONTENDED_CHUNK]);
    }
    TEMPLATE.with(|c| c.clone())
}

/// Spawns `clients` threads, runs `per_client` on each, waits for all.
fn run_clients(clients: usize, per_client: impl Fn(u64) + Sync) {
    std::thread::scope(|s| {
        for t in 0..clients as u64 {
            let f = &per_client;
            s.spawn(move || f(t));
        }
    });
}

/// Contended insert/remove: N clients hammer ONE bag on 8 nodes — the
/// traffic pattern task cloning creates. `sharded/*` uses the live
/// implementation (single-op and batched); `coarse/*` uses the pre-shard
/// node-global-mutex baseline. The acceptance target is sharded ≥ 2× the
/// coarse baseline at 8 clients.
fn bench_contended(c: &mut Criterion) {
    for &clients in &[1usize, 4, 8] {
        let total_ops = clients as u64 * OPS_PER_CLIENT;
        let mut g = c.benchmark_group(format!("contended_{clients}c_8n"));
        g.throughput(Throughput::Elements(total_ops));
        g.sample_size(10);

        g.bench_function("insert/coarse", |b| {
            b.iter_batched(
                || CoarseCluster::new(CONTENDED_NODES, 1),
                |cluster| {
                    let bag = cluster.create_bag();
                    run_clients(clients, |t| {
                        let mut cl = CoarseClient::new(cluster.clone(), bag, 7 + t);
                        for _ in 0..OPS_PER_CLIENT {
                            cl.insert(contended_chunk()).unwrap();
                        }
                    });
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function("insert/sharded", |b| {
            b.iter_batched(
                || StorageCluster::new(CONTENDED_NODES, ClusterConfig::default()),
                |cluster| {
                    let bag = cluster.create_bag();
                    run_clients(clients, |t| {
                        let mut cl = BagClient::new(cluster.clone(), bag, 7 + t);
                        for _ in 0..OPS_PER_CLIENT {
                            cl.insert(contended_chunk()).unwrap();
                        }
                    });
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function("insert/sharded_batch", |b| {
            b.iter_batched(
                || StorageCluster::new(CONTENDED_NODES, ClusterConfig::default()),
                |cluster| {
                    let bag = cluster.create_bag();
                    run_clients(clients, |t| {
                        let mut cl = BagClient::new(cluster.clone(), bag, 7 + t);
                        let chunks: Vec<_> =
                            (0..OPS_PER_CLIENT).map(|_| contended_chunk()).collect();
                        for batch in chunks.chunks(BATCH) {
                            cl.insert_batch(batch).unwrap();
                        }
                    });
                },
                BatchSize::SmallInput,
            )
        });
        // The RPC insert paths run with the cross-batch coalescer on (a
        // window of 8 batches), the data-plane configuration this layer
        // exists for; `rpc_inline_eager` keeps the uncoalesced number for
        // the before/after record in BENCH_storage.json.
        g.bench_function("insert/rpc_inline", |b| {
            b.iter_batched(
                || StorageCluster::new(CONTENDED_NODES, ClusterConfig::default()),
                |cluster| {
                    let bag = cluster.create_bag();
                    run_clients(clients, |t| {
                        let mut cl = StorageEndpoint::inline(cluster.clone())
                            .client(bag, 7 + t)
                            .with_coalescing(COALESCE_WINDOW);
                        let chunks: Vec<_> =
                            (0..OPS_PER_CLIENT).map(|_| contended_chunk()).collect();
                        for batch in chunks.chunks(BATCH) {
                            cl.insert_batch(batch).unwrap();
                        }
                        cl.flush().unwrap();
                    });
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function("insert/rpc_inline_eager", |b| {
            b.iter_batched(
                || StorageCluster::new(CONTENDED_NODES, ClusterConfig::default()),
                |cluster| {
                    let bag = cluster.create_bag();
                    run_clients(clients, |t| {
                        let mut cl = StorageEndpoint::inline(cluster.clone()).client(bag, 7 + t);
                        let chunks: Vec<_> =
                            (0..OPS_PER_CLIENT).map(|_| contended_chunk()).collect();
                        for batch in chunks.chunks(BATCH) {
                            cl.insert_batch(batch).unwrap();
                        }
                    });
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function("insert/rpc_batch", |b| {
            b.iter_batched(
                || {
                    let cluster = StorageCluster::new(CONTENDED_NODES, ClusterConfig::default());
                    let endpoint = StorageEndpoint::channel(cluster.clone());
                    let _ = endpoint.port();
                    (cluster, endpoint)
                },
                |(cluster, endpoint)| {
                    let bag = cluster.create_bag();
                    run_clients(clients, |t| {
                        let mut cl = endpoint.client(bag, 7 + t).with_coalescing(COALESCE_WINDOW);
                        let chunks: Vec<_> =
                            (0..OPS_PER_CLIENT).map(|_| contended_chunk()).collect();
                        for batch in chunks.chunks(BATCH) {
                            cl.insert_batch(batch).unwrap();
                        }
                        cl.flush().unwrap();
                    });
                },
                BatchSize::SmallInput,
            )
        });

        g.bench_function("remove/coarse", |b| {
            b.iter_batched(
                || {
                    let cluster = CoarseCluster::new(CONTENDED_NODES, 1);
                    let bag = cluster.create_bag();
                    let mut cl = CoarseClient::new(cluster.clone(), bag, 3);
                    for _ in 0..total_ops {
                        cl.insert(contended_chunk()).unwrap();
                    }
                    cluster.seal_bag(bag).unwrap();
                    (cluster, bag)
                },
                |(cluster, bag)| {
                    run_clients(clients, |t| {
                        let mut cl = CoarseClient::new(cluster.clone(), bag, 11 + t);
                        for _ in 0..OPS_PER_CLIENT {
                            let _ = cl.try_remove().unwrap();
                        }
                    });
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function("remove/sharded", |b| {
            b.iter_batched(
                || {
                    let cluster = StorageCluster::new(CONTENDED_NODES, ClusterConfig::default());
                    let bag = cluster.create_bag();
                    let mut cl = BagClient::new(cluster.clone(), bag, 3);
                    let chunks: Vec<_> = (0..total_ops).map(|_| contended_chunk()).collect();
                    cl.insert_batch(&chunks).unwrap();
                    cluster.seal_bag(bag).unwrap();
                    (cluster, bag)
                },
                |(cluster, bag)| {
                    run_clients(clients, |t| {
                        let mut cl = BagClient::new(cluster.clone(), bag, 11 + t);
                        for _ in 0..OPS_PER_CLIENT {
                            let _ = cl.try_remove().unwrap();
                        }
                    });
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function("remove/sharded_batch", |b| {
            b.iter_batched(
                || {
                    let cluster = StorageCluster::new(CONTENDED_NODES, ClusterConfig::default());
                    let bag = cluster.create_bag();
                    let mut cl = BagClient::new(cluster.clone(), bag, 3);
                    let chunks: Vec<_> = (0..total_ops).map(|_| contended_chunk()).collect();
                    cl.insert_batch(&chunks).unwrap();
                    cluster.seal_bag(bag).unwrap();
                    (cluster, bag)
                },
                |(cluster, bag)| {
                    run_clients(clients, |t| {
                        let mut cl = BagClient::new(cluster.clone(), bag, 11 + t);
                        let mut left = OPS_PER_CLIENT as usize;
                        while left > 0 {
                            match cl.try_remove_batch(left.min(BATCH)).unwrap() {
                                BatchRemoveResult::Chunks(chunks) => left -= chunks.len(),
                                _ => break,
                            }
                        }
                    });
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function("remove/rpc_inline", |b| {
            b.iter_batched(
                || {
                    let cluster = StorageCluster::new(CONTENDED_NODES, ClusterConfig::default());
                    let bag = cluster.create_bag();
                    let mut cl = BagClient::new(cluster.clone(), bag, 3);
                    let chunks: Vec<_> = (0..total_ops).map(|_| contended_chunk()).collect();
                    cl.insert_batch(&chunks).unwrap();
                    cluster.seal_bag(bag).unwrap();
                    (cluster, bag)
                },
                |(cluster, bag)| {
                    run_clients(clients, |t| {
                        let mut cl = StorageEndpoint::inline(cluster.clone()).client(bag, 11 + t);
                        let mut left = OPS_PER_CLIENT as usize;
                        while left > 0 {
                            match cl.try_remove_batch(left.min(BATCH)).unwrap() {
                                BatchRemoveResult::Chunks(chunks) => left -= chunks.len(),
                                _ => break,
                            }
                        }
                    });
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function("remove/rpc_batch", |b| {
            b.iter_batched(
                || {
                    let cluster = StorageCluster::new(CONTENDED_NODES, ClusterConfig::default());
                    let endpoint = StorageEndpoint::channel(cluster.clone());
                    let _ = endpoint.port();
                    let bag = cluster.create_bag();
                    let mut cl = BagClient::new(cluster.clone(), bag, 3);
                    let chunks: Vec<_> = (0..total_ops).map(|_| contended_chunk()).collect();
                    cl.insert_batch(&chunks).unwrap();
                    cluster.seal_bag(bag).unwrap();
                    (endpoint, bag)
                },
                |(endpoint, bag)| {
                    run_clients(clients, |t| {
                        let mut cl = endpoint.client(bag, 11 + t);
                        let mut left = OPS_PER_CLIENT as usize;
                        while left > 0 {
                            match cl.try_remove_batch(left.min(BATCH)).unwrap() {
                                BatchRemoveResult::Chunks(chunks) => left -= chunks.len(),
                                _ => break,
                            }
                        }
                    });
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}

/// The consumer-side prefetcher draining one bag: the synchronous
/// one-probe-at-a-time loop over the direct port vs the RPC pipeline
/// keeping `b = 10` requests in flight against distinct nodes.
fn bench_prefetch(c: &mut Criterion) {
    const CHUNKS: u64 = 8_000;
    let mut g = c.benchmark_group("prefetch_8n");
    g.throughput(Throughput::Elements(CHUNKS));
    g.sample_size(10);
    g.bench_function("direct", |b| {
        b.iter_batched(
            || {
                let cluster = StorageCluster::new(CONTENDED_NODES, ClusterConfig::default());
                let bag = cluster.create_bag();
                let mut cl = BagClient::new(cluster.clone(), bag, 5);
                let chunks: Vec<_> = (0..CHUNKS).map(|_| contended_chunk()).collect();
                cl.insert_batch(&chunks).unwrap();
                cluster.seal_bag(bag).unwrap();
                (cluster, bag)
            },
            |(cluster, bag)| {
                let mut pf = Prefetcher::spawn(BagClient::new(cluster, bag, 6), 10);
                let mut n = 0u64;
                while pf.recv().unwrap().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("rpc_pipelined", |b| {
        b.iter_batched(
            || {
                let cluster = StorageCluster::new(CONTENDED_NODES, ClusterConfig::default());
                let endpoint = StorageEndpoint::channel(cluster.clone());
                let _ = endpoint.port();
                let bag = cluster.create_bag();
                let mut cl = BagClient::new(cluster.clone(), bag, 5);
                let chunks: Vec<_> = (0..CHUNKS).map(|_| contended_chunk()).collect();
                cl.insert_batch(&chunks).unwrap();
                cluster.seal_bag(bag).unwrap();
                (endpoint, bag)
            },
            |(endpoint, bag)| {
                let mut pf = Prefetcher::spawn(endpoint.client(bag, 6), 10);
                let mut n = 0u64;
                while pf.recv().unwrap().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Writer flow control on a healthy server: the per-connection credit
/// bound must cost ~nothing when replies flow (the blocking acquire
/// pumps them), even at a credit far below the request rate.
fn bench_flow_control(c: &mut Criterion) {
    const CHUNKS: u64 = 8_000;
    let mut g = c.benchmark_group("rpc_credit_8n");
    g.throughput(Throughput::Elements(CHUNKS));
    g.sample_size(10);
    for &credit in &[4usize, 64] {
        g.bench_function(format!("insert_credit_{credit}"), |b| {
            b.iter_batched(
                || {
                    let cluster = StorageCluster::new(CONTENDED_NODES, ClusterConfig::default());
                    let endpoint = StorageEndpoint::channel(cluster.clone());
                    let _ = endpoint.port();
                    (cluster, endpoint)
                },
                |(cluster, endpoint)| {
                    let bag = cluster.create_bag();
                    let mut cl = endpoint.client(bag, 5);
                    cl.set_writer_credit(credit);
                    let chunks: Vec<_> = (0..CHUNKS).map(|_| contended_chunk()).collect();
                    for batch in chunks.chunks(BATCH) {
                        cl.insert_batch(batch).unwrap();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// `BagSample` polling: the master samples input bags every heuristic
/// tick. Sharded sampling is O(1) per node (running counters); the
/// pre-shard baseline re-scans the unread suffix of a 10k-chunk bag.
fn bench_sample(c: &mut Criterion) {
    const CHUNKS: u64 = 10_000;
    let mut g = c.benchmark_group("sample_10k_chunks_8n");

    let coarse = CoarseCluster::new(CONTENDED_NODES, 1);
    let coarse_bag = coarse.create_bag();
    {
        let mut cl = CoarseClient::new(coarse.clone(), coarse_bag, 5);
        for _ in 0..CHUNKS {
            cl.insert(contended_chunk()).unwrap();
        }
        // Half-consumed: the scan covers the remaining half.
        for _ in 0..CHUNKS / 2 {
            let _ = cl.try_remove().unwrap();
        }
    }
    g.bench_function("coarse_scan", |b| {
        b.iter(|| coarse.sample_bag(coarse_bag).unwrap())
    });

    let sharded = StorageCluster::new(CONTENDED_NODES, ClusterConfig::default());
    let sharded_bag = sharded.create_bag();
    {
        let mut cl = BagClient::new(sharded.clone(), sharded_bag, 5);
        let chunks: Vec<_> = (0..CHUNKS).map(|_| contended_chunk()).collect();
        cl.insert_batch(&chunks).unwrap();
        for _ in 0..CHUNKS / 2 {
            let _ = cl.try_remove().unwrap();
        }
    }
    g.bench_function("sharded_o1", |b| {
        b.iter(|| sharded.sample_bag(sharded_bag).unwrap())
    });

    // Polling while the data plane is hot: 4 writers keep inserting while
    // the master samples — the realistic heuristic-tick mix. Writers run
    // until stopped; writer 0 periodically discards the bag because the
    // append-only streams retain removed chunks, and an unbounded run
    // would otherwise grow node memory for the whole window. (Discard is
    // a normal control-plane call; racing it against the sampler is part
    // of the point.)
    let live = StorageCluster::new(CONTENDED_NODES, ClusterConfig::default());
    let live_bag = live.create_bag();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..4u64)
        .map(|t| {
            let live = live.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut cl = BagClient::new(live.clone(), live_bag, 40 + t);
                let chunks: Vec<_> = (0..64).map(|_| contended_chunk()).collect();
                let mut rounds = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    if cl.insert_batch(&chunks).is_err() {
                        // Lost a race with a concurrent discard; retry.
                        continue;
                    }
                    let _ = cl.try_remove_batch(64);
                    rounds += 1;
                    if t == 0 && rounds.is_multiple_of(1_000) {
                        let _ = live.discard_bag(live_bag);
                    }
                }
            })
        })
        .collect();
    g.bench_function("sharded_o1_under_write_load", |b| {
        b.iter(|| live.sample_bag(live_bag).unwrap())
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        let _ = w.join();
    }
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    c.bench_function("placement/cycle_of_32", |b| {
        let mut rng = DetRng::new(1);
        let mut p = CyclicPlacement::new(32, &mut rng);
        b.iter(|| p.next_node())
    });
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("zipf_sample_100k", |b| {
        let z = ZipfSampler::new(1 << 16, 1.0);
        let mut rng = DetRng::new(3);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            acc
        })
    });
    g.bench_function("clicklog_gen_100k", |b| {
        b.iter(|| {
            ClickLogGen::new(ClickLogSpec {
                records: 100_000,
                skew: 0.8,
                ..Default::default()
            })
            .fold(0u64, |acc, ip| acc.wrapping_add(ip as u64))
        })
    });
    g.bench_function("rmat_gen_100k_edges", |b| {
        b.iter(|| {
            RmatGen::new(RmatSpec {
                scale: 18,
                edges: 100_000,
                seed: 5,
            })
            .fold(0u64, |acc, (s, d)| acc.wrapping_add(s ^ d))
        })
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    use hurricane_sim::apps::clicklog_app;
    use hurricane_sim::spec::{ClusterSpec, HurricaneOpts};
    use hurricane_workloads::RegionWeights;
    c.bench_function("sim/clicklog_32gb_s1", |b| {
        let cluster = ClusterSpec::paper();
        let w = RegionWeights::paper_ladder(32, 1.0);
        let app = clicklog_app(32e9, &w);
        b.iter(|| hurricane_sim::engine::simulate(&app, &cluster, &HurricaneOpts::default()))
    });
}

criterion_group!(
    benches,
    bench_codec,
    bench_compute_path,
    bench_merge_path,
    bench_decode_swar,
    bench_merge_parallel,
    bench_merge_spill,
    bench_bags,
    bench_contended,
    bench_prefetch,
    bench_flow_control,
    bench_sample,
    bench_placement,
    bench_workloads,
    bench_simulator
);
criterion_main!(benches);
