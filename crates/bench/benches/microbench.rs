//! Criterion microbenchmarks of the substrates: serialization, bag
//! operations, placement, and workload generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hurricane_common::DetRng;
use hurricane_format::{decode_all, encode_all};
use hurricane_storage::bag::{BagClient, RemoveResult};
use hurricane_storage::placement::CyclicPlacement;
use hurricane_storage::{ClusterConfig, StorageCluster};
use hurricane_workloads::clicklog::{ClickLogGen, ClickLogSpec};
use hurricane_workloads::rmat::{RmatGen, RmatSpec};
use hurricane_workloads::ZipfSampler;

fn bench_codec(c: &mut Criterion) {
    let records: Vec<(u64, String)> = (0..10_000)
        .map(|i| (i, format!("payload-{i}")))
        .collect();
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("encode_10k_records", |b| {
        b.iter(|| encode_all(records.iter().cloned(), 64 * 1024).unwrap())
    });
    let chunks = encode_all(records.iter().cloned(), 64 * 1024).unwrap();
    g.bench_function("decode_10k_records", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for chunk in &chunks {
                n += decode_all::<(u64, String)>(chunk).unwrap().len();
            }
            n
        })
    });
    g.finish();
}

fn bench_bags(c: &mut Criterion) {
    let mut g = c.benchmark_group("bags");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("insert_1k_chunks_8_nodes", |b| {
        b.iter_batched(
            || {
                let cluster = StorageCluster::new(8, ClusterConfig::default());
                let bag = cluster.create_bag();
                let client = BagClient::new(cluster, bag, 7);
                let chunk = hurricane_format::Chunk::from_vec(vec![0u8; 1024]);
                (client, chunk)
            },
            |(mut client, chunk)| {
                for _ in 0..1000 {
                    client.insert(chunk.clone()).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("remove_1k_chunks_8_nodes", |b| {
        b.iter_batched(
            || {
                let cluster = StorageCluster::new(8, ClusterConfig::default());
                let bag = cluster.create_bag();
                let mut client = BagClient::new(cluster.clone(), bag, 7);
                let chunk = hurricane_format::Chunk::from_vec(vec![0u8; 1024]);
                for _ in 0..1000 {
                    client.insert(chunk.clone()).unwrap();
                }
                cluster.seal_bag(bag).unwrap();
                BagClient::new(cluster, bag, 8)
            },
            |mut client| {
                let mut n = 0;
                while let RemoveResult::Chunk(_) = client.try_remove().unwrap() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    c.bench_function("placement/cycle_of_32", |b| {
        let mut rng = DetRng::new(1);
        let mut p = CyclicPlacement::new(32, &mut rng);
        b.iter(|| p.next_node())
    });
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("zipf_sample_100k", |b| {
        let z = ZipfSampler::new(1 << 16, 1.0);
        let mut rng = DetRng::new(3);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            acc
        })
    });
    g.bench_function("clicklog_gen_100k", |b| {
        b.iter(|| {
            ClickLogGen::new(ClickLogSpec {
                records: 100_000,
                skew: 0.8,
                ..Default::default()
            })
            .fold(0u64, |acc, ip| acc.wrapping_add(ip as u64))
        })
    });
    g.bench_function("rmat_gen_100k_edges", |b| {
        b.iter(|| {
            RmatGen::new(RmatSpec {
                scale: 18,
                edges: 100_000,
                seed: 5,
            })
            .fold(0u64, |acc, (s, d)| acc.wrapping_add(s ^ d))
        })
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    use hurricane_sim::apps::clicklog_app;
    use hurricane_sim::spec::{ClusterSpec, HurricaneOpts};
    use hurricane_workloads::RegionWeights;
    c.bench_function("sim/clicklog_32gb_s1", |b| {
        let cluster = ClusterSpec::paper();
        let w = RegionWeights::paper_ladder(32, 1.0);
        let app = clicklog_app(32e9, &w);
        b.iter(|| hurricane_sim::engine::simulate(&app, &cluster, &HurricaneOpts::default()))
    });
}

criterion_group!(
    benches,
    bench_codec,
    bench_bags,
    bench_placement,
    bench_workloads,
    bench_simulator
);
criterion_main!(benches);
