//! Ablation: clone-interval sensitivity (the paper fixes 2 seconds).
fn main() {
    hurricane_bench::experiments::ablation_clone_interval();
    hurricane_bench::experiments::ablation_instance_cap();
}
