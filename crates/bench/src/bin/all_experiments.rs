//! Runs every table and figure reproduction in sequence (the full
//! EXPERIMENTS.md regeneration).
fn main() {
    use hurricane_bench::experiments as e;
    e::table1();
    e::fig5();
    e::fig6();
    e::fig7_8();
    e::fig9();
    e::fig10();
    e::fig11();
    e::storage_scaling();
    e::utilization_table();
    e::table2();
    e::fig12();
    e::table3();
    e::table4();
    e::ablation_clone_interval();
    e::ablation_instance_cap();
}
