//! Regenerates Figure 10 (batch-sampling factor sweep).
fn main() {
    hurricane_bench::experiments::fig10();
}
