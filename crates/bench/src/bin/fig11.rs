//! Regenerates Figure 11 (throughput under node and master crashes).
fn main() {
    hurricane_bench::experiments::fig11();
}
