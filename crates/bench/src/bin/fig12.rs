//! Regenerates Figure 12 (skew slowdown: Hurricane vs Spark vs Hadoop).
fn main() {
    hurricane_bench::experiments::fig12();
}
