//! Regenerates Figure 5 (ClickLog slowdown vs skew and input size).
fn main() {
    hurricane_bench::experiments::fig5();
}
