//! Regenerates Figure 6 (Hurricane vs HurricaneNC vs partition count).
fn main() {
    hurricane_bench::experiments::fig6();
}
