//! Regenerates Figures 7 and 8 (cloning x placement ablation).
fn main() {
    hurricane_bench::experiments::fig7_8();
}
