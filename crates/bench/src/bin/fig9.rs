//! Regenerates Figure 9 (throughput over time with the cloning ramp).
fn main() {
    hurricane_bench::experiments::fig9();
}
