//! Laptop-scale comparison on the *real* engines: Hurricane (cloning
//! on/off) vs the real static-partitioning baseline, on skewed ClickLog.
//!
//! This is the non-simulated counterpart of Figure 12: same workload and
//! skew knob, executed on threads, demonstrating that cloning — not the
//! simulator — closes the skew gap.
//!
//! `--merge-memory-budget BYTES` caps each merge output's accumulator
//! table (`HurricaneConfig::merge_memory_budget`): past the budget the
//! keyed merge drains into sorted scratch runs on the storage tier and
//! re-folds them, so the comparison can be re-run with spilling merges
//! (output is byte-identical at any setting; only memory/IO trade off).
//! `HURRICANE_MERGE_MEMORY_BUDGET` / `HURRICANE_SPILL_THRESHOLD_BYTES`
//! apply too (`HurricaneConfig::with_env_overrides`); the flag wins.

use hurricane_apps::clicklog::ClickLogJob;
use hurricane_baseline::{mapreduce, split_input};
use hurricane_core::HurricaneConfig;
use hurricane_storage::{ClusterConfig, StorageCluster};
use hurricane_workloads::clicklog::{region_of, ClickLogGen, ClickLogSpec};
use std::time::{Duration, Instant};

const RECORDS: u64 = 400_000;
const REGIONS: usize = 8;
const NUM_IPS: usize = 1 << 16;

fn config(cloning: bool, merge_memory_budget: u64) -> HurricaneConfig {
    HurricaneConfig {
        compute_nodes: 4,
        worker_slots: 2,
        chunk_size: 32 * 1024,
        clone_interval: Duration::from_millis(5),
        master_poll: Duration::from_millis(1),
        cloning_enabled: cloning,
        ..Default::default()
    }
    .with_env_overrides()
    .with_merge_memory_budget(merge_memory_budget)
}

fn parse_budget(mut argv: std::env::Args) -> Result<u64, String> {
    let _ = argv.next(); // program name
    let mut budget = HurricaneConfig::default()
        .with_env_overrides()
        .merge_memory_budget;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--merge-memory-budget" => {
                let v = argv
                    .next()
                    .ok_or("--merge-memory-budget needs a value (bytes)")?;
                budget = v
                    .parse()
                    .map_err(|_| format!("bad --merge-memory-budget {v:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(budget)
}

fn main() {
    let budget = match parse_budget(std::env::args()) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("real_engine: {e}\nusage: real_engine [--merge-memory-budget BYTES]");
            std::process::exit(2);
        }
    };
    println!("Real-engine ClickLog: {RECORDS} records, {REGIONS} regions, 4 nodes x 2 slots");
    if budget != u64::MAX {
        println!("merge memory budget: {budget} bytes (keyed merges spill past this)");
    }
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>8}",
        "skew", "hurricane", "hurricane-nc", "static", "clones"
    );
    for skew in [0.0, 0.5, 1.0] {
        let input: Vec<u32> = ClickLogGen::new(ClickLogSpec {
            num_ips: NUM_IPS,
            regions: REGIONS,
            skew,
            records: RECORDS,
            seed: 0xD00D,
        })
        .collect();
        let job = ClickLogJob {
            regions: REGIONS,
            num_ips: NUM_IPS,
        };
        let reference = job.reference(input.iter().copied());

        let t = Instant::now();
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let (counts, report) = job
            .run(cluster, config(true, budget), input.iter().copied())
            .unwrap();
        let hurricane = t.elapsed();
        assert_eq!(counts, reference, "hurricane result mismatch");

        let t = Instant::now();
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let (counts, _) = job
            .run(cluster, config(false, budget), input.iter().copied())
            .unwrap();
        let nc = t.elapsed();
        assert_eq!(counts, reference, "hurricane-nc result mismatch");

        let t = Instant::now();
        let (results, static_report) = mapreduce(
            split_input(input.clone(), 8),
            REGIONS,
            4,
            |ip: u32, emit: &mut dyn FnMut(u32, u32)| emit(region_of(ip, NUM_IPS, REGIONS), ip),
            |region: &u32, ips: Vec<u32>| {
                let mut set = hurricane_apps::BitSet::new();
                for ip in ips {
                    set.set(ip);
                }
                (*region, set.count())
            },
        );
        let staticb = t.elapsed();
        let mut by_region = vec![0u64; REGIONS];
        for (r, c) in results.into_iter().flatten() {
            by_region[r as usize] = c;
        }
        assert_eq!(by_region, reference, "static baseline result mismatch");

        println!(
            "{:>6} {:>12.1}ms {:>12.1}ms {:>12.1}ms {:>8}  (static reduce imbalance {:.2}x)",
            format!("s={skew}"),
            hurricane.as_secs_f64() * 1e3,
            nc.as_secs_f64() * 1e3,
            staticb.as_secs_f64() * 1e3,
            report.total_clones,
            static_report.reduce_imbalance,
        );
    }
}
