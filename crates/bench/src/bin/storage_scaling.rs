//! Regenerates the §5.2 storage-scaling experiment (1 to 32 nodes).
fn main() {
    hurricane_bench::experiments::storage_scaling();
}
