//! Regenerates Table 1 (ClickLog runtime over a uniform input).
fn main() {
    hurricane_bench::experiments::table1();
}
