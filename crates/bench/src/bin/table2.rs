//! Regenerates Table 2 (ClickLog: Hurricane vs Spark vs Hadoop).
fn main() {
    hurricane_bench::experiments::table2();
}
