//! Regenerates Table 3 (HashJoin: Hurricane vs Spark).
fn main() {
    hurricane_bench::experiments::table3();
}
