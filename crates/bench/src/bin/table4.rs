//! Regenerates Table 4 (PageRank: Hurricane vs GraphX).
fn main() {
    hurricane_bench::experiments::table4();
}
