//! Validates Eq. 1 (batch-sampling utilization) against Monte-Carlo runs.
fn main() {
    hurricane_bench::experiments::utilization_table();
}
