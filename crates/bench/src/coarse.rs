//! The pre-shard storage baseline, kept for benchmarking.
//!
//! This is a faithful port of the storage hot path as it existed before
//! the sharded refactor (seed commit): every bag at a node lives behind
//! **one** node-global `Mutex<NodeInner>` (bag map, down flag, draining
//! flag — all under the same lock), the cluster consults its bag-metadata
//! mutex twice per operation (`check_bag` then `is_sealed`), and `sample`
//! pays an O(chunks) scan of the unread suffix. Concurrent workers — the
//! exact traffic task cloning creates — serialize on the node lock.
//!
//! The contended microbenches in `benches/microbench.rs` run identical
//! workloads against this baseline and the sharded implementation on the
//! same machine; results are recorded in `BENCH_storage.json`. Stats
//! counters, error wrapping, and flag checks are preserved from the seed
//! so the baseline pays exactly the costs the seed paid.

use hurricane_common::metrics::Counter;
use hurricane_common::{BagId, DetRng, StorageNodeId};
use hurricane_format::Chunk;
use hurricane_storage::placement::CyclicPlacement;
use hurricane_storage::StorageError;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of a remove at one node (seed's `NodeRemove`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoarseRemove {
    /// A chunk was removed.
    Chunk(Chunk),
    /// Nothing here right now; the bag is not sealed.
    Empty,
    /// Nothing here and the bag is sealed.
    Eof,
}

#[derive(Debug, Default)]
struct Stream {
    chunks: Vec<Chunk>,
    next: usize,
}

impl Stream {
    /// The seed's O(chunks) remaining-bytes scan.
    fn remaining_bytes(&self) -> u64 {
        self.chunks[self.next..]
            .iter()
            .map(|c| c.len() as u64)
            .sum()
    }
}

#[derive(Debug, Default)]
struct BagFile {
    streams: HashMap<u32, Stream>,
    sealed: bool,
    total_bytes: u64,
    collected: bool,
}

#[derive(Debug, Default)]
struct NodeInner {
    bags: HashMap<BagId, BagFile>,
    down: bool,
    draining: bool,
}

/// Per-node hot-path statistics (seed's `NodeStats` subset).
#[derive(Debug, Default)]
pub struct CoarseStats {
    /// Chunks appended.
    pub inserts: Counter,
    /// Chunks served.
    pub removes: Counter,
    /// Probes that found nothing.
    pub empty_probes: Counter,
    /// Bytes appended.
    pub bytes_in: Counter,
    /// Bytes served.
    pub bytes_out: Counter,
}

/// Aggregate sample mirroring `hurricane_storage::BagSample`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoarseSample {
    /// Chunks ever inserted.
    pub total_chunks: u64,
    /// Chunks still removable.
    pub remaining_chunks: u64,
    /// Bytes still removable (computed by scanning).
    pub remaining_bytes: u64,
    /// Bytes ever inserted.
    pub total_bytes: u64,
}

/// A storage node with the pre-shard single-mutex layout.
pub struct CoarseNode {
    id: StorageNodeId,
    inner: Mutex<NodeInner>,
    stats: CoarseStats,
}

impl CoarseNode {
    fn new(id: StorageNodeId) -> Self {
        Self {
            id,
            inner: Mutex::new(NodeInner::default()),
            stats: CoarseStats::default(),
        }
    }

    /// This node's statistics.
    pub fn stats(&self) -> &CoarseStats {
        &self.stats
    }

    fn check_up(&self, inner: &NodeInner) -> Result<(), StorageError> {
        if inner.down {
            Err(StorageError::NodeDown(self.id))
        } else {
            Ok(())
        }
    }

    fn insert_from(&self, bag: BagId, chunk: Chunk, origin: u32) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        self.check_up(&inner)?;
        if inner.draining {
            return Err(StorageError::NodeDraining(self.id));
        }
        let file = inner.bags.entry(bag).or_default();
        if file.collected {
            return Err(StorageError::BagCollected(bag));
        }
        if file.sealed {
            return Err(StorageError::BagSealed(bag));
        }
        file.total_bytes += chunk.len() as u64;
        self.stats.bytes_in.add(chunk.len() as u64);
        self.stats.inserts.incr();
        file.streams.entry(origin).or_default().chunks.push(chunk);
        Ok(())
    }

    fn remove_from(&self, bag: BagId, origin: u32) -> Result<CoarseRemove, StorageError> {
        let mut inner = self.inner.lock();
        self.check_up(&inner)?;
        let file = inner.bags.entry(bag).or_default();
        if file.collected {
            return Err(StorageError::BagCollected(bag));
        }
        let sealed = file.sealed;
        let stream = file.streams.entry(origin).or_default();
        if stream.next < stream.chunks.len() {
            let chunk = stream.chunks[stream.next].clone();
            stream.next += 1;
            self.stats.removes.incr();
            self.stats.bytes_out.add(chunk.len() as u64);
            Ok(CoarseRemove::Chunk(chunk))
        } else if sealed {
            self.stats.empty_probes.incr();
            Ok(CoarseRemove::Eof)
        } else {
            self.stats.empty_probes.incr();
            Ok(CoarseRemove::Empty)
        }
    }

    fn mirror_remove(&self, bag: BagId, origin: u32) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        self.check_up(&inner)?;
        let file = inner.bags.entry(bag).or_default();
        let stream = file.streams.entry(origin).or_default();
        if stream.next < stream.chunks.len() {
            stream.next += 1;
        }
        Ok(())
    }

    fn sample(&self, bag: BagId) -> Result<CoarseSample, StorageError> {
        let mut inner = self.inner.lock();
        self.check_up(&inner)?;
        let own = self.id.0;
        let file = inner.bags.entry(bag).or_default();
        let (total, next, remaining_bytes) = file
            .streams
            .get(&own)
            .map(|s| (s.chunks.len(), s.next, s.remaining_bytes()))
            .unwrap_or((0, 0, 0));
        Ok(CoarseSample {
            total_chunks: total as u64,
            remaining_chunks: (total - next) as u64,
            remaining_bytes,
            total_bytes: file.total_bytes,
        })
    }

    fn seal(&self, bag: BagId) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        self.check_up(&inner)?;
        inner.bags.entry(bag).or_default().sealed = true;
        Ok(())
    }
}

#[derive(Debug, Default)]
struct BagMeta {
    sealed: bool,
    collected: bool,
}

/// The pre-shard cluster: nodes behind an `RwLock`, plus one global
/// bag-metadata **mutex** the hot path consults twice per operation, as
/// the seed did.
pub struct CoarseCluster {
    nodes: RwLock<Vec<Arc<CoarseNode>>>,
    bags: Mutex<HashMap<BagId, BagMeta>>,
    replication: usize,
    next_bag: AtomicU64,
}

impl CoarseCluster {
    /// Creates a cluster of `m` nodes with replication factor
    /// `replication` (1 = none).
    pub fn new(m: usize, replication: usize) -> Arc<Self> {
        assert!(m > 0 && replication >= 1 && replication <= m);
        Arc::new(Self {
            nodes: RwLock::new(
                (0..m)
                    .map(|i| Arc::new(CoarseNode::new(StorageNodeId(i as u32))))
                    .collect(),
            ),
            bags: Mutex::new(HashMap::new()),
            replication,
            next_bag: AtomicU64::new(0),
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.read().len()
    }

    /// Allocates a fresh bag id.
    pub fn create_bag(&self) -> BagId {
        let id = BagId(self.next_bag.fetch_add(1, Ordering::Relaxed));
        self.bags.lock().insert(id, BagMeta::default());
        id
    }

    fn check_bag(&self, bag: BagId) -> Result<(), StorageError> {
        let bags = self.bags.lock();
        match bags.get(&bag) {
            None => Err(StorageError::UnknownBag(bag)),
            Some(m) if m.collected => Err(StorageError::BagCollected(bag)),
            Some(_) => Ok(()),
        }
    }

    fn is_sealed(&self, bag: BagId) -> Result<bool, StorageError> {
        self.bags
            .lock()
            .get(&bag)
            .map(|m| m.sealed)
            .ok_or(StorageError::UnknownBag(bag))
    }

    /// Seals `bag` cluster-wide.
    pub fn seal_bag(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_bag(bag)?;
        self.bags
            .lock()
            .get_mut(&bag)
            .ok_or(StorageError::UnknownBag(bag))?
            .sealed = true;
        for n in self.nodes.read().iter() {
            let _ = n.seal(bag);
        }
        Ok(())
    }

    /// Inserts `chunk` at primary `primary_idx`, writing backups — the
    /// seed's double metadata-lock + per-replica single-chunk calls.
    pub fn insert(&self, primary_idx: usize, bag: BagId, chunk: Chunk) -> Result<(), StorageError> {
        self.check_bag(bag)?;
        if self.is_sealed(bag)? {
            return Err(StorageError::BagSealed(bag));
        }
        let nodes = self.nodes.read();
        let m = nodes.len();
        let mut landed = 0usize;
        for k in 0..self.replication {
            if nodes[(primary_idx + k) % m]
                .insert_from(bag, chunk.clone(), (primary_idx % m) as u32)
                .is_ok()
            {
                landed += 1;
            }
        }
        if landed > 0 {
            Ok(())
        } else {
            Err(StorageError::AllReplicasDown(bag))
        }
    }

    /// Removes the next chunk whose primary is `primary_idx`, mirroring
    /// the pointer advance to backups.
    pub fn remove(&self, primary_idx: usize, bag: BagId) -> Result<CoarseRemove, StorageError> {
        self.check_bag(bag)?;
        let sealed = self.is_sealed(bag)?;
        let nodes = self.nodes.read();
        let m = nodes.len();
        let origin = (primary_idx % m) as u32;
        let outcome = nodes[primary_idx % m].remove_from(bag, origin)?;
        if matches!(outcome, CoarseRemove::Chunk(_)) {
            for k in 1..self.replication {
                let _ = nodes[(primary_idx + k) % m].mirror_remove(bag, origin);
            }
        }
        Ok(match outcome {
            CoarseRemove::Empty if sealed => CoarseRemove::Eof,
            CoarseRemove::Eof if !sealed => CoarseRemove::Empty,
            other => other,
        })
    }

    /// Aggregated cluster-wide sample (O(chunks) per node, as the seed's
    /// `remaining_bytes` scan was).
    pub fn sample_bag(&self, bag: BagId) -> Result<CoarseSample, StorageError> {
        self.check_bag(bag)?;
        let mut agg = CoarseSample::default();
        for n in self.nodes.read().iter() {
            let s = n.sample(bag)?;
            agg.total_chunks += s.total_chunks;
            agg.remaining_chunks += s.remaining_chunks;
            agg.remaining_bytes += s.remaining_bytes;
            agg.total_bytes += s.total_bytes;
        }
        Ok(agg)
    }
}

/// The pre-shard per-worker client: cyclic placement over the coarse
/// cluster, one storage call per chunk (the seed's `BagClient` probe
/// loop).
pub struct CoarseClient {
    cluster: Arc<CoarseCluster>,
    bag: BagId,
    insert_cursor: CyclicPlacement,
    remove_cursor: CyclicPlacement,
}

impl CoarseClient {
    /// Creates a client for `bag` with placement seeded by `seed`.
    pub fn new(cluster: Arc<CoarseCluster>, bag: BagId, seed: u64) -> Self {
        let mut rng = DetRng::new(seed);
        let m = cluster.num_nodes();
        Self {
            insert_cursor: CyclicPlacement::new(m, &mut rng),
            remove_cursor: CyclicPlacement::new(m, &mut rng),
            cluster,
            bag,
        }
    }

    /// Inserts one chunk at the next node in cyclic order.
    pub fn insert(&mut self, chunk: Chunk) -> Result<(), StorageError> {
        let target = self.insert_cursor.next_node();
        self.cluster.insert(target, self.bag, chunk)
    }

    /// Attempts to remove one chunk, probing up to one full cycle.
    pub fn try_remove(&mut self) -> Result<Option<Chunk>, StorageError> {
        let m = self.remove_cursor.len();
        for _ in 0..m {
            let target = self.remove_cursor.next_node();
            if let CoarseRemove::Chunk(c) = self.cluster.remove(target, self.bag)? {
                return Ok(Some(c));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_roundtrip() {
        let cluster = CoarseCluster::new(4, 1);
        let bag = cluster.create_bag();
        let mut client = CoarseClient::new(cluster.clone(), bag, 7);
        for i in 0..100u64 {
            client
                .insert(Chunk::from_vec(i.to_le_bytes().to_vec()))
                .unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let s = cluster.sample_bag(bag).unwrap();
        assert_eq!(s.total_chunks, 100);
        assert_eq!(s.remaining_bytes, 800);
        let mut n = 0;
        while client.try_remove().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
        assert_eq!(cluster.sample_bag(bag).unwrap().remaining_chunks, 0);
    }

    #[test]
    fn coarse_replication_mirrors() {
        let cluster = CoarseCluster::new(3, 2);
        let bag = cluster.create_bag();
        cluster.insert(0, bag, Chunk::from_vec(vec![1])).unwrap();
        cluster.insert(0, bag, Chunk::from_vec(vec![2])).unwrap();
        assert!(matches!(
            cluster.remove(0, bag).unwrap(),
            CoarseRemove::Chunk(_)
        ));
        // Backup pointer mirrored: the next origin-0 chunk at the backup
        // is chunk 2.
        let backup = cluster.nodes.read()[1].clone();
        match backup.remove_from(bag, 0).unwrap() {
            CoarseRemove::Chunk(c) => assert_eq!(c.bytes(), &[2]),
            other => panic!("expected chunk, got {other:?}"),
        }
    }

    #[test]
    fn coarse_sealed_semantics() {
        let cluster = CoarseCluster::new(2, 1);
        let bag = cluster.create_bag();
        assert_eq!(cluster.remove(0, bag).unwrap(), CoarseRemove::Empty);
        cluster.seal_bag(bag).unwrap();
        assert_eq!(cluster.remove(0, bag).unwrap(), CoarseRemove::Eof);
        assert!(matches!(
            cluster.insert(0, bag, Chunk::from_vec(vec![1])),
            Err(StorageError::BagSealed(_))
        ));
    }
}
