//! Experiment implementations, one function per paper artifact.
//!
//! All cluster-scale experiments run on the deterministic simulator with
//! the paper's testbed parameters ([`ClusterSpec::paper`]); laptop-scale
//! experiments run the real threaded engine. Functions return their data
//! so the regression tests in `tests/` can assert the paper's qualitative
//! shapes, and print the paper-vs-measured comparison for EXPERIMENTS.md.

use crate::output;
use hurricane_sim::apps::{
    clicklog_app, clicklog_app_with, clicklog_fig6_app, hashjoin_app, pagerank_app,
    storage_scaling_bandwidth,
};
use hurricane_sim::baselines::{
    best_static_run, indivisible_partitions, weighted_partitions, StaticEngineSpec, StaticOutcome,
    StaticPhase,
};
use hurricane_sim::engine::simulate;
use hurricane_sim::spec::{
    ClusterSpec, CrashEvent, DataPlacement, GcModel, HurricaneOpts, MasterCrashEvent,
};
use hurricane_storage::batch;
use hurricane_workloads::{RegionWeights, ZipfSampler};

/// GB in bytes as f64.
const GB: f64 = 1e9;

/// The Table 1 / Figure 5 input sizes (total bytes; the paper quotes
/// per-machine sizes of 10 MB … 100 GB on 32 machines).
pub const SIZES: [(&str, f64); 5] = [
    ("320MB", 0.32 * GB),
    ("3.2GB", 3.2 * GB),
    ("32GB", 32.0 * GB),
    ("320GB", 320.0 * GB),
    ("3.2TB", 3200.0 * GB),
];

/// Paper Table 1 runtimes (seconds) for the sizes above.
pub const PAPER_TABLE1: [f64; 5] = [5.7, 8.9, 22.8, 90.0, 959.0];

/// The skew parameters swept throughout §5.
pub const SKEWS: [f64; 5] = [0.0, 0.2, 0.5, 0.8, 1.0];

/// Number of ClickLog regions in every experiment.
pub const REGIONS: usize = 32;

fn ladder(s: f64) -> RegionWeights {
    RegionWeights::paper_ladder(REGIONS, s)
}

/// Peak GC throughput loss for the ≥100 GB/machine points (paper §5.1:
/// "half of this overhead is due to desynchronized garbage collection
/// pauses at storage nodes"; calibrated so the s = 1, 100 GB/machine
/// point lands near the paper's 2.4×). Desynchronized pauses hurt in
/// proportion to how much the run leans on peak tail throughput, so the
/// loss is scaled by the skew parameter.
pub const GC_PEAK_LOSS: f64 = 0.45;

fn opts_for(input_bytes: f64, skew: f64) -> HurricaneOpts {
    let mut o = HurricaneOpts::default();
    if skew > 0.0 && input_bytes >= 3000.0 * GB {
        o.gc = Some(GcModel {
            throughput_loss: GC_PEAK_LOSS * skew,
            only_when_spilling: true,
        });
    }
    o
}

// ----------------------------------------------------------------------
// Table 1
// ----------------------------------------------------------------------

/// Table 1: ClickLog runtime over uniform input, 320 MB → 3.2 TB.
pub fn table1() -> Vec<(String, f64)> {
    let cluster = ClusterSpec::paper();
    let uniform = RegionWeights::uniform(REGIONS);
    let mut rows = Vec::new();
    output::banner(
        "Table 1",
        "ClickLog runtime over a uniform input (32 machines)",
    );
    output::row(&["input".into(), "paper".into(), "measured".into()]);
    for (i, &(label, bytes)) in SIZES.iter().enumerate() {
        let r = simulate(
            &clicklog_app(bytes, &uniform),
            &cluster,
            &HurricaneOpts::default(),
        );
        output::row(&[
            label.into(),
            output::secs(PAPER_TABLE1[i]),
            output::secs(r.total_secs),
        ]);
        rows.push((label.to_string(), r.total_secs));
    }
    rows
}

// ----------------------------------------------------------------------
// Figure 5
// ----------------------------------------------------------------------

/// Figure 5: ClickLog slowdown (normalized to uniform) vs skew × size.
/// Returns `[size][skew] -> normalized runtime`.
pub fn fig5() -> Vec<Vec<f64>> {
    let cluster = ClusterSpec::paper();
    let uniform = RegionWeights::uniform(REGIONS);
    let mut matrix = Vec::new();
    output::banner(
        "Figure 5",
        "ClickLog runtime with increasing skew, normalized to uniform (paper: ≤2.4x)",
    );
    let mut header = vec!["input/machine".to_string()];
    header.extend(SKEWS.iter().map(|s| format!("s={s}")));
    output::row(&header);
    for &(label, bytes) in &SIZES {
        let base = simulate(
            &clicklog_app(bytes, &uniform),
            &cluster,
            &opts_for(bytes, 0.0),
        )
        .total_secs;
        let mut row_vals = Vec::new();
        let mut cols = vec![label.to_string()];
        for &s in &SKEWS {
            let w = if s == 0.0 { uniform.clone() } else { ladder(s) };
            let r = simulate(&clicklog_app(bytes, &w), &cluster, &opts_for(bytes, s));
            let norm = r.total_secs / base;
            cols.push(format!("{norm:.2}x"));
            row_vals.push(norm);
        }
        output::row(&cols);
        matrix.push(row_vals);
    }
    println!("(paper reference: worst case 2.4x at 100GB/machine, s=1; 1.24x at 1GB/machine)");
    matrix
}

// ----------------------------------------------------------------------
// Figure 6
// ----------------------------------------------------------------------

/// One Figure 6 data point.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Phase-2 partition count.
    pub partitions: usize,
    /// Hurricane total runtime (s).
    pub hurricane: f64,
    /// HurricaneNC (no cloning) total runtime (s).
    pub nc: f64,
}

/// Figure 6: Hurricane vs HurricaneNC with increasing partition count
/// (32 GB input, s = 1), plus the Amdahl best-case slowdown reference.
pub fn fig6() -> Vec<Fig6Point> {
    let cluster = ClusterSpec::paper();
    let num_keys = 1 << 20;
    output::banner(
        "Figure 6",
        "Hurricane vs HurricaneNC, 32GB input, s=1, partitions 32..4096",
    );
    output::row(&[
        "partitions".into(),
        "Hurricane".into(),
        "HurricaneNC".into(),
        "Amdahl-bound".into(),
    ]);
    let mut points = Vec::new();
    for parts in [32usize, 64, 128, 256, 512, 1024, 2048, 4096] {
        let app = clicklog_fig6_app(32.0 * GB, num_keys, 1.0, parts);
        let h = simulate(&app, &cluster, &HurricaneOpts::default());
        let nc = simulate(&app, &cluster, &HurricaneOpts::no_cloning());
        let masses = hurricane_workloads::zipf::region_masses(num_keys, parts, 1.0);
        let amdahl = hurricane_workloads::zipf::amdahl_slowdown(
            hurricane_workloads::zipf::largest_fraction(&masses),
            cluster.machines,
        );
        output::row(&[
            parts.to_string(),
            output::secs(h.total_secs),
            output::secs(nc.total_secs),
            format!("{amdahl:.1}x"),
        ]);
        points.push(Fig6Point {
            partitions: parts,
            hurricane: h.total_secs,
            nc: nc.total_secs,
        });
    }
    points
}

// ----------------------------------------------------------------------
// Figures 7 & 8
// ----------------------------------------------------------------------

/// One configuration's per-phase runtimes for Figures 7 and 8.
#[derive(Debug, Clone)]
pub struct ConfigPoint {
    /// Configuration label (e.g. "c=on,spread").
    pub config: &'static str,
    /// Phase 1 runtime per skew value (s).
    pub phase1: Vec<f64>,
    /// Phase 2 runtime per skew value (s).
    pub phase2: Vec<f64>,
}

/// Figures 7/8: cloning {off,on} × data {local,spread} on 8 machines with
/// 80 GB of input, per-phase runtimes across the skew sweep.
pub fn fig7_8() -> Vec<ConfigPoint> {
    let cluster = ClusterSpec::paper_scaled(8);
    output::banner(
        "Figures 7 & 8",
        "ClickLog phase runtimes by configuration (8 machines, 80GB)",
    );
    let configs: [(&'static str, bool, DataPlacement); 4] = [
        ("c=off,local", false, DataPlacement::Local),
        ("c=off,spread", false, DataPlacement::Spread),
        ("c=on,local", true, DataPlacement::Local),
        ("c=on,spread", true, DataPlacement::Spread),
    ];
    let mut out = Vec::new();
    for (name, cloning, placement) in configs {
        let mut p1 = Vec::new();
        let mut p2 = Vec::new();
        for &s in &SKEWS {
            let w = if s == 0.0 {
                RegionWeights::uniform(REGIONS)
            } else {
                ladder(s)
            };
            let app = clicklog_app_with(80.0 * GB, &w, placement, true);
            let opts = if cloning {
                HurricaneOpts::default()
            } else {
                HurricaneOpts::no_cloning()
            };
            let r = simulate(&app, &cluster, &opts);
            p1.push(r.phase_secs.get("phase1").copied().unwrap_or(0.0));
            p2.push(r.phase_secs.get("phase2").copied().unwrap_or(0.0));
        }
        let fmt_vec = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x:.0}"))
                .collect::<Vec<_>>()
                .join("/")
        };
        output::row(&[
            name.into(),
            format!("phase1[{}]s", fmt_vec(&p1)),
            format!("phase2[{}]s", fmt_vec(&p2)),
        ]);
        out.push(ConfigPoint {
            config: name,
            phase1: p1,
            phase2: p2,
        });
    }
    println!("(columns are skews 0 / 0.2 / 0.5 / 0.8 / 1.0)");
    out
}

// ----------------------------------------------------------------------
// Figure 9 / Figure 11
// ----------------------------------------------------------------------

/// Figure 9: aggregate throughput over time, 320 GB, s = 1.
pub fn fig9() -> hurricane_sim::SimResult {
    let cluster = ClusterSpec::paper();
    let app = clicklog_app(320.0 * GB, &ladder(1.0));
    let r = simulate(&app, &cluster, &HurricaneOpts::default());
    output::banner(
        "Figure 9",
        "ClickLog aggregate throughput over time, 320GB, s=1 (cloning ramp)",
    );
    output::strip_chart(&r.timeline.bucketize(5.0), 48);
    println!(
        "clones created: {}  peak concurrent workers: {}  peak single-task instances: {}",
        r.total_clones, r.peak_workers, r.peak_task_instances
    );
    println!("(paper: ramp to 32 clones in phase 1, 26 clones in the last region, merge tail)");
    r
}

/// Figure 11: throughput with two compute-node crashes and two master
/// crashes (paper: master recovery < 1 s, node crash costs a partial
/// restart).
pub fn fig11() -> hurricane_sim::SimResult {
    let cluster = ClusterSpec::paper();
    let app = clicklog_app(320.0 * GB, &RegionWeights::uniform(REGIONS));
    let opts = HurricaneOpts {
        crashes: vec![
            CrashEvent {
                at: 20.0,
                node: 3,
                back_at: Some(25.0),
            },
            CrashEvent {
                at: 80.0,
                node: 7,
                back_at: Some(85.0),
            },
        ],
        master_crashes: vec![
            MasterCrashEvent {
                at: 45.0,
                recovery_secs: 1.0,
            },
            MasterCrashEvent {
                at: 105.0,
                recovery_secs: 1.0,
            },
        ],
        ..HurricaneOpts::default()
    };
    let r = simulate(&app, &cluster, &opts);
    output::banner(
        "Figure 11",
        "Throughput with node crashes (t=20s, 80s) and master crashes (t=45s, 105s)",
    );
    output::strip_chart(&r.timeline.bucketize(5.0), 48);
    println!(
        "total runtime: {} (fault-free: see Table 1's 320GB row)",
        output::secs(r.total_secs)
    );
    r
}

// ----------------------------------------------------------------------
// Figure 10 / storage scaling / Eq. 1
// ----------------------------------------------------------------------

/// Figure 10: ClickLog phase-1 runtime vs batching factor, normalized to
/// b = 1. Returns `(b, normalized_runtime)` pairs.
pub fn fig10() -> Vec<(u32, f64)> {
    let cluster = ClusterSpec::paper();
    let uniform = RegionWeights::uniform(REGIONS);
    output::banner(
        "Figure 10",
        "Phase 1 runtime vs batching factor b, normalized to b=1 (paper: b=10 ≈ 33% faster)",
    );
    let mut base = None;
    let mut rows = Vec::new();
    output::row(&["b".into(), "phase1".into(), "normalized".into()]);
    for b in [1u32, 2, 3, 5, 10, 16, 32] {
        let opts = HurricaneOpts {
            batch_factor: b,
            ..HurricaneOpts::default()
        };
        let r = simulate(&clicklog_app(320.0 * GB, &uniform), &cluster, &opts);
        let p1 = r.phase_secs.get("phase1").copied().unwrap_or(r.total_secs);
        let base_v = *base.get_or_insert(p1);
        output::row(&[
            format!("b={b}"),
            output::secs(p1),
            format!("{:.2}", p1 / base_v),
        ]);
        rows.push((b, p1 / base_v));
    }
    rows
}

/// §5.2 storage scaling: aggregate read/write bandwidth for 1..32 nodes
/// (paper: 330 MB/s → 10.53 GB/s read, 31.9× for 32× nodes).
pub fn storage_scaling() -> Vec<(u32, f64)> {
    output::banner(
        "Storage scaling (§5.2)",
        "Aggregate storage bandwidth vs node count (b=10)",
    );
    output::row(&["nodes".into(), "bandwidth".into(), "speedup".into()]);
    let mut rows = Vec::new();
    let single = storage_scaling_bandwidth(330e6, 1, 10);
    let mut nodes = 1u32;
    while nodes <= 32 {
        let bw = storage_scaling_bandwidth(330e6, nodes, 10);
        output::row(&[
            nodes.to_string(),
            format!("{:.2}GB/s", bw / 1e9),
            format!("{:.1}x", bw / single),
        ]);
        rows.push((nodes, bw));
        nodes *= 2;
    }
    println!("(paper: 10.53GB/s read and 10.39GB/s write at 32 nodes, 31.9x / 31.7x)");
    rows
}

/// Eq. 1: analytic utilization vs Monte-Carlo simulation.
pub fn utilization_table() -> Vec<(u32, u32, f64, f64)> {
    output::banner(
        "Eq. 1",
        "Storage utilization ρ(b,m) = 1 − (1 − 1/m)^(bm): analytic vs Monte-Carlo",
    );
    output::row(&[
        "b".into(),
        "m".into(),
        "analytic".into(),
        "simulated".into(),
    ]);
    let mut rng = hurricane_common::DetRng::new(0xE91);
    let mut rows = Vec::new();
    for &m in &[8u32, 32, 128, 1000] {
        for &b in &[1u32, 2, 3, 10] {
            let a = batch::utilization(b, m);
            let s = batch::simulate_utilization(b, m, 300, &mut rng);
            output::row(&[
                b.to_string(),
                m.to_string(),
                format!("{a:.3}"),
                format!("{s:.3}"),
            ]);
            rows.push((b, m, a, s));
        }
    }
    println!("(paper: 63% at b=1, 86% at b=2, 95% at b=3, >99% at b=10)");
    rows
}

// ----------------------------------------------------------------------
// Tables 2–4 and Figure 12 (system comparisons)
// ----------------------------------------------------------------------

/// ClickLog as a two-stage static job: divisible map over the raw input,
/// then one *indivisible* reduce partition per region (a region's
/// distinct-count must be computed by one task in a static engine).
pub fn clicklog_static_phases(total: f64, weights: &RegionWeights, n: usize) -> Vec<StaticPhase> {
    vec![
        StaticPhase {
            partitions: weighted_partitions(total, &[1.0], n),
            cpu_rate: 400e6,
            shuffled: true,
        },
        StaticPhase {
            partitions: weights.weights().iter().map(|&w| w * total).collect(),
            cpu_rate: 800e6,
            shuffled: false,
        },
    ]
}

/// Table 2: ClickLog on uniform input — Hurricane vs Spark vs Hadoop.
pub fn table2() -> Vec<(String, f64, StaticOutcome, StaticOutcome)> {
    let cluster = ClusterSpec::paper();
    let uniform = RegionWeights::uniform(REGIONS);
    output::banner(
        "Table 2",
        "ClickLog over uniform input: Hurricane vs Spark vs Hadoop",
    );
    output::row(&[
        "input".into(),
        "Hurricane".into(),
        "Spark".into(),
        "Hadoop".into(),
        "paper(H/S/Hd)".into(),
    ]);
    let paper = [(5.7, 8.2, 37.1), (22.8, 32.4, 50.3)];
    let mut rows = Vec::new();
    for (i, &(label, bytes)) in [("320MB", 0.32 * GB), ("32GB", 32.0 * GB)]
        .iter()
        .enumerate()
    {
        let h = simulate(
            &clicklog_app(bytes, &uniform),
            &cluster,
            &HurricaneOpts::default(),
        );
        let spark = best_static_run(
            |n| clicklog_static_phases(bytes, &uniform, n),
            &cluster,
            &StaticEngineSpec::spark(),
            3600.0,
        );
        let hadoop = best_static_run(
            |n| clicklog_static_phases(bytes, &uniform, n),
            &cluster,
            &StaticEngineSpec::hadoop(),
            3600.0,
        );
        output::row(&[
            label.to_string(),
            output::secs(h.total_secs),
            output::outcome(&spark),
            output::outcome(&hadoop),
            format!("{}/{}/{}", paper[i].0, paper[i].1, paper[i].2),
        ]);
        rows.push((label.to_string(), h.total_secs, spark, hadoop));
    }
    rows
}

/// One Figure 12 cell: a system's runtime normalized to its own uniform
/// runtime, or a crash/timeout marker.
#[derive(Debug, Clone)]
pub enum Fig12Cell {
    /// Finished; slowdown relative to that system's uniform runtime.
    Slowdown(f64),
    /// The run crashed (paper: negative bars).
    Crashed,
    /// The run exceeded one hour (paper: full bars).
    TimedOut,
}

/// Figure 12: skew slowdown for Hurricane / Spark / Hadoop at 320 MB and
/// 32 GB. Returns `[size][skew] -> (hurricane, spark, hadoop)`.
pub fn fig12() -> Vec<Vec<(f64, Fig12Cell, Fig12Cell)>> {
    let cluster = ClusterSpec::paper();
    let uniform = RegionWeights::uniform(REGIONS);
    output::banner(
        "Figure 12",
        "Slowdown vs own uniform runtime (paper: Spark crashes at high skew on 32GB)",
    );
    let mut out = Vec::new();
    for &(label, bytes) in &[("320MB", 0.32 * GB), ("32GB", 32.0 * GB)] {
        let h_base = simulate(
            &clicklog_app(bytes, &uniform),
            &cluster,
            &HurricaneOpts::default(),
        )
        .total_secs;
        let sp_base = best_static_run(
            |n| clicklog_static_phases(bytes, &uniform, n),
            &cluster,
            &StaticEngineSpec::spark(),
            3600.0,
        )
        .secs()
        .expect("uniform Spark finishes");
        let hd_base = best_static_run(
            |n| clicklog_static_phases(bytes, &uniform, n),
            &cluster,
            &StaticEngineSpec::hadoop(),
            3600.0,
        )
        .secs()
        .expect("uniform Hadoop finishes");
        let mut size_rows = Vec::new();
        for &s in &SKEWS {
            let w = if s == 0.0 { uniform.clone() } else { ladder(s) };
            let h = simulate(
                &clicklog_app(bytes, &w),
                &cluster,
                &HurricaneOpts::default(),
            )
            .total_secs
                / h_base;
            let cell = |o: StaticOutcome, base: f64| match o {
                StaticOutcome::Finished(v) => Fig12Cell::Slowdown(v / base),
                StaticOutcome::OutOfMemory => Fig12Cell::Crashed,
                StaticOutcome::TimedOut(_) => Fig12Cell::TimedOut,
            };
            let sp = cell(
                best_static_run(
                    |n| clicklog_static_phases(bytes, &w, n),
                    &cluster,
                    &StaticEngineSpec::spark(),
                    3600.0,
                ),
                sp_base,
            );
            let hd = cell(
                best_static_run(
                    |n| clicklog_static_phases(bytes, &w, n),
                    &cluster,
                    &StaticEngineSpec::hadoop(),
                    3600.0,
                ),
                hd_base,
            );
            let show = |c: &Fig12Cell| match c {
                Fig12Cell::Slowdown(v) => format!("{v:.1}x"),
                Fig12Cell::Crashed => "crash".into(),
                Fig12Cell::TimedOut => ">1h".into(),
            };
            output::row(&[
                format!("{label} s={s}"),
                format!("H={h:.2}x"),
                format!("Spark={}", show(&sp)),
                format!("Hadoop={}", show(&hd)),
            ]);
            size_rows.push((h, sp, hd));
        }
        out.push(size_rows);
    }
    out
}

/// Table 3: HashJoin — Hurricane vs Spark, two size pairs × two skews.
pub fn table3() -> Vec<(String, f64, StaticOutcome)> {
    let cluster = ClusterSpec::paper();
    output::banner(
        "Table 3",
        "HashJoin runtime (paper: H 56/89/519/1216s, Spark 81/1615/920/>12h)",
    );
    output::row(&[
        "join".into(),
        "skew".into(),
        "Hurricane".into(),
        "Spark".into(),
    ]);
    let num_keys = 1 << 14;
    let key_masses: Vec<Vec<f64>> = [0.0, 1.0]
        .iter()
        .map(|&s| {
            let z = ZipfSampler::new(num_keys, s);
            (0..num_keys).map(|k| z.pmf(k)).collect()
        })
        .collect();
    let mut rows = Vec::new();
    for &(small, large) in &[(3.2 * GB, 32.0 * GB), (32.0 * GB, 320.0 * GB)] {
        for (si, &s) in [0.0f64, 1.0].iter().enumerate() {
            let w = RegionWeights::zipf(1 << 16, REGIONS, s);
            let h = simulate(
                &hashjoin_app(small, large, &w),
                &cluster,
                &HurricaneOpts::default(),
            );
            let keys = &key_masses[si];
            let spark = best_static_run(
                |n| {
                    vec![
                        StaticPhase {
                            partitions: weighted_partitions(small + large, &[1.0], n),
                            cpu_rate: 300e6,
                            shuffled: true,
                        },
                        StaticPhase {
                            partitions: indivisible_partitions(large * 2.0, keys, n),
                            cpu_rate: 400e6,
                            shuffled: false,
                        },
                    ]
                },
                &cluster,
                &StaticEngineSpec::spark_join(),
                12.0 * 3600.0,
            );
            let label = format!("{:.1}GB ⋈ {:.0}GB", small / GB, large / GB);
            output::row(&[
                label.clone(),
                format!("s={s}"),
                output::secs(h.total_secs),
                output::outcome(&spark),
            ]);
            rows.push((format!("{label} s={s}"), h.total_secs, spark));
        }
    }
    rows
}

/// Table 4: PageRank (5 iterations) — Hurricane vs GraphX on RMAT graphs.
pub fn table4() -> Vec<(u32, f64, StaticOutcome)> {
    let cluster = ClusterSpec::paper();
    output::banner(
        "Table 4",
        "PageRank x5 iterations (paper: H 38/225/688s, GraphX 189/3007/>12h)",
    );
    output::row(&["graph".into(), "Hurricane".into(), "GraphX".into()]);
    let mut rows = Vec::new();
    for scale in [24u32, 27, 30] {
        let h = simulate(
            &pagerank_app(scale, 5, REGIONS),
            &cluster,
            &HurricaneOpts::default(),
        );
        let total = (hurricane_workloads::rmat::EDGE_FACTOR << scale) as f64 * 12.0;
        let gx = best_static_run(
            |n| {
                let parts = (n.next_power_of_two() / 2).clamp(128, 2048);
                let wts = hurricane_workloads::rmat::partition_edge_weights(scale, parts);
                (0..5)
                    .map(|_| StaticPhase {
                        partitions: wts.iter().map(|&w| w * total).collect(),
                        cpu_rate: 60e6,
                        shuffled: true,
                    })
                    .collect()
            },
            &cluster,
            &StaticEngineSpec::graphx(),
            12.0 * 3600.0,
        );
        output::row(&[
            format!("RMAT-{scale}"),
            output::secs(h.total_secs),
            output::outcome(&gx),
        ]);
        rows.push((scale, h.total_secs, gx));
    }
    rows
}

// ----------------------------------------------------------------------
// Ablations beyond the paper
// ----------------------------------------------------------------------

/// Clone-interval sensitivity (the paper fixes 2 s): 32 GB, s = 1.
pub fn ablation_clone_interval() -> Vec<(f64, f64)> {
    let cluster = ClusterSpec::paper();
    output::banner(
        "Ablation",
        "Clone-interval sensitivity, 32GB s=1 (paper fixes 2s)",
    );
    output::row(&["interval".into(), "runtime".into()]);
    let mut rows = Vec::new();
    for interval in [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let opts = HurricaneOpts {
            clone_interval: interval,
            ..HurricaneOpts::default()
        };
        let r = simulate(&clicklog_app(32.0 * GB, &ladder(1.0)), &cluster, &opts);
        output::row(&[format!("{interval}s"), output::secs(r.total_secs)]);
        rows.push((interval, r.total_secs));
    }
    rows
}

/// Heuristic ablation: Eq. 2 vs an instance cap of 1 vs unbounded
/// cloning pressure (max instances = machines), on 32 GB s = 1.
pub fn ablation_instance_cap() -> Vec<(usize, f64)> {
    let cluster = ClusterSpec::paper();
    output::banner(
        "Ablation",
        "Max-instances cap, 32GB s=1 (paper clones up to one per machine)",
    );
    output::row(&["cap".into(), "runtime".into()]);
    let mut rows = Vec::new();
    for cap in [1usize, 2, 4, 8, 16, 32] {
        let opts = HurricaneOpts {
            max_instances: Some(cap),
            ..HurricaneOpts::default()
        };
        let r = simulate(&clicklog_app(32.0 * GB, &ladder(1.0)), &cluster, &opts);
        output::row(&[cap.to_string(), output::secs(r.total_secs)]);
        rows.push((cap, r.total_secs));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1();
        // Monotone growth, and within 2x of every paper point.
        for (i, (label, secs)) in rows.iter().enumerate() {
            let ratio = secs / PAPER_TABLE1[i];
            assert!(
                (0.5..2.0).contains(&ratio),
                "{label}: measured {secs:.1}s vs paper {} ({ratio:.2}x)",
                PAPER_TABLE1[i]
            );
            if i > 0 {
                assert!(secs > &rows[i - 1].1, "runtime must grow with input");
            }
        }
    }

    #[test]
    fn fig5_bounded_like_paper() {
        let m = fig5();
        for row in &m {
            for (j, &v) in row.iter().enumerate() {
                assert!(v >= 0.95, "slowdown below 1 at skew {}", SKEWS[j]);
                assert!(v < 2.8, "paper's worst case is 2.4x; got {v:.2}");
            }
            // Monotone-ish in skew: s=1 within each size is the worst.
            let max = row.iter().cloned().fold(0.0f64, f64::max);
            assert!((row[4] - max).abs() < 0.15 * max);
        }
    }

    #[test]
    fn fig6_cloning_beats_static_partitioning() {
        let pts = fig6();
        for p in &pts {
            assert!(
                p.hurricane <= p.nc * 1.05,
                "cloning should not lose at P={}",
                p.partitions
            );
        }
        // At coarse partitioning the gap is big.
        assert!(pts[0].nc > pts[0].hurricane * 1.2);
    }

    #[test]
    fn fig10_batch_sampling_helps_then_plateaus() {
        let rows = fig10();
        let b1 = rows[0].1;
        let b10 = rows.iter().find(|r| r.0 == 10).expect("b=10 row").1;
        assert!((b1 - 1.0).abs() < 1e-9);
        assert!(
            b10 < 0.8,
            "b=10 should be much faster than b=1 (paper: 33%), got {b10:.2}"
        );
        let b32 = rows.last().expect("rows").1;
        assert!((b32 - b10).abs() < 0.05, "plateau after b=10");
    }
}
