//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation (§5).
//!
//! Each `src/bin/*.rs` binary reproduces one artifact and prints the
//! paper's reported rows next to this reproduction's measured values.
//! The heavy lifting lives here so the binaries stay thin and the
//! regression tests can call the same experiment functions.
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — ClickLog runtime vs input size (uniform) |
//! | `table2` | Table 2 — ClickLog vs Spark vs Hadoop (uniform) |
//! | `table3` | Table 3 — HashJoin vs Spark |
//! | `table4` | Table 4 — PageRank vs GraphX |
//! | `fig5`   | Figure 5 — ClickLog slowdown vs skew × size |
//! | `fig6`   | Figure 6 — Hurricane vs HurricaneNC vs partition count |
//! | `fig7_8` | Figures 7/8 — cloning × placement ablation |
//! | `fig9`   | Figure 9 — throughput over time (cloning ramp) |
//! | `fig10`  | Figure 10 — batch-sampling factor sweep |
//! | `fig11`  | Figure 11 — throughput under crashes |
//! | `fig12`  | Figure 12 — skew slowdown, three systems |
//! | `storage_scaling` | §5.2 — storage bandwidth scaling 1→32 nodes |
//! | `utilization` | Eq. 1 — analytic vs Monte-Carlo utilization |
//! | `ablation_clone_interval` | extension — clone-interval sensitivity |
//! | `real_engine` | laptop-scale: real runtime vs real static engine |

pub mod coarse;
pub mod experiments;
pub mod output;
