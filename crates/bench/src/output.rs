//! Table and chart rendering for the experiment binaries.

use hurricane_sim::baselines::StaticOutcome;

/// Prints a header banner for one experiment.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Renders a static-engine outcome the way the paper prints it.
pub fn outcome(o: &StaticOutcome) -> String {
    match o {
        StaticOutcome::Finished(s) => secs(*s),
        StaticOutcome::OutOfMemory => "crash (OOM)".into(),
        StaticOutcome::TimedOut(s) => format!(">{:.0}h", s / 3600.0),
    }
}

/// Formats seconds compactly ("5.7s", "959s", "12.3h").
pub fn secs(s: f64) -> String {
    hurricane_common::units::fmt_secs(s)
}

/// Prints one row of aligned columns.
pub fn row(cols: &[String]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Renders an ASCII bar of `value` scaled so that `max` is `width` chars.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

/// Prints a time series as an ASCII strip chart (one row per bucket).
pub fn strip_chart(series: &[(f64, f64)], width: usize) {
    let max = series.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    for &(t, v) in series {
        println!(
            "{:>7.0}s |{:<width$}| {:>10.2} MB/s",
            t,
            bar(v, max, width),
            v / 1e6,
            width = width
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10, "clamped");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn outcome_strings() {
        assert_eq!(outcome(&StaticOutcome::OutOfMemory), "crash (OOM)");
        assert_eq!(outcome(&StaticOutcome::TimedOut(43_200.0)), ">12h");
        assert_eq!(outcome(&StaticOutcome::Finished(5.7)), "5.7s");
    }
}
