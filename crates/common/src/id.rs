//! Strongly-typed identifiers.
//!
//! Hurricane distinguishes several namespaces of identifiers — storage
//! nodes, compute nodes, tasks, task clones, bags, and workers. Using
//! newtypes rather than bare integers prevents an entire class of
//! cross-namespace mix-ups (e.g. indexing the storage-node table with a
//! compute-node id), which matters in a system whose data plane is driven by
//! pseudorandom permutations over node ids.

use core::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value of this identifier.
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Returns this identifier as a `usize` index, for table lookups.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(self, f)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// Identifies one Hurricane application (one submitted job graph).
    AppId, u32, "app"
);
define_id!(
    /// Identifies a storage node (a Hurricane server holding bag data).
    StorageNodeId, u32, "sn"
);
define_id!(
    /// Identifies a compute node (a node running a task manager + workers).
    ComputeNodeId, u32, "cn"
);
define_id!(
    /// Identifies a task *blueprint*: one circle in the application graph.
    ///
    /// Clones of the task share the `TaskId`; the pair of a `TaskId` and a
    /// [`CloneId`] — a [`TaskInstanceId`] — names one concrete worker-visible
    /// unit of execution.
    TaskId, u32, "task"
);
define_id!(
    /// Distinguishes clones of the same task. Clone 0 is the original.
    CloneId, u32, "clone"
);
define_id!(
    /// Identifies a data or work bag.
    BagId, u64, "bag"
);
define_id!(
    /// Identifies a worker slot on a compute node.
    WorkerId, u64, "worker"
);

/// One schedulable unit of execution: a task blueprint plus a clone index.
///
/// The application master creates instance `(t, 0)` when task `t` is first
/// scheduled, and instances `(t, 1..)` as cloning decisions are made
/// (paper §3.2). All instances of the same task read from the same input
/// bag(s); instances with a merge write to per-clone partial-output bags.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TaskInstanceId {
    /// The task blueprint this instance executes.
    pub task: TaskId,
    /// Which clone this is; 0 for the original instance.
    pub clone: CloneId,
}

impl TaskInstanceId {
    /// Creates the original (non-clone) instance of `task`.
    pub const fn original(task: TaskId) -> Self {
        Self {
            task,
            clone: CloneId(0),
        }
    }

    /// Creates the `n`-th clone instance of `task`.
    pub const fn clone_of(task: TaskId, n: u32) -> Self {
        Self {
            task,
            clone: CloneId(n),
        }
    }

    /// Returns true if this is the original instance rather than a clone.
    pub const fn is_original(self) -> bool {
        self.clone.0 == 0
    }

    /// Packs the instance into a single `u64`, used as a stable key when an
    /// instance id must be serialized into a work-bag record.
    pub const fn pack(self) -> u64 {
        ((self.task.0 as u64) << 32) | self.clone.0 as u64
    }

    /// Inverse of [`TaskInstanceId::pack`].
    pub const fn unpack(v: u64) -> Self {
        Self {
            task: TaskId((v >> 32) as u32),
            clone: CloneId(v as u32),
        }
    }
}

impl fmt::Display for TaskInstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_original() {
            write!(f, "{}", self.task)
        } else {
            write!(f, "{}.{}", self.task, self.clone)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(StorageNodeId(3).to_string(), "sn3");
        assert_eq!(ComputeNodeId(0).to_string(), "cn0");
        assert_eq!(TaskId(7).to_string(), "task7");
        assert_eq!(BagId(9).to_string(), "bag9");
    }

    #[test]
    fn instance_display_hides_clone_zero() {
        assert_eq!(TaskInstanceId::original(TaskId(4)).to_string(), "task4");
        assert_eq!(
            TaskInstanceId::clone_of(TaskId(4), 2).to_string(),
            "task4.clone2"
        );
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for task in [0u32, 1, 17, u32::MAX] {
            for clone in [0u32, 1, 255, u32::MAX] {
                let id = TaskInstanceId::clone_of(TaskId(task), clone);
                assert_eq!(TaskInstanceId::unpack(id.pack()), id);
            }
        }
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(TaskId(1) < TaskId(2));
        assert!(BagId(10) > BagId(9));
    }

    #[test]
    fn index_matches_raw() {
        assert_eq!(StorageNodeId(5).index(), 5);
        assert_eq!(WorkerId(12).raw(), 12);
    }
}
