//! Shared primitives for the Hurricane reproduction.
//!
//! This crate hosts the small, dependency-light building blocks that every
//! other crate in the workspace uses:
//!
//! * [`id`] — strongly-typed identifiers for nodes, tasks, bags, and workers.
//! * [`rng`] — deterministic, seedable random number generation. Every
//!   randomized decision in the system (chunk placement permutations, batch
//!   sampling, workload synthesis, simulation) flows through these
//!   generators so that runs are reproducible bit-for-bit.
//! * [`units`] — byte/time unit constants and human-readable formatting.
//! * [`metrics`] — counters, histograms, and time series used by the
//!   runtime, the simulator, and the benchmark harness (e.g. the throughput
//!   timelines of Figures 9 and 11 in the paper).
//!
//! The crate deliberately has no knowledge of chunks, bags, or tasks beyond
//! their identifiers; those concepts live in `hurricane-format`,
//! `hurricane-storage`, and `hurricane-core`.

pub mod id;
pub mod metrics;
pub mod rng;
pub mod units;

pub use id::{
    AppId, BagId, CloneId, ComputeNodeId, StorageNodeId, TaskId, TaskInstanceId, WorkerId,
};
pub use rng::{DetRng, SplitMix64};
