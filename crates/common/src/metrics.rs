//! Counters, histograms, and throughput time series.
//!
//! The runtime uses [`Counter`]s for hot-path statistics (chunks moved,
//! probes issued, clone requests), [`Histogram`]s for latency-ish
//! distributions, and [`TimeSeries`] to reconstruct the paper's
//! throughput-over-time plots (Figures 9 and 11): raw `(time, bytes)`
//! events are recorded during execution and bucketized into one-second
//! aggregate-throughput samples afterwards.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples whose value has `i` significant bits, i.e.
/// values in `[2^(i-1), 2^i)` (bucket 0 holds the value 0). This is coarse
/// but allocation-free and cheap enough for per-chunk recording.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the mean of recorded samples, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns the smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Returns the largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Returns an upper bound on the `q`-quantile (0 ≤ q ≤ 1) from the
    /// bucket boundaries. Coarse by design: the answer is exact only up to
    /// the enclosing power-of-two bucket.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Some(if i == 0 { 0 } else { (1u64 << i) - 1 });
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A raw event series of `(time_seconds, value)` pairs.
///
/// The simulator appends one event per modelled I/O completion; the bench
/// harness then calls [`TimeSeries::bucketize`] to obtain the per-second
/// aggregate throughput that Figures 9 and 11 plot.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    events: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `value` at time `t` (seconds). Events may arrive unsorted.
    pub fn record(&mut self, t: f64, value: f64) {
        self.events.push((t, value));
    }

    /// Returns the number of raw events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns true if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns the raw events.
    pub fn events(&self) -> &[(f64, f64)] {
        &self.events
    }

    /// Sums event values into fixed-width time buckets.
    ///
    /// Returns `(bucket_start_time, sum_of_values / bucket_width)` pairs —
    /// i.e. average rate per bucket — covering `[0, end]` where `end` is the
    /// latest event time. Empty buckets yield zero, which is what makes
    /// crash dips visible in the Figure 11 reproduction.
    pub fn bucketize(&self, bucket_width: f64) -> Vec<(f64, f64)> {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        if self.events.is_empty() {
            return Vec::new();
        }
        let end = self.events.iter().map(|&(t, _)| t).fold(0.0f64, f64::max);
        let n = (end / bucket_width).floor() as usize + 1;
        let mut sums = vec![0.0f64; n];
        for &(t, v) in &self.events {
            let idx = ((t / bucket_width).floor() as usize).min(n - 1);
            sums[idx] += v;
        }
        sums.into_iter()
            .enumerate()
            .map(|(i, s)| (i as f64 * bucket_width, s / bucket_width))
            .collect()
    }

    /// Total of all event values (e.g. total bytes moved).
    pub fn total(&self) -> f64 {
        self.events.iter().map(|&(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_bound() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_upper_bound(0.5).unwrap();
        assert!((500..=1023).contains(&p50), "p50 bound {p50}");
        assert!(h.quantile_upper_bound(1.0).unwrap() >= 999);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(7);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(9));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile_upper_bound(0.5), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn timeseries_bucketize_rates() {
        let mut ts = TimeSeries::new();
        ts.record(0.1, 10.0);
        ts.record(0.9, 10.0);
        ts.record(2.5, 30.0);
        let buckets = ts.bucketize(1.0);
        assert_eq!(buckets.len(), 3);
        assert!((buckets[0].1 - 20.0).abs() < 1e-9);
        assert!((buckets[1].1 - 0.0).abs() < 1e-9, "gap bucket must be zero");
        assert!((buckets[2].1 - 30.0).abs() < 1e-9);
        assert!((ts.total() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn timeseries_unsorted_events_ok() {
        let mut ts = TimeSeries::new();
        ts.record(5.0, 1.0);
        ts.record(0.0, 1.0);
        let buckets = ts.bucketize(1.0);
        assert_eq!(buckets.len(), 6);
        assert!((buckets[5].1 - 1.0).abs() < 1e-9);
    }
}
