//! Deterministic random number generation.
//!
//! Hurricane's data plane is intentionally randomized: chunk placement walks
//! a pseudorandom cyclic permutation of the storage nodes, batch sampling
//! probes random subsets, and every synthetic workload (Zipf click logs,
//! RMAT graphs) is sampled. To make experiments and tests reproducible, all
//! of that randomness flows through the generators in this module, seeded
//! explicitly and forked into labelled substreams — never through ambient
//! thread-local state.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, fast generator used for seeding and hashing.
//! * [`DetRng`] — a xoshiro256**-based generator with the convenience
//!   methods the rest of the workspace needs (ranges, floats, shuffles,
//!   permutations). It supports O(1) `fork`ing into statistically
//!   independent substreams, which lets each node / worker / bag derive its
//!   own stream from one experiment seed.

/// A SplitMix64 generator.
///
/// Used for seed expansion (turning one `u64` seed into many) and as a
/// cheap stateless hash. Passes BigCrush when used as a generator; its main
/// role here is producing well-distributed seeds for [`DetRng`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hashes `x` through one SplitMix64 round (stateless).
    ///
    /// This is the mixing function used to derive substream seeds and to map
    /// keys to pseudorandom values (e.g. the simulated geolocation function).
    pub const fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A deterministic xoshiro256** generator with forkable substreams.
///
/// # Examples
///
/// ```
/// use hurricane_common::rng::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forked substreams are independent of the parent and of each other.
/// let mut s1 = a.fork(1);
/// let mut s2 = a.fork(2);
/// assert_ne!(s1.next_u64(), s2.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
    seed: u64,
}

impl DetRng {
    /// Creates a generator from `seed`, expanding it via SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // Xoshiro must not start in the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s, seed }
    }

    /// Returns the seed this generator was created from.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives a statistically independent substream labelled by `tag`.
    ///
    /// Forking is pure: it depends only on the original seed and the tag,
    /// not on how many values have been drawn from `self`, so components
    /// can fork their streams in any order without perturbing each other.
    pub fn fork(&self, tag: u64) -> DetRng {
        DetRng::new(SplitMix64::mix(self.seed ^ SplitMix64::mix(tag)))
    }

    /// Returns the next 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range requires n > 0");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range_in requires lo < hi");
        lo + self.gen_range(hi - lo)
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `(0, 1]`, useful where `ln(u)` is taken.
    pub fn gen_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Samples an `Exp(1/mean)` value; used for jittered delays in the
    /// simulator's machine-skew model.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        -mean * self.gen_f64_open().ln()
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Returns a pseudorandom permutation of `0..n`.
    ///
    /// This is the permutation that drives cyclic chunk placement across
    /// storage nodes (paper §3.3): each bag client walks its own permutation
    /// so load spreads uniformly without coordination.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Picks `k` distinct values uniformly from `0..n` (k ≤ n), in random
    /// order. Used by batch sampling to pick probe targets.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
        // Partial Fisher–Yates: only the first k positions are needed.
        let mut p: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.gen_range((n - i) as u64) as usize;
            p.swap(i, j);
        }
        p.truncate(k);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be essentially disjoint");
    }

    #[test]
    fn fork_is_order_independent() {
        let rng = DetRng::new(123);
        let mut f1 = rng.fork(5);
        let mut rng2 = DetRng::new(123);
        rng2.next_u64(); // Drawing from the parent must not change forks.
        let mut f2 = rng2.fork(5);
        for _ in 0..16 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = DetRng::new(1);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let v = rng.gen_range(7);
            assert!(v < 7);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 7, "all residues should appear");
    }

    #[test]
    fn gen_range_unbiased_roughly() {
        let mut rng = DetRng::new(99);
        let n = 5u64;
        let trials = 100_000;
        let mut counts = [0u32; 5];
        for _ in 0..trials {
            counts[rng.gen_range(n) as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for c in counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            let o = rng.gen_f64_open();
            assert!(o > 0.0 && o <= 1.0);
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = DetRng::new(11);
        for n in [0usize, 1, 2, 17, 64] {
            let p = rng.permutation(n);
            let set: HashSet<_> = p.iter().copied().collect();
            assert_eq!(p.len(), n);
            assert_eq!(set.len(), n);
            assert!(p.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn sample_distinct_yields_distinct() {
        let mut rng = DetRng::new(13);
        for _ in 0..100 {
            let s = rng.sample_distinct(32, 10);
            let set: HashSet<_> = s.iter().copied().collect();
            assert_eq!(set.len(), 10);
            assert!(s.iter().all(|&x| x < 32));
        }
    }

    #[test]
    fn exp_mean_close() {
        let mut rng = DetRng::new(17);
        let mean = 4.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() / mean < 0.05, "sample mean {m}");
    }

    #[test]
    fn splitmix_mix_is_stateless_and_stable() {
        assert_eq!(SplitMix64::mix(0), SplitMix64::mix(0));
        assert_ne!(SplitMix64::mix(1), SplitMix64::mix(2));
    }
}
