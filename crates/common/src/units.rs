//! Byte and time unit helpers.
//!
//! The paper's evaluation speaks in MB/GB/TB per machine and seconds of
//! runtime; these helpers keep the benchmark harness and the simulator's
//! parameter tables readable.

/// One kibibyte... no — Hurricane, like the paper, uses decimal units:
/// "320MB", "3.2TB", "330MB/s" are all powers of ten.
pub const KB: u64 = 1_000;
/// One megabyte (10^6 bytes).
pub const MB: u64 = 1_000_000;
/// One gigabyte (10^9 bytes).
pub const GB: u64 = 1_000_000_000;
/// One terabyte (10^12 bytes).
pub const TB: u64 = 1_000_000_000_000;

/// Formats a byte count the way the paper prints sizes ("320MB", "3.2TB").
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    let (value, suffix) = if bytes >= TB {
        (b / TB as f64, "TB")
    } else if bytes >= GB {
        (b / GB as f64, "GB")
    } else if bytes >= MB {
        (b / MB as f64, "MB")
    } else if bytes >= KB {
        (b / KB as f64, "KB")
    } else {
        (b, "B")
    };
    if (value - value.round()).abs() < 1e-9 {
        format!("{}{}", value.round() as u64, suffix)
    } else {
        format!("{value:.1}{suffix}")
    }
}

/// Formats seconds the way the paper prints runtimes ("5.7s", "959s", ">12h").
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 3600.0 {
        format!("{:.1}h", secs / 3600.0)
    } else if secs >= 100.0 {
        format!("{}s", secs.round() as u64)
    } else {
        format!("{secs:.1}s")
    }
}

/// Parses sizes like "320MB", "3.2TB", "10GB" (decimal units).
///
/// Returns `None` on malformed input rather than panicking so that CLI
/// argument handling in the bench binaries can report a friendly error.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let split = s.find(|c: char| c.is_ascii_alphabetic())?;
    let (num, suffix) = s.split_at(split);
    let value: f64 = num.trim().parse().ok()?;
    if !value.is_finite() || value < 0.0 {
        return None;
    }
    let mult = match suffix.trim().to_ascii_uppercase().as_str() {
        "B" => 1,
        "KB" => KB,
        "MB" => MB,
        "GB" => GB,
        "TB" => TB,
        _ => return None,
    };
    Some((value * mult as f64).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_match_paper_style() {
        assert_eq!(fmt_bytes(320 * MB), "320MB");
        assert_eq!(fmt_bytes(3_200 * GB), "3.2TB");
        assert_eq!(fmt_bytes(32 * GB), "32GB");
        assert_eq!(fmt_bytes(10 * MB), "10MB");
        assert_eq!(fmt_bytes(512), "512B");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(5.7), "5.7s");
        assert_eq!(fmt_secs(959.4), "959s");
        assert_eq!(fmt_secs(43_200.0), "12.0h");
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["320MB", "3.2TB", "32GB", "100KB", "7B"] {
            let b = parse_bytes(s).unwrap();
            assert_eq!(fmt_bytes(b), s);
        }
        assert_eq!(parse_bytes("10 GB"), Some(10 * GB));
        assert_eq!(parse_bytes("1.5mb"), Some(1_500_000));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("MB"), None);
        assert_eq!(parse_bytes("12XB"), None);
        assert_eq!(parse_bytes("-3GB"), None);
        assert_eq!(parse_bytes("nanGB"), None);
    }
}
