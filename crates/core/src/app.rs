//! Application deployment and orchestration.
//!
//! [`HurricaneApp`] owns one application's physical resources: the mapping
//! from graph bags to storage bags, the three scheduling work bags, and
//! the shared control plane. `deploy → fill sources → run → read sinks`
//! is the whole lifecycle:
//!
//! ```
//! use hurricane_core::{AppGraph, HurricaneApp, HurricaneConfig, TaskCtx, EngineError};
//! use hurricane_storage::{ClusterConfig, StorageCluster};
//!
//! let mut g = AppGraph::builder();
//! let input = g.source("numbers");
//! let doubled = g.bag("doubled");
//! g.task("double", &[input], &[doubled], |ctx: &mut TaskCtx| {
//!     while let Some(recs) = ctx.next_records::<u64>(0)? {
//!         for r in recs {
//!             ctx.write_record(0, &(r * 2))?;
//!         }
//!     }
//!     Ok(())
//! });
//!
//! let cluster = StorageCluster::new(2, ClusterConfig::default());
//! let mut app =
//!     HurricaneApp::deploy(g.build().unwrap(), cluster, HurricaneConfig::default()).unwrap();
//! app.fill_source(input, 0..10u64).unwrap();
//! let report = app.run().unwrap();
//! assert_eq!(report.restarts, 0);
//! let mut out: Vec<u64> = app.read_records(doubled).unwrap();
//! out.sort_unstable();
//! assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
//! ```

use crate::config::HurricaneConfig;
use crate::error::EngineError;
use crate::graph::{AppGraph, BagKind, GraphBag};
use crate::manager::{
    spawn_manager, ComputeNodeHandle, ManagerDeps, RunningRegistry, SeedGen, WorkBagIds,
};
use crate::master::{Master, MasterDeps, MasterOutcome, MasterReport};
use crate::task::{BagWriter, ControlMsg, KillSwitch};
use crossbeam::channel::{unbounded, Sender};
use hurricane_common::BagId;
use hurricane_format::{decode_all, Chunk, Record};
use hurricane_storage::{ClusterConfig, StorageCluster, StorageEndpoint};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Statistics returned by a completed run.
#[derive(Debug, Clone, Default)]
pub struct AppReport {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Clones created per task.
    pub clones_per_task: std::collections::HashMap<u32, u32>,
    /// Total clones created.
    pub total_clones: u32,
    /// Merge tasks executed.
    pub merges_run: u32,
    /// Task restarts due to failures.
    pub restarts: u32,
    /// Clone requests received / rejected.
    pub clone_requests: u64,
    /// Clone requests the master declined.
    pub clone_rejections: u64,
    /// Master recoveries performed during the run.
    pub master_recoveries: u32,
}

impl AppReport {
    fn from_master(m: MasterReport, elapsed: Duration, recoveries: u32) -> Self {
        Self {
            elapsed,
            clones_per_task: m.clones_per_task,
            total_clones: m.total_clones,
            merges_run: m.merges_run,
            restarts: m.restarts,
            clone_requests: m.clone_requests,
            clone_rejections: m.clone_rejections,
            master_recoveries: recoveries,
        }
    }
}

/// A deployed Hurricane application.
pub struct HurricaneApp {
    graph: Arc<AppGraph>,
    cluster: Arc<StorageCluster>,
    config: Arc<HurricaneConfig>,
    bag_map: Arc<Vec<BagId>>,
    workbags: WorkBagIds,
    seeds: Arc<SeedGen>,
}

impl HurricaneApp {
    /// Creates the application's bags on `cluster` and prepares it to run.
    pub fn deploy(
        graph: AppGraph,
        cluster: Arc<StorageCluster>,
        config: HurricaneConfig,
    ) -> Result<Self, EngineError> {
        let bag_map: Vec<BagId> = (0..graph.num_bags())
            .map(|_| cluster.create_bag())
            .collect();
        let workbags = WorkBagIds {
            ready: cluster.create_bag(),
            running: cluster.create_bag(),
            done: cluster.create_bag(),
        };
        let seeds = Arc::new(SeedGen::new(config.seed));
        Ok(Self {
            graph: Arc::new(graph),
            cluster,
            config: Arc::new(config),
            bag_map: Arc::new(bag_map),
            workbags,
            seeds,
        })
    }

    /// As [`HurricaneApp::deploy`], but builds the storage cluster from
    /// the config itself: `storage_nodes` in-memory nodes by default,
    /// durable nodes journaling under
    /// [`HurricaneConfig::data_dir`](crate::HurricaneConfig) (with the
    /// configured spill threshold) when it is set.
    ///
    /// # Panics
    ///
    /// When `data_dir` is set but the segment store cannot be created
    /// there — a deployment that asked for durability and cannot have it
    /// must not start.
    pub fn deploy_with_storage(
        graph: AppGraph,
        storage_nodes: usize,
        storage: ClusterConfig,
        config: HurricaneConfig,
    ) -> Result<Self, EngineError> {
        let cluster = match config
            .durability()
            .expect("create segment store under data_dir")
        {
            None => StorageCluster::new(storage_nodes, storage),
            Some(d) => StorageCluster::new_durable(storage_nodes, storage, d),
        };
        Self::deploy(graph, cluster, config)
    }

    /// The physical bag backing a graph bag.
    pub fn physical_bag(&self, bag: GraphBag) -> BagId {
        self.bag_map[bag.0]
    }

    /// The application graph.
    pub fn graph(&self) -> &Arc<AppGraph> {
        &self.graph
    }

    /// The storage cluster.
    pub fn cluster(&self) -> &Arc<StorageCluster> {
        &self.cluster
    }

    /// Opens a writer for filling a source bag before the run. Bulk
    /// loading batches inserts at the configured batch factor, so a
    /// source fill issues one storage call per node per `b` chunks.
    pub fn source_writer(&self, bag: GraphBag) -> Result<BagWriter, EngineError> {
        if self.graph.bag(bag).kind != BagKind::Source {
            return Err(EngineError::InvalidGraph(format!(
                "bag '{}' is not a source",
                self.graph.bag(bag).name
            )));
        }
        Ok(BagWriter::open_batched(
            self.cluster.clone(),
            self.physical_bag(bag),
            self.seeds.next(),
            self.config.chunk_size,
            self.config.batch_factor,
        ))
    }

    /// Fills a source bag from a record iterator.
    pub fn fill_source<T: Record>(
        &self,
        bag: GraphBag,
        records: impl IntoIterator<Item = T>,
    ) -> Result<u64, EngineError> {
        let mut w = self.source_writer(bag)?;
        for r in records {
            w.write_record(&r)?;
        }
        w.flush()?;
        Ok(w.bytes_written())
    }

    /// Inserts pre-built chunks into a source bag (bulk loading).
    pub fn fill_source_chunks(
        &self,
        bag: GraphBag,
        chunks: impl IntoIterator<Item = Chunk>,
    ) -> Result<(), EngineError> {
        let mut w = self.source_writer(bag)?;
        for c in chunks {
            w.emit_chunk(c)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Starts the application: seals sources, spawns task managers and the
    /// master. Returns a handle for waiting and fault injection.
    pub fn start(&self) -> Result<RunningApp, EngineError> {
        for bag in self.graph.sources() {
            self.cluster.seal_bag(self.physical_bag(bag))?;
        }
        let kill = Arc::new(KillSwitch::new());
        let registry = Arc::new(RunningRegistry::new());
        let app_done = Arc::new(AtomicBool::new(false));
        let (control_tx, control_rx) = unbounded();
        // The storage endpoint every worker and the master mint their bag
        // clients from: the channel RPC plane (per-node server loops)
        // when enabled, the direct in-process plane otherwise.
        let endpoint = Arc::new(if self.config.storage_rpc {
            StorageEndpoint::channel(self.cluster.clone())
                .with_dispatch_threads(self.config.rpc_dispatch_threads.max(1))
                .with_request_timeout(self.config.rpc_request_timeout)
                .with_retry_attempts(self.config.rpc_retry_attempts)
                .with_writer_credit(self.config.rpc_writer_credit.max(1))
        } else {
            StorageEndpoint::direct(self.cluster.clone())
        });
        let mdeps = ManagerDeps {
            graph: self.graph.clone(),
            cluster: self.cluster.clone(),
            endpoint: endpoint.clone(),
            config: self.config.clone(),
            kill: kill.clone(),
            registry: registry.clone(),
            control_tx: control_tx.clone(),
            workbags: self.workbags,
            seeds: self.seeds.clone(),
            app_done: app_done.clone(),
        };
        let managers: Vec<ComputeNodeHandle> = (0..self.config.compute_nodes)
            .map(|i| spawn_manager(i as u32, mdeps.clone()))
            .collect();
        let master_deps = MasterDeps {
            graph: self.graph.clone(),
            cluster: self.cluster.clone(),
            endpoint: endpoint.clone(),
            config: self.config.clone(),
            kill: kill.clone(),
            registry: registry.clone(),
            workbags: self.workbags,
            bag_map: self.bag_map.clone(),
            seeds: self.seeds.clone(),
            app_done: app_done.clone(),
        };
        let master = Master::new(master_deps.clone(), control_rx);
        let master_thread = std::thread::Builder::new()
            .name("app-master".into())
            .spawn(move || master.run())
            .expect("spawning master");
        Ok(RunningApp {
            managers,
            master: Some(master_thread),
            master_deps,
            endpoint,
            control_tx,
            app_done,
            start: Instant::now(),
            recoveries: 0,
            finished: None,
        })
    }

    /// Runs the application to completion (blocking).
    pub fn run(&mut self) -> Result<AppReport, EngineError> {
        self.start()?.wait()
    }

    /// Reads every record of a bag non-destructively (typically a sink,
    /// after the run).
    pub fn read_records<T: Record>(&self, bag: GraphBag) -> Result<Vec<T>, EngineError> {
        let chunks = self.cluster.snapshot_bag(self.physical_bag(bag))?;
        let mut out = Vec::new();
        for c in &chunks {
            out.extend(decode_all::<T>(c)?);
        }
        Ok(out)
    }

    /// Reads every chunk of a bag non-destructively.
    pub fn read_chunks(&self, bag: GraphBag) -> Result<Vec<Chunk>, EngineError> {
        Ok(self.cluster.snapshot_bag(self.physical_bag(bag))?)
    }
}

/// A running application: join handle plus fault-injection hooks.
pub struct RunningApp {
    managers: Vec<ComputeNodeHandle>,
    master: Option<JoinHandle<Result<MasterOutcome, EngineError>>>,
    master_deps: MasterDeps,
    /// Keeps the storage endpoint (and, on the channel plane, its RPC
    /// server loops) alive for the run's duration; shut down (draining
    /// in-flight requests) once everything has joined.
    endpoint: Arc<StorageEndpoint>,
    control_tx: Sender<ControlMsg>,
    app_done: Arc<AtomicBool>,
    start: Instant,
    recoveries: u32,
    finished: Option<MasterReport>,
}

impl RunningApp {
    /// Number of compute nodes.
    pub fn num_compute_nodes(&self) -> usize {
        self.managers.len()
    }

    /// Fails compute node `i`: it stops claiming work, its workers observe
    /// cancellation, and the master is notified (failure detection).
    pub fn kill_compute_node(&self, i: usize) {
        self.managers[i].kill();
        let _ = self.control_tx.send(ControlMsg::NodeFailed {
            node: self.managers[i].id,
        });
    }

    /// Brings compute node `i` back as a fresh idle node.
    pub fn restart_compute_node(&self, i: usize) {
        self.managers[i].restart();
    }

    /// Crashes the application master, losing its in-memory state, then
    /// recovers it by replaying the work bags. Compute nodes keep working
    /// throughout (paper §4.4: "Neither compute nodes nor storage nodes
    /// need to be aware of an application master failure").
    pub fn crash_and_recover_master(&mut self) -> Result<(), EngineError> {
        if self.finished.is_some() {
            return Ok(()); // Already completed: nothing to crash.
        }
        let _ = self.control_tx.send(ControlMsg::CrashMaster);
        let handle = self.master.take().ok_or(EngineError::MasterGone)?;
        let rx = match handle.join().map_err(|_| EngineError::MasterGone)?? {
            MasterOutcome::Crashed(rx) => rx,
            MasterOutcome::Completed(report) => {
                // The app finished before the crash landed; nothing to
                // recover. Park the report where wait() will find it.
                self.app_done.store(true, Ordering::Relaxed);
                self.finished = Some(report);
                return Ok(());
            }
        };
        // The recovered master inherits the same control receiver, so every
        // worker's existing sender endpoint keeps working.
        let master = Master::recover(self.master_deps.clone(), rx)?;
        self.master = Some(
            std::thread::Builder::new()
                .name("app-master-recovered".into())
                .spawn(move || master.run())
                .expect("spawning recovered master"),
        );
        self.recoveries += 1;
        Ok(())
    }

    /// Waits for completion and returns the run report.
    pub fn wait(mut self) -> Result<AppReport, EngineError> {
        let outcome = if let Some(report) = self.finished.take() {
            Ok(MasterOutcome::Completed(report))
        } else {
            let handle = self.master.take().ok_or(EngineError::MasterGone)?;
            handle.join().map_err(|_| EngineError::MasterGone)?
        };
        // Whatever happened, release the managers.
        self.app_done.store(true, Ordering::Relaxed);
        self.master_deps.kill.shutdown_all();
        for m in self.managers.drain(..) {
            m.join();
        }
        self.endpoint.shutdown();
        match outcome? {
            MasterOutcome::Completed(report) => Ok(AppReport::from_master(
                report,
                self.start.elapsed(),
                self.recoveries,
            )),
            MasterOutcome::Crashed(_) => Err(EngineError::MasterGone),
        }
    }
}
