//! Runtime configuration.

use std::path::PathBuf;
use std::time::Duration;

/// Tunables for a Hurricane deployment.
///
/// Defaults are scaled for in-process, laptop-scale execution: the paper's
/// 4 MB chunks and 2-second clone interval become 64 KB and 50 ms so tests
/// and examples exercise the same code paths in milliseconds. The
/// benchmark harness overrides these to paper values where an experiment
/// depends on them.
#[derive(Debug, Clone)]
pub struct HurricaneConfig {
    /// Number of compute nodes (task managers) to run.
    pub compute_nodes: usize,
    /// Worker slots per compute node (the paper's machines run one worker
    /// per core; workers may be multi-threaded, ours are single-threaded).
    pub worker_slots: usize,
    /// Chunk capacity in bytes (paper default: 4 MB).
    pub chunk_size: usize,
    /// Batch-sampling factor `b`: outstanding storage requests per
    /// consumer (paper picks 10).
    pub batch_factor: usize,
    /// Minimum spacing between clone requests from one worker (paper: 2 s).
    pub clone_interval: Duration,
    /// Maximum instances (original + clones) per task. The paper clones
    /// until a task "runs on every compute node"; `None` uses the number
    /// of compute nodes.
    pub max_clones_per_task: Option<usize>,
    /// Modeled I/O bandwidth in bytes/s used by the cloning heuristic to
    /// estimate `T_IO` (reading remaining state + merging outputs).
    pub io_bandwidth: f64,
    /// Do not clone when fewer than this many chunks remain in the input:
    /// the master's cheap proxy for "too close to completion".
    pub min_remaining_chunks_to_clone: u64,
    /// Disable cloning entirely (the paper's HurricaneNC configuration).
    pub cloning_enabled: bool,
    /// Master poll period for the done bag / control messages.
    pub master_poll: Duration,
    /// Route the data plane through the storage RPC boundary
    /// (request/response messages to per-node server loops) instead of
    /// direct in-process calls. Turns the prefetcher into a true pipeline
    /// of `batch_factor` outstanding requests and lets writers overlap
    /// replica acks; the direct path remains the default for tests and
    /// benches of the storage substrate itself.
    pub storage_rpc: bool,
    /// Dispatch threads per storage-node RPC server (only used when
    /// `storage_rpc` is on).
    pub rpc_dispatch_threads: usize,
    /// Insert-coalescing window (chunks) for RPC-connected task writers:
    /// buckets from successive batch flushes stage on the port and go out
    /// as one merged envelope per (node, bag) once this many chunks are
    /// staged. `0` disables coalescing (every batch call flushes). A
    /// nonzero window below two write batches cannot merge anything, so
    /// the engine clamps the effective window to `2 * batch_factor` (see
    /// [`HurricaneConfig::effective_coalesce_window`]). Only task-output
    /// writers coalesce — work-bag scheduling traffic stays
    /// call-synchronous so claims are immediately visible.
    pub rpc_coalesce_chunks: usize,
    /// Per-connection writer credit when `storage_rpc` is on: how many
    /// requests may be on the wire unanswered before a writer blocks
    /// (flow control; a stalled storage node bounds its lane at this many
    /// envelopes instead of accumulating unbounded queue).
    pub rpc_writer_credit: usize,
    /// Client-side RPC request timeout: how long a caller waits for one
    /// reply before abandoning the request (its outcome then unknown).
    /// The per-connection credit-acquire timeout is aligned with this
    /// automatically when ports are minted, so flow control never fails
    /// faster than a request wait would.
    pub rpc_request_timeout: Duration,
    /// Total attempts per RPC request when `storage_rpc` is on: `1`
    /// (the default) fails fast on timeout; higher values retransmit a
    /// timed-out request under its original sequence number, which the
    /// server-side dedup window resolves to at most one execution (see
    /// `hurricane_storage::rpc::RetryPolicy`).
    pub rpc_retry_attempts: u32,
    /// Root directory for durable segment logs (`SEGMENT.md`). `None`
    /// (the default) keeps storage nodes purely in-memory; when set,
    /// every storage node journals its bag contents into
    /// `<data_dir>/node-<i>/` and recovers them by log scan on startup.
    pub data_dir: Option<PathBuf>,
    /// Resident-memory budget per durable storage node, in bytes. When
    /// the bytes held in memory exceed this threshold, cold bags are
    /// spilled back to their segment logs and re-read on demand. Only
    /// meaningful when `data_dir` is set; the default (`u64::MAX`)
    /// keeps everything resident.
    pub spill_threshold_bytes: u64,
    /// Memory budget, in bytes, for one merge output's accumulator state
    /// (the keyed-merge table). When the estimated residency crosses the
    /// budget the table drains into sorted scratch runs on the storage
    /// tier and the merge re-folds them in additional rounds — see the
    /// spill contract in `merges`. Output bytes are identical at any
    /// setting; only memory/IO trade off. The default (`u64::MAX`)
    /// never spills.
    pub merge_memory_budget: u64,
    /// Worker threads a merge task may spread its output indices across
    /// (see `merges::merge_outputs`). Outputs of one merge are
    /// independent, so they scale embarrassingly; `1` runs them
    /// sequentially on the calling worker (the pre-parallel behavior),
    /// and the default uses every available core. Output *content* is
    /// identical at any setting — only wall-clock changes.
    pub merge_parallelism: usize,
    /// Deterministic seed for placement permutations and tie-breaking.
    pub seed: u64,
}

impl Default for HurricaneConfig {
    fn default() -> Self {
        Self {
            compute_nodes: 4,
            worker_slots: 2,
            chunk_size: 64 * 1024,
            batch_factor: 10,
            clone_interval: Duration::from_millis(50),
            max_clones_per_task: None,
            io_bandwidth: 4.0e9,
            min_remaining_chunks_to_clone: 4,
            cloning_enabled: true,
            master_poll: Duration::from_millis(2),
            storage_rpc: false,
            rpc_dispatch_threads: 2,
            // Nonzero = coalescing on; the effective window is clamped
            // to at least two write batches whatever batch_factor is
            // (see effective_coalesce_window), so this default tracks
            // batch_factor rather than duplicating its value.
            rpc_coalesce_chunks: 1,
            rpc_writer_credit: hurricane_storage::rpc::DEFAULT_WRITER_CREDIT,
            rpc_request_timeout: hurricane_storage::rpc::DEFAULT_REQUEST_TIMEOUT,
            rpc_retry_attempts: 1,
            data_dir: None,
            spill_threshold_bytes: u64::MAX,
            merge_memory_budget: u64::MAX,
            merge_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            seed: 0xD1CE,
        }
    }
}

impl HurricaneConfig {
    /// The effective per-task instance cap.
    pub fn instance_cap(&self) -> usize {
        self.max_clones_per_task
            .unwrap_or(self.compute_nodes)
            .max(1)
    }

    /// Returns a copy with cloning disabled (HurricaneNC, paper §5.2).
    pub fn without_cloning(mut self) -> Self {
        self.cloning_enabled = false;
        self
    }

    /// Returns a copy with the data plane routed over the storage RPC
    /// boundary.
    pub fn with_storage_rpc(mut self) -> Self {
        self.storage_rpc = true;
        self
    }

    /// Returns a copy with durable segment logs rooted at `dir`.
    pub fn with_data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Returns a copy with the per-output merge memory budget set.
    pub fn with_merge_memory_budget(mut self, bytes: u64) -> Self {
        self.merge_memory_budget = bytes;
        self
    }

    /// Returns a copy with the deployment environment's memory knobs
    /// applied: `HURRICANE_MERGE_MEMORY_BUDGET` overrides
    /// [`merge_memory_budget`](Self::merge_memory_budget) and
    /// `HURRICANE_SPILL_THRESHOLD_BYTES` overrides
    /// [`spill_threshold_bytes`](Self::spill_threshold_bytes) (both in
    /// bytes). Unset or unparsable variables leave the config untouched.
    /// Harnesses that build their configs in code route through this so
    /// one environment can squeeze a whole suite under a tiny budget —
    /// CI's low-memory stress leg runs the runtime tests exactly this
    /// way.
    pub fn with_env_overrides(mut self) -> Self {
        fn read(var: &str) -> Option<u64> {
            std::env::var(var).ok()?.parse().ok()
        }
        if let Some(v) = read("HURRICANE_MERGE_MEMORY_BUDGET") {
            self.merge_memory_budget = v;
        }
        if let Some(v) = read("HURRICANE_SPILL_THRESHOLD_BYTES") {
            self.spill_threshold_bytes = v;
        }
        self
    }

    /// The storage durability settings implied by this config: `None`
    /// when [`data_dir`](Self::data_dir) is unset, otherwise a
    /// [`DurabilityConfig`](hurricane_storage::DurabilityConfig) whose
    /// segment store is rooted at the directory (created if absent).
    pub fn durability(&self) -> std::io::Result<Option<hurricane_storage::DurabilityConfig>> {
        let Some(dir) = &self.data_dir else {
            return Ok(None);
        };
        Ok(Some(hurricane_storage::DurabilityConfig {
            store: hurricane_storage::SegmentStore::disk(dir)?,
            spill_threshold_bytes: self.spill_threshold_bytes,
        }))
    }

    /// The insert-coalescing window task writers actually use: `0` when
    /// coalescing is disabled, otherwise at least two write batches — a
    /// smaller window could never merge across batches, silently
    /// degenerating to the eager path when `batch_factor` is raised.
    pub fn effective_coalesce_window(&self) -> usize {
        if self.rpc_coalesce_chunks == 0 {
            0
        } else {
            self.rpc_coalesce_chunks.max(2 * self.batch_factor)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = HurricaneConfig::default();
        assert!(c.compute_nodes > 0);
        assert!(c.worker_slots > 0);
        assert!(c.chunk_size > 0);
        assert_eq!(c.instance_cap(), c.compute_nodes);
        assert!(c.cloning_enabled);
        assert_eq!(
            c.rpc_request_timeout,
            hurricane_storage::rpc::DEFAULT_REQUEST_TIMEOUT
        );
        assert_eq!(c.rpc_retry_attempts, 1);
    }

    #[test]
    fn cap_override() {
        let c = HurricaneConfig {
            max_clones_per_task: Some(7),
            ..Default::default()
        };
        assert_eq!(c.instance_cap(), 7);
    }

    #[test]
    fn without_cloning_flips_flag() {
        let c = HurricaneConfig::default().without_cloning();
        assert!(!c.cloning_enabled);
    }

    #[test]
    fn env_overrides_apply_and_default_to_identity() {
        // Env mutation is process-global: keep both halves in one test
        // (cargo runs tests concurrently) and restore before returning.
        let c = HurricaneConfig::default().with_env_overrides();
        assert_eq!(c.merge_memory_budget, u64::MAX, "unset vars must no-op");
        assert_eq!(c.spill_threshold_bytes, u64::MAX);

        std::env::set_var("HURRICANE_MERGE_MEMORY_BUDGET", "512");
        std::env::set_var("HURRICANE_SPILL_THRESHOLD_BYTES", "4096");
        let c = HurricaneConfig::default().with_env_overrides();
        std::env::remove_var("HURRICANE_MERGE_MEMORY_BUDGET");
        std::env::remove_var("HURRICANE_SPILL_THRESHOLD_BYTES");
        assert_eq!(c.merge_memory_budget, 512);
        assert_eq!(c.spill_threshold_bytes, 4096);
    }

    #[test]
    fn durability_follows_data_dir() {
        let c = HurricaneConfig::default();
        assert!(c.data_dir.is_none());
        assert!(c.durability().unwrap().is_none());

        let dir = std::env::temp_dir().join(format!("hurricane-cfg-test-{}", std::process::id()));
        let c = c.with_data_dir(&dir);
        let d = c.durability().unwrap().expect("durability config");
        assert_eq!(d.spill_threshold_bytes, u64::MAX);
        std::fs::remove_dir_all(&dir).ok();
    }
}
