//! Wire records for the scheduling plane.
//!
//! Four record kinds flow through the work bags (paper §4.1):
//!
//! * [`Descriptor`] — an executable unit placed in the *ready* bag: either
//!   a task instance (original or clone) or a merge. The descriptor is the
//!   "task blueprint reference": it carries the task id plus the concrete
//!   input/output bag ids for this instance (clones of merge-bearing tasks
//!   write to per-instance partial bags).
//! * [`RunningRecord`] — appended to the *running* bag when a compute node
//!   claims a descriptor; scanned during compute-node failure recovery.
//! * [`DoneRecord`] — appended to the *done* bag when a worker finishes;
//!   consumed by the master to drive the execution graph and replayed
//!   wholesale on master recovery.
//! * [`LogRecord`] — the master's schedule log (an append-only work bag):
//!   every scheduling decision (instance created, task restarted at a new
//!   generation) is written *before* it takes effect, so a recovered
//!   master can reconstruct clone counts and partial-bag allocations that
//!   the paper's master keeps in memory.

use hurricane_common::TaskInstanceId;
use hurricane_format::{CodecError, Record};

/// Descriptor kind: a regular task instance.
pub const KIND_TASK: u8 = 0;
/// Descriptor kind: a merge reconciling clone partials.
pub const KIND_MERGE: u8 = 1;

/// One schedulable unit in the ready bag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Descriptor {
    /// [`KIND_TASK`] or [`KIND_MERGE`].
    pub kind: u8,
    /// Packed [`TaskInstanceId`] (merges use clone index 0).
    pub instance: u64,
    /// Task generation; bumped by failure restarts.
    pub generation: u32,
    /// Task: input bag ids. Merge: flattened per-instance partial bag ids,
    /// laid out `[instance][output]` with stride `outputs.len()`.
    pub inputs: Vec<u64>,
    /// Output bag ids this unit writes (a clone's partials, or the task's
    /// real outputs).
    pub outputs: Vec<u64>,
}

impl Descriptor {
    /// The task instance this descriptor executes.
    pub fn instance_id(&self) -> TaskInstanceId {
        TaskInstanceId::unpack(self.instance)
    }
}

impl Record for Descriptor {
    fn encode(&self, out: &mut Vec<u8>) {
        (
            self.kind,
            self.instance,
            self.generation,
            self.inputs.clone(),
            self.outputs.clone(),
        )
            .encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (kind, instance, generation, inputs, outputs) =
            <(u8, u64, u32, Vec<u64>, Vec<u64>)>::decode(input)?;
        Ok(Self {
            kind,
            instance,
            generation,
            inputs,
            outputs,
        })
    }

    fn encoded_len(&self) -> usize {
        (
            self.kind,
            self.instance,
            self.generation,
            self.inputs.clone(),
            self.outputs.clone(),
        )
            .encoded_len()
    }
}

/// A claim notice in the running bag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunningRecord {
    /// [`KIND_TASK`] or [`KIND_MERGE`].
    pub kind: u8,
    /// Packed instance id.
    pub instance: u64,
    /// Generation being executed.
    pub generation: u32,
    /// Compute node executing the unit.
    pub node: u32,
    /// Input bag ids (for merge: flattened partials).
    pub inputs: Vec<u64>,
    /// Output bag ids.
    pub outputs: Vec<u64>,
}

impl Record for RunningRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        (
            self.kind,
            self.instance,
            self.generation,
            self.node,
            self.inputs.clone(),
            self.outputs.clone(),
        )
            .encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (kind, instance, generation, node, inputs, outputs) =
            <(u8, u64, u32, u32, Vec<u64>, Vec<u64>)>::decode(input)?;
        Ok(Self {
            kind,
            instance,
            generation,
            node,
            inputs,
            outputs,
        })
    }

    fn encoded_len(&self) -> usize {
        (
            self.kind,
            self.instance,
            self.generation,
            self.node,
            self.inputs.clone(),
            self.outputs.clone(),
        )
            .encoded_len()
    }
}

/// A completion notice in the done bag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoneRecord {
    /// [`KIND_TASK`] or [`KIND_MERGE`].
    pub kind: u8,
    /// Packed instance id.
    pub instance: u64,
    /// Generation that completed.
    pub generation: u32,
    /// Node that executed the unit.
    pub node: u32,
    /// The unit's output bag ids, echoed from its descriptor so a
    /// recovered master learns partial bags it never saw scheduled.
    pub outputs: Vec<u64>,
}

impl Record for DoneRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        (
            self.kind,
            self.instance,
            self.generation,
            self.node,
            self.outputs.clone(),
        )
            .encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (kind, instance, generation, node, outputs) =
            <(u8, u64, u32, u32, Vec<u64>)>::decode(input)?;
        Ok(Self {
            kind,
            instance,
            generation,
            node,
            outputs,
        })
    }

    fn encoded_len(&self) -> usize {
        (
            self.kind,
            self.instance,
            self.generation,
            self.node,
            self.outputs.clone(),
        )
            .encoded_len()
    }
}

/// Schedule-log entries (write-ahead of master actions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// An instance (task or merge) was created at `generation` with the
    /// given concrete bags.
    Scheduled {
        /// [`KIND_TASK`] or [`KIND_MERGE`].
        kind: u8,
        /// Packed instance id.
        instance: u64,
        /// Generation the instance belongs to.
        generation: u32,
        /// Concrete input bag ids.
        inputs: Vec<u64>,
        /// Concrete output bag ids.
        outputs: Vec<u64>,
    },
    /// A task was restarted: all state at generations `< new_generation`
    /// is void.
    Restarted {
        /// The restarted task blueprint.
        task: u32,
        /// The new current generation.
        new_generation: u32,
    },
}

const LOG_SCHEDULED: u8 = 0;
const LOG_RESTARTED: u8 = 1;

impl Record for LogRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LogRecord::Scheduled {
                kind,
                instance,
                generation,
                inputs,
                outputs,
            } => {
                LOG_SCHEDULED.encode(out);
                (
                    *kind,
                    *instance,
                    *generation,
                    inputs.clone(),
                    outputs.clone(),
                )
                    .encode(out);
            }
            LogRecord::Restarted {
                task,
                new_generation,
            } => {
                LOG_RESTARTED.encode(out);
                (*task, *new_generation).encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            LOG_SCHEDULED => {
                let (kind, instance, generation, inputs, outputs) =
                    <(u8, u64, u32, Vec<u64>, Vec<u64>)>::decode(input)?;
                Ok(LogRecord::Scheduled {
                    kind,
                    instance,
                    generation,
                    inputs,
                    outputs,
                })
            }
            LOG_RESTARTED => {
                let (task, new_generation) = <(u32, u32)>::decode(input)?;
                Ok(LogRecord::Restarted {
                    task,
                    new_generation,
                })
            }
            t => Err(CodecError::InvalidTag(t)),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            LogRecord::Scheduled {
                kind,
                instance,
                generation,
                inputs,
                outputs,
            } => {
                1 + (
                    *kind,
                    *instance,
                    *generation,
                    inputs.clone(),
                    outputs.clone(),
                )
                    .encoded_len()
            }
            LogRecord::Restarted {
                task,
                new_generation,
            } => 1 + (*task, *new_generation).encoded_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_common::TaskId;

    fn roundtrip<T: Record + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.encoded_len());
        let mut s = buf.as_slice();
        assert_eq!(T::decode(&mut s).unwrap(), v);
        assert!(s.is_empty());
    }

    #[test]
    fn descriptor_roundtrip() {
        roundtrip(Descriptor {
            kind: KIND_MERGE,
            instance: TaskInstanceId::clone_of(TaskId(3), 2).pack(),
            generation: 1,
            inputs: vec![10, 11, 12],
            outputs: vec![4],
        });
    }

    #[test]
    fn running_roundtrip() {
        roundtrip(RunningRecord {
            kind: KIND_TASK,
            instance: 77,
            generation: 0,
            node: 3,
            inputs: vec![1],
            outputs: vec![2, 3],
        });
    }

    #[test]
    fn done_roundtrip() {
        roundtrip(DoneRecord {
            kind: KIND_TASK,
            instance: 5,
            generation: 2,
            node: 0,
            outputs: vec![9],
        });
    }

    #[test]
    fn log_roundtrips() {
        roundtrip(LogRecord::Scheduled {
            kind: KIND_TASK,
            instance: 1,
            generation: 0,
            inputs: vec![5],
            outputs: vec![6, 7],
        });
        roundtrip(LogRecord::Restarted {
            task: 4,
            new_generation: 3,
        });
    }

    #[test]
    fn log_rejects_unknown_tag() {
        let mut s: &[u8] = &[9, 0, 0];
        assert_eq!(LogRecord::decode(&mut s), Err(CodecError::InvalidTag(9)));
    }

    #[test]
    fn descriptor_instance_unpacks() {
        let d = Descriptor {
            kind: KIND_TASK,
            instance: TaskInstanceId::clone_of(TaskId(8), 5).pack(),
            generation: 0,
            inputs: vec![],
            outputs: vec![],
        };
        assert_eq!(d.instance_id().task, TaskId(8));
        assert_eq!(d.instance_id().clone.0, 5);
    }
}
