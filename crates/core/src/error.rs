//! Runtime error types.

use core::fmt;
use hurricane_common::TaskId;
use hurricane_format::CodecError;
use hurricane_storage::StorageError;

/// Errors surfaced by the Hurricane runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A storage operation failed.
    Storage(StorageError),
    /// Record (de)serialization failed inside a task.
    Codec(CodecError),
    /// The application graph is malformed (the message names the defect).
    InvalidGraph(String),
    /// The worker executing a task was cancelled (node failure recovery or
    /// shutdown); its partial effects will be discarded by the master.
    Cancelled,
    /// A task's user logic reported an application-level failure.
    TaskFailed {
        /// The failing task.
        task: TaskId,
        /// The application's failure message.
        message: String,
    },
    /// The master thread disappeared while the application was running.
    MasterGone,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Codec(e) => write!(f, "codec error: {e}"),
            EngineError::InvalidGraph(m) => write!(f, "invalid application graph: {m}"),
            EngineError::Cancelled => write!(f, "worker cancelled"),
            EngineError::TaskFailed { task, message } => {
                write!(f, "{task} failed: {message}")
            }
            EngineError::MasterGone => write!(f, "application master is gone"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<CodecError> for EngineError {
    fn from(e: CodecError) -> Self {
        EngineError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_common::BagId;

    #[test]
    fn conversions_wrap() {
        let e: EngineError = StorageError::UnknownBag(BagId(1)).into();
        assert!(matches!(e, EngineError::Storage(_)));
        let e: EngineError = CodecError::Truncated.into();
        assert!(matches!(e, EngineError::Codec(_)));
    }

    #[test]
    fn display_mentions_task() {
        let e = EngineError::TaskFailed {
            task: TaskId(3),
            message: "boom".into(),
        };
        assert!(e.to_string().contains("task3"));
        assert!(e.to_string().contains("boom"));
    }
}
