//! Application graphs (paper §2.1).
//!
//! "Hurricane applications are specified as a directed graph of tasks ...
//! and data bags. The edges in the graph represent the flow of data
//! between tasks and bags." A bag is produced by at most one task (or is a
//! *source* filled before execution) and consumed by at most one task —
//! clones of that task share it. Bags nobody consumes are *sinks*, read by
//! the application after the run.
//!
//! # Examples
//!
//! ```
//! use hurricane_core::graph::GraphBuilder;
//! use hurricane_core::task::TaskCtx;
//! use hurricane_core::EngineError;
//!
//! let mut g = GraphBuilder::new();
//! let input = g.source("numbers");
//! let doubled = g.bag("doubled");
//! g.task("double", &[input], &[doubled], |ctx: &mut TaskCtx| {
//!     while let Some(recs) = ctx.next_records::<u64>(0)? {
//!         for r in recs {
//!             ctx.write_record(0, &(r * 2))?;
//!         }
//!     }
//!     Ok(())
//! });
//! let graph = g.build().unwrap();
//! assert_eq!(graph.num_tasks(), 1);
//! assert_eq!(graph.num_bags(), 2);
//! ```

use crate::error::EngineError;
use crate::task::{MergeLogic, TaskLogic};
use hurricane_common::TaskId;
use std::sync::Arc;

/// Handle to a bag in a graph under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphBag(pub usize);

/// Handle to a task in a graph under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphTask(pub usize);

/// How a bag gets its contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BagKind {
    /// Filled by the application before execution starts.
    Source,
    /// Produced by a task during execution.
    Internal,
}

/// A bag declaration.
pub struct BagDef {
    /// Human-readable name (for reports and debugging).
    pub name: String,
    /// Source or internal.
    pub kind: BagKind,
    /// The task producing this bag, if any.
    pub producer: Option<TaskId>,
    /// The task consuming this bag, if any (none ⇒ sink).
    pub consumer: Option<TaskId>,
}

/// A task declaration: code plus bag connectivity.
pub struct TaskDef {
    /// Human-readable name.
    pub name: String,
    /// The task body, shared by the original and every clone.
    pub logic: Arc<dyn TaskLogic>,
    /// Optional merge procedure. `None` means clone outputs are simply
    /// concatenated (the default merge, paper §2.1).
    pub merge: Option<Arc<dyn MergeLogic>>,
    /// Indices of input bags.
    pub inputs: Vec<usize>,
    /// Indices of output bags.
    pub outputs: Vec<usize>,
}

/// A validated application graph.
pub struct AppGraph {
    bags: Vec<BagDef>,
    tasks: Vec<TaskDef>,
}

impl AppGraph {
    /// Starts building a graph.
    pub fn builder() -> GraphBuilder {
        GraphBuilder::new()
    }

    /// Number of declared bags.
    pub fn num_bags(&self) -> usize {
        self.bags.len()
    }

    /// Number of declared tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The bag declarations, indexed by [`GraphBag`].
    pub fn bag(&self, b: GraphBag) -> &BagDef {
        &self.bags[b.0]
    }

    /// The task declarations, indexed by [`TaskId`].
    pub fn task(&self, t: TaskId) -> &TaskDef {
        &self.tasks[t.index()]
    }

    /// Iterates all task ids in declaration order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(|i| TaskId(i as u32))
    }

    /// Iterates all bag handles in declaration order.
    pub fn bag_handles(&self) -> impl Iterator<Item = GraphBag> + '_ {
        (0..self.bags.len()).map(GraphBag)
    }

    /// Source bags (must be filled and are sealed at run start).
    pub fn sources(&self) -> Vec<GraphBag> {
        self.bags
            .iter()
            .enumerate()
            .filter(|(_, b)| b.kind == BagKind::Source)
            .map(|(i, _)| GraphBag(i))
            .collect()
    }

    /// Sink bags (consumed by no task; read by the application afterward).
    pub fn sinks(&self) -> Vec<GraphBag> {
        self.bags
            .iter()
            .enumerate()
            .filter(|(_, b)| b.consumer.is_none())
            .map(|(i, _)| GraphBag(i))
            .collect()
    }

    /// Looks a bag up by name.
    pub fn bag_by_name(&self, name: &str) -> Option<GraphBag> {
        self.bags.iter().position(|b| b.name == name).map(GraphBag)
    }

    /// Looks a task up by name.
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.tasks
            .iter()
            .position(|t| t.name == name)
            .map(|i| TaskId(i as u32))
    }
}

/// Builder for [`AppGraph`].
#[derive(Default)]
pub struct GraphBuilder {
    bags: Vec<BagDef>,
    tasks: Vec<TaskDef>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a source bag (input data, filled before the run).
    pub fn source(&mut self, name: impl Into<String>) -> GraphBag {
        self.bags.push(BagDef {
            name: name.into(),
            kind: BagKind::Source,
            producer: None,
            consumer: None,
        });
        GraphBag(self.bags.len() - 1)
    }

    /// Declares an internal bag (produced by a task).
    pub fn bag(&mut self, name: impl Into<String>) -> GraphBag {
        self.bags.push(BagDef {
            name: name.into(),
            kind: BagKind::Internal,
            producer: None,
            consumer: None,
        });
        GraphBag(self.bags.len() - 1)
    }

    /// Declares a task with the default (concatenation) merge.
    pub fn task(
        &mut self,
        name: impl Into<String>,
        inputs: &[GraphBag],
        outputs: &[GraphBag],
        logic: impl TaskLogic,
    ) -> GraphTask {
        self.push_task(name.into(), inputs, outputs, Arc::new(logic), None)
    }

    /// Declares a task with an application-specified merge procedure.
    pub fn task_with_merge(
        &mut self,
        name: impl Into<String>,
        inputs: &[GraphBag],
        outputs: &[GraphBag],
        logic: impl TaskLogic,
        merge: impl MergeLogic,
    ) -> GraphTask {
        self.push_task(
            name.into(),
            inputs,
            outputs,
            Arc::new(logic),
            Some(Arc::new(merge)),
        )
    }

    fn push_task(
        &mut self,
        name: String,
        inputs: &[GraphBag],
        outputs: &[GraphBag],
        logic: Arc<dyn TaskLogic>,
        merge: Option<Arc<dyn MergeLogic>>,
    ) -> GraphTask {
        self.tasks.push(TaskDef {
            name,
            logic,
            merge,
            inputs: inputs.iter().map(|b| b.0).collect(),
            outputs: outputs.iter().map(|b| b.0).collect(),
        });
        GraphTask(self.tasks.len() - 1)
    }

    /// Validates and freezes the graph.
    ///
    /// Checks: every task has ≥ 1 input and ≥ 1 output; each bag has at
    /// most one producer and at most one consumer; sources are never
    /// produced; every internal bag has a producer; bag indices are in
    /// range; and the task/bag graph is acyclic.
    pub fn build(mut self) -> Result<AppGraph, EngineError> {
        let nbags = self.bags.len();
        for (i, t) in self.tasks.iter().enumerate() {
            let tid = TaskId(i as u32);
            if t.inputs.is_empty() {
                return Err(EngineError::InvalidGraph(format!(
                    "task '{}' has no input bag",
                    t.name
                )));
            }
            if t.outputs.is_empty() {
                return Err(EngineError::InvalidGraph(format!(
                    "task '{}' has no output bag",
                    t.name
                )));
            }
            for &b in t.inputs.iter().chain(&t.outputs) {
                if b >= nbags {
                    return Err(EngineError::InvalidGraph(format!(
                        "task '{}' references unknown bag {b}",
                        t.name
                    )));
                }
            }
            for &b in &t.inputs {
                if self.bags[b].consumer.is_some() {
                    return Err(EngineError::InvalidGraph(format!(
                        "bag '{}' has two consumers",
                        self.bags[b].name
                    )));
                }
                self.bags[b].consumer = Some(tid);
            }
            for &b in &t.outputs {
                if self.bags[b].kind == BagKind::Source {
                    return Err(EngineError::InvalidGraph(format!(
                        "task '{}' writes to source bag '{}'",
                        t.name, self.bags[b].name
                    )));
                }
                if self.bags[b].producer.is_some() {
                    return Err(EngineError::InvalidGraph(format!(
                        "bag '{}' has two producers",
                        self.bags[b].name
                    )));
                }
                self.bags[b].producer = Some(tid);
            }
        }
        for b in &self.bags {
            if b.kind == BagKind::Internal && b.producer.is_none() {
                return Err(EngineError::InvalidGraph(format!(
                    "internal bag '{}' has no producer and can never seal",
                    b.name
                )));
            }
        }
        // Cycle check: topological walk over task→task edges through bags.
        let ntasks = self.tasks.len();
        let mut indegree = vec![0usize; ntasks];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); ntasks];
        for (i, t) in self.tasks.iter().enumerate() {
            for &b in &t.inputs {
                if let Some(p) = self.bags[b].producer {
                    successors[p.index()].push(i);
                    indegree[i] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..ntasks).filter(|&i| indegree[i] == 0).collect();
        let mut visited = 0;
        while let Some(i) = queue.pop() {
            visited += 1;
            for &s in &successors[i] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if visited != ntasks {
            return Err(EngineError::InvalidGraph(
                "the task graph contains a cycle".into(),
            ));
        }
        Ok(AppGraph {
            bags: self.bags,
            tasks: self.tasks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskCtx;

    fn noop(_ctx: &mut TaskCtx) -> Result<(), EngineError> {
        Ok(())
    }

    #[test]
    fn clicklog_shape_builds() {
        // The paper's Figure 1 topology with three regions.
        let mut g = GraphBuilder::new();
        let input = g.source("clicklog.txt");
        let regions: Vec<GraphBag> = (0..3).map(|i| g.bag(format!("region.{i}"))).collect();
        g.task("phase1", &[input], &regions, noop);
        let mut counts = Vec::new();
        for (i, &r) in regions.iter().enumerate() {
            let distinct = g.bag(format!("distinct.{i}"));
            g.task_with_merge(
                format!("phase2.{i}"),
                &[r],
                &[distinct],
                noop,
                |_o: usize,
                 _p: &mut [crate::task::BagReader],
                 _out: &mut crate::task::BagWriter| Ok(()),
            );
            let count = g.bag(format!("count.{i}"));
            g.task(format!("phase3.{i}"), &[distinct], &[count], noop);
            counts.push(count);
        }
        let graph = g.build().unwrap();
        assert_eq!(graph.num_tasks(), 7);
        assert_eq!(graph.num_bags(), 10);
        assert_eq!(graph.sources().len(), 1);
        assert_eq!(graph.sinks().len(), 3);
        assert!(graph.task(TaskId(1)).merge.is_some());
        assert!(graph.task(TaskId(0)).merge.is_none());
        assert_eq!(graph.task_by_name("phase1"), Some(TaskId(0)));
        assert_eq!(graph.bag_by_name("clicklog.txt"), Some(GraphBag(0)));
    }

    #[test]
    fn rejects_double_consumer() {
        let mut g = GraphBuilder::new();
        let s = g.source("in");
        let o1 = g.bag("o1");
        let o2 = g.bag("o2");
        g.task("a", &[s], &[o1], noop);
        g.task("b", &[s], &[o2], noop);
        assert!(matches!(g.build(), Err(EngineError::InvalidGraph(_))));
    }

    #[test]
    fn rejects_double_producer() {
        let mut g = GraphBuilder::new();
        let s1 = g.source("in1");
        let s2 = g.source("in2");
        let o = g.bag("o");
        g.task("a", &[s1], &[o], noop);
        g.task("b", &[s2], &[o], noop);
        assert!(matches!(g.build(), Err(EngineError::InvalidGraph(_))));
    }

    #[test]
    fn rejects_writing_to_source() {
        let mut g = GraphBuilder::new();
        let s1 = g.source("in");
        let s2 = g.source("other");
        g.task("a", &[s1], &[s2], noop);
        assert!(matches!(g.build(), Err(EngineError::InvalidGraph(_))));
    }

    #[test]
    fn rejects_orphan_internal_bag() {
        let mut g = GraphBuilder::new();
        let s = g.source("in");
        let orphan = g.bag("orphan");
        let o = g.bag("o");
        g.task("a", &[s, orphan], &[o], noop);
        assert!(matches!(g.build(), Err(EngineError::InvalidGraph(_))));
    }

    #[test]
    fn rejects_cycle() {
        let mut g = GraphBuilder::new();
        let a = g.bag("a");
        let b = g.bag("b");
        g.task("t1", &[a], &[b], noop);
        g.task("t2", &[b], &[a], noop);
        assert!(matches!(g.build(), Err(EngineError::InvalidGraph(_))));
    }

    #[test]
    fn rejects_io_less_tasks() {
        let mut g = GraphBuilder::new();
        let s = g.source("in");
        g.task("no-out", &[s], &[], noop);
        assert!(matches!(g.build(), Err(EngineError::InvalidGraph(_))));

        let mut g = GraphBuilder::new();
        let o = g.bag("o");
        g.task("no-in", &[], &[o], noop);
        assert!(matches!(g.build(), Err(EngineError::InvalidGraph(_))));
    }

    #[test]
    fn diamond_is_acyclic() {
        let mut g = GraphBuilder::new();
        let s = g.source("in");
        let l = g.bag("l");
        let r = g.bag("r");
        let l2 = g.bag("l2");
        let r2 = g.bag("r2");
        let out = g.bag("out");
        g.task("split", &[s], &[l, r], noop);
        g.task("left", &[l], &[l2], noop);
        g.task("right", &[r], &[r2], noop);
        g.task("join", &[l2, r2], &[out], noop);
        let graph = g.build().unwrap();
        assert_eq!(graph.num_tasks(), 4);
        assert_eq!(graph.sinks(), vec![GraphBag(5)]);
    }
}
