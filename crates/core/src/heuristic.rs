//! The cloning heuristic (paper §4.2, Eq. 2).
//!
//! Hurricane clones a task only when cloning is expected to shorten its
//! completion. With `k` current instances, expected remaining time `T`
//! without a new clone, and `T_IO` the extra I/O the clone introduces
//! (loading task state, merging its output), adding a clone yields
//! `T_C = k/(k+1) · T + T_IO`, so cloning pays off iff
//!
//! ```text
//! T > (k + 1) · T_IO            (Eq. 2)
//! ```
//!
//! `T` is estimated by sampling the input bag (how much data is left, how
//! fast it drains); `T_IO` is estimated as *two times* the remaining input
//! the task will read (once for input, once for output) divided by I/O
//! bandwidth. This module is pure and shared by the threaded runtime and
//! the discrete-event simulator.

/// Inputs to one cloning decision.
#[derive(Debug, Clone, Copy)]
pub struct CloneDecision {
    /// Current number of instances processing the task (k ≥ 1).
    pub instances: u32,
    /// Bytes remaining in the task's input bag(s).
    pub remaining_bytes: u64,
    /// Observed drain rate of the input bag(s), bytes/second.
    pub drain_rate: f64,
    /// Modeled I/O bandwidth available for clone state + merge, bytes/s.
    pub io_bandwidth: f64,
}

impl CloneDecision {
    /// Expected remaining time without cloning, `T = remaining / rate`.
    ///
    /// An unobserved (zero) drain rate yields `f64::INFINITY`: with no
    /// evidence of progress, remaining time is unbounded and cloning is
    /// always worthwhile — the paper's heuristic only needs rough
    /// estimates and errs toward parallelism early in a task.
    pub fn expected_remaining(&self) -> f64 {
        if self.drain_rate <= 0.0 {
            if self.remaining_bytes == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.remaining_bytes as f64 / self.drain_rate
        }
    }

    /// Estimated clone overhead `T_IO ≈ 2 · remaining / io_bandwidth`
    /// (paper §4.2: "we estimate it as two times the size of the remaining
    /// portion of the input bag that the task will read (for input and
    /// output)").
    pub fn io_time(&self) -> f64 {
        if self.io_bandwidth <= 0.0 {
            return f64::INFINITY;
        }
        2.0 * self.remaining_bytes as f64 / self.io_bandwidth
    }

    /// Eq. 2: clone iff `T > (k + 1) · T_IO`.
    pub fn should_clone(&self) -> bool {
        if self.remaining_bytes == 0 {
            return false;
        }
        let t = self.expected_remaining();
        let tio = self.io_time();
        if t.is_infinite() && tio.is_infinite() {
            // No information at all: decline, we cannot bound the cost.
            return false;
        }
        t > (self.instances as f64 + 1.0) * tio
    }

    /// Expected completion time if the clone is added:
    /// `T_C = k/(k+1) · T + T_IO`.
    pub fn cloned_remaining(&self) -> f64 {
        let k = self.instances as f64;
        k / (k + 1.0) * self.expected_remaining() + self.io_time()
    }
}

/// A simple rate tracker: observes (bytes_removed, time) samples of a bag
/// and reports the drain rate over the most recent interval.
#[derive(Debug, Clone, Copy, Default)]
pub struct RateTracker {
    last_removed: u64,
    last_time: f64,
    rate: f64,
    initialized: bool,
}

impl RateTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation: cumulative `removed_bytes` at time `now`
    /// (seconds, any epoch). Returns the current rate estimate.
    pub fn observe(&mut self, removed_bytes: u64, now: f64) -> f64 {
        if !self.initialized {
            self.initialized = true;
            self.last_removed = removed_bytes;
            self.last_time = now;
            return 0.0;
        }
        let dt = now - self.last_time;
        if dt > 1e-9 {
            let delta = removed_bytes.saturating_sub(self.last_removed) as f64;
            let instant = delta / dt;
            // Light smoothing keeps one quiet poll from zeroing the rate.
            self.rate = if self.rate == 0.0 {
                instant
            } else {
                0.5 * self.rate + 0.5 * instant
            };
            self.last_removed = removed_bytes;
            self.last_time = now;
        }
        self.rate
    }

    /// The current rate estimate (bytes/second).
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(k: u32, remaining: u64, rate: f64, bw: f64) -> CloneDecision {
        CloneDecision {
            instances: k,
            remaining_bytes: remaining,
            drain_rate: rate,
            io_bandwidth: bw,
        }
    }

    #[test]
    fn paper_worked_example() {
        // Paper §4.2: 4 clones, 10 seconds remaining; a fifth clone brings
        // completion to 8s + T_IO, so cloning helps iff T_IO < 2s.
        // Construct T = 10s (remaining 100 bytes at 10 B/s).
        // T_IO < 2s ⇔ 2·100/bw < 2 ⇔ bw > 100.
        let cheap = decision(4, 100, 10.0, 101.0);
        assert!(cheap.should_clone());
        let expensive = decision(4, 100, 10.0, 99.0);
        assert!(!expensive.should_clone());
    }

    #[test]
    fn never_clone_empty_bag() {
        assert!(!decision(1, 0, 10.0, 1e9).should_clone());
    }

    #[test]
    fn unknown_rate_clones_when_io_is_cheap() {
        let d = decision(1, 1_000_000, 0.0, 1e9);
        assert!(d.expected_remaining().is_infinite());
        assert!(d.should_clone());
    }

    #[test]
    fn no_information_declines() {
        let d = decision(1, 1_000_000, 0.0, 0.0);
        assert!(!d.should_clone());
    }

    #[test]
    fn more_clones_raise_the_bar() {
        // Same task state; at some k the heuristic must start refusing.
        // T = 10s, T_IO = 1s: Eq. 2 accepts while k + 1 < 10.
        let accepts: Vec<bool> = (1..50)
            .map(|k| decision(k, 1000, 100.0, 2000.0).should_clone())
            .collect();
        assert!(accepts[0], "k=1 should clone (T=10s, T_IO=1s)");
        let first_reject = accepts.iter().position(|a| !a);
        assert!(first_reject.is_some(), "heuristic must eventually refuse");
        // Monotone: once it refuses, it keeps refusing for larger k.
        let idx = first_reject.unwrap();
        assert!(accepts[idx..].iter().all(|a| !a));
    }

    #[test]
    fn near_completion_rejects() {
        // Tiny remaining input: T small, (k+1)·T_IO dominates.
        // T = 10/1000 = 0.01s; T_IO = 2·10/2000 = 0.01s; 0.01 > 2·0.01 is
        // false, so the clone is refused.
        let d = decision(1, 10, 1000.0, 2000.0);
        assert!(!d.should_clone());
    }

    #[test]
    fn cloned_remaining_matches_formula() {
        let d = decision(4, 1000, 100.0, 1e6);
        let t = d.expected_remaining();
        let tc = d.cloned_remaining();
        assert!((t - 10.0).abs() < 1e-9);
        assert!((tc - (0.8 * 10.0 + d.io_time())).abs() < 1e-9);
        assert!(tc < t);
    }

    #[test]
    fn rate_tracker_converges() {
        let mut rt = RateTracker::new();
        rt.observe(0, 0.0);
        for i in 1..=10 {
            rt.observe(i * 100, i as f64);
        }
        assert!((rt.rate() - 100.0).abs() < 1.0, "rate {}", rt.rate());
    }

    #[test]
    fn rate_tracker_ignores_zero_dt() {
        let mut rt = RateTracker::new();
        rt.observe(0, 0.0);
        rt.observe(100, 1.0);
        let r1 = rt.rate();
        rt.observe(200, 1.0); // Same timestamp: must not divide by zero.
        assert_eq!(rt.rate(), r1);
    }

    #[test]
    fn rate_tracker_handles_rewind() {
        // A rewound bag makes the cumulative counter go backwards; the
        // tracker must not panic or produce negative rates.
        let mut rt = RateTracker::new();
        rt.observe(1000, 0.0);
        rt.observe(100, 1.0);
        assert!(rt.rate() >= 0.0);
    }
}
