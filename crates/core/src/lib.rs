//! The Hurricane runtime: adaptive work partitioning via task cloning.
//!
//! This crate implements the core contribution of *Rock You like a
//! Hurricane: Taming Skew in Large Scale Analytics* (EuroSys '18):
//! a dataflow engine where an overloaded task can be **cloned** at any
//! point during its execution, with each clone pulling disjoint chunks
//! from the same shared input bag, and an application-specified **merge**
//! reconciling the clones' partial outputs into the output an uncloned
//! run would have produced.
//!
//! Module map:
//!
//! * [`graph`] — application graphs: tasks, bags, and their wiring.
//! * [`task`] — the worker-facing API: [`TaskCtx`], [`task::BagReader`],
//!   [`task::BagWriter`], cancellation, clone pings.
//! * [`merges`] — the library of standard merge procedures.
//! * [`heuristic`] — the Eq. 2 cloning heuristic (pure, shared with the
//!   simulator crate).
//! * [`master`] — the application master: scheduling, clone arbitration,
//!   merge injection, failure recovery, crash recovery from work bags.
//! * [`manager`] — compute-node task managers claiming descriptors from
//!   the decentralized ready bag.
//! * [`app`] — deployment and the run lifecycle.
//!
//! See the crate-level example on [`HurricaneApp`].

pub mod app;
pub mod config;
pub mod descriptor;
pub mod error;
pub mod graph;
pub mod heuristic;
pub mod manager;
pub mod master;
pub mod merges;
pub mod task;

pub use app::{AppReport, HurricaneApp, RunningApp};
pub use config::HurricaneConfig;
pub use error::EngineError;
pub use graph::{AppGraph, GraphBag, GraphBuilder, GraphTask};
pub use task::{MergeLogic, TaskCtx, TaskLogic};
