//! Task managers: the compute-node side of the runtime.
//!
//! Paper §3.1/§4.1: each compute node runs a task manager that claims task
//! descriptors from the distributed *ready* work bag and executes them on
//! local workers. Claiming is fully decentralized — the bag's exactly-once
//! chunk delivery guarantees no double execution without any coordinator
//! in the claim path. Before executing, the manager appends a
//! [`RunningRecord`]; after finishing, the worker appends a
//! [`DoneRecord`]. Between chunks workers poll the [`KillSwitch`] so that
//! failure recovery can cancel them promptly.

use crate::config::HurricaneConfig;
use crate::descriptor::{Descriptor, DoneRecord, RunningRecord, KIND_MERGE, KIND_TASK};
use crate::error::EngineError;
use crate::graph::AppGraph;
use crate::merges::{self, ConcatMerge};
use crate::task::{
    BagReader, BagWriter, CancelProbe, ControlMsg, KillSwitch, MergeLogic, SpillSink, TaskCtx,
};
use crossbeam::channel::Sender;
use hurricane_common::BagId;
use hurricane_storage::{BagClient, StorageCluster, StorageEndpoint, WorkBag};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The physical ids of the application's scheduling bags.
#[derive(Debug, Clone, Copy)]
pub struct WorkBagIds {
    /// Descriptors awaiting a worker.
    pub ready: BagId,
    /// Claim records.
    pub running: BagId,
    /// Completion records.
    pub done: BagId,
}

/// Soft-state registry of units currently executing on some worker.
///
/// This is the in-process analog of the heartbeat visibility the paper's
/// master gets from its cluster: recovery uses it to wait until cancelled
/// workers have actually unwound before rewinding their input bags.
#[derive(Debug, Default)]
pub struct RunningRegistry {
    inner: Mutex<HashMap<(u32, u32, u32, u8), u32>>,
}

impl RunningRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, task: u32, generation: u32, clone: u32, kind: u8, node: u32) {
        self.inner
            .lock()
            .insert((task, generation, clone, kind), node);
    }

    fn deregister(&self, task: u32, generation: u32, clone: u32, kind: u8) {
        self.inner.lock().remove(&(task, generation, clone, kind));
    }

    /// Number of units currently executing cluster-wide.
    pub fn active(&self) -> usize {
        self.inner.lock().len()
    }

    /// Returns whether any unit of `task` at generation ≤ `generation` is
    /// still executing.
    pub fn task_active_upto(&self, task: u32, generation: u32) -> bool {
        self.inner
            .lock()
            .keys()
            .any(|&(t, g, _, _)| t == task && g <= generation)
    }
}

/// RAII guard ensuring deregistration on every worker exit path.
struct RegistryGuard<'a> {
    registry: &'a RunningRegistry,
    key: (u32, u32, u32, u8),
}

impl Drop for RegistryGuard<'_> {
    fn drop(&mut self) {
        self.registry
            .deregister(self.key.0, self.key.1, self.key.2, self.key.3);
    }
}

/// Monotonic seed source for bag clients (placement decorrelation).
#[derive(Debug)]
pub struct SeedGen {
    base: u64,
    next: AtomicU64,
}

impl SeedGen {
    /// Creates a generator rooted at `base`.
    pub fn new(base: u64) -> Self {
        Self {
            base,
            next: AtomicU64::new(1),
        }
    }

    /// Returns a fresh seed.
    pub fn next(&self) -> u64 {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        hurricane_common::SplitMix64::mix(self.base ^ n)
    }
}

/// Everything a task manager needs, shared across nodes.
#[derive(Clone)]
pub struct ManagerDeps {
    /// The application graph (blueprints live here).
    pub graph: Arc<AppGraph>,
    /// The storage cluster.
    pub cluster: Arc<StorageCluster>,
    /// The storage endpoint bag clients are minted from: the channel RPC
    /// plane when the deployment routes the data plane through messages
    /// (`HurricaneConfig::storage_rpc`), the direct plane otherwise.
    pub endpoint: Arc<StorageEndpoint>,
    /// Runtime configuration.
    pub config: Arc<HurricaneConfig>,
    /// Shared cancellation state.
    pub kill: Arc<KillSwitch>,
    /// Running-unit soft state.
    pub registry: Arc<RunningRegistry>,
    /// Channel to the application master.
    pub control_tx: Sender<ControlMsg>,
    /// The scheduling bags.
    pub workbags: WorkBagIds,
    /// Seed source.
    pub seeds: Arc<SeedGen>,
    /// Set when the application has completed and managers should exit.
    pub app_done: Arc<AtomicBool>,
}

/// Handle to one compute node's manager thread.
pub struct ComputeNodeHandle {
    /// The node's id.
    pub id: u32,
    alive: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ComputeNodeHandle {
    /// Fails the node: it stops claiming work and its running workers
    /// observe cancellation. (The caller separately notifies the master
    /// via [`ControlMsg::NodeFailed`], mirroring failure detection.)
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Relaxed);
    }

    /// Brings a failed node back (paper §3.4: compute nodes can be added
    /// at any point; a restarted node is a new, idle node).
    pub fn restart(&self) {
        self.alive.store(true, Ordering::Relaxed);
    }

    /// Returns whether the node is currently alive.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    /// Joins the manager thread (call after the app-done flag is set).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl ManagerDeps {
    /// Opens a bag client for `bag` over the deployment's storage path:
    /// RPC messages when the boundary is enabled, direct calls otherwise.
    /// The endpoint carries the knobs (writer credit, timeout, retry).
    pub(crate) fn bag_client(&self, bag: BagId) -> BagClient {
        self.endpoint.client(bag, self.seeds.next())
    }

    /// A bag client for a task-output writer: like
    /// [`ManagerDeps::bag_client`], plus the configured insert-coalescing
    /// window. Writers flush at task boundaries ([`BagWriter::flush`]
    /// drains the port), so deferred completion never leaks past a task.
    pub(crate) fn writer_client(&self, bag: BagId) -> BagClient {
        self.bag_client(bag)
            .with_coalescing(self.config.effective_coalesce_window())
    }

    /// Opens a typed work bag over the deployment's storage path.
    fn workbag<T: hurricane_format::Record>(&self, bag: BagId) -> WorkBag<T> {
        WorkBag::with_client(self.bag_client(bag))
    }
}

/// Spawns the task-manager thread for compute node `node_id`.
pub fn spawn_manager(node_id: u32, deps: ManagerDeps) -> ComputeNodeHandle {
    let alive = Arc::new(AtomicBool::new(true));
    let alive2 = alive.clone();
    let thread = std::thread::Builder::new()
        .name(format!("manager-cn{node_id}"))
        .spawn(move || manager_loop(node_id, deps, alive2))
        .expect("spawning task manager");
    ComputeNodeHandle {
        id: node_id,
        alive,
        thread: Some(thread),
    }
}

fn manager_loop(node_id: u32, deps: ManagerDeps, alive: Arc<AtomicBool>) {
    let mut ready: WorkBag<Descriptor> = deps.workbag(deps.workbags.ready);
    let mut running: WorkBag<RunningRecord> = deps.workbag(deps.workbags.running);
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    // Consecutive ready-bag claim failures. Transient storage errors
    // (a node mid-failover, a disk hiccup) deserve a retry; a *persistent*
    // failure — e.g. a poisoned work-bag stream after a failed journal
    // append — would otherwise spin this loop silently forever while the
    // master waits for progress that can never come.
    let mut claim_errors: u32 = 0;
    const CLAIM_ERROR_LIMIT: u32 = 2_000; // ≈2 s of 1 ms retries
    loop {
        workers.retain(|w| !w.is_finished());
        if deps.app_done.load(Ordering::Relaxed) {
            break;
        }
        if !alive.load(Ordering::Relaxed) || workers.len() >= deps.config.worker_slots {
            std::thread::sleep(Duration::from_micros(500));
            continue;
        }
        match ready.try_take() {
            Ok(Some(desc)) => {
                claim_errors = 0;
                let inst = desc.instance_id();
                if deps.kill.is_killed(inst.task.0, desc.generation) {
                    continue; // Stale descriptor from a restarted task.
                }
                let rec = RunningRecord {
                    kind: desc.kind,
                    instance: desc.instance,
                    generation: desc.generation,
                    node: node_id,
                    inputs: desc.inputs.clone(),
                    outputs: desc.outputs.clone(),
                };
                if running.insert(&rec).is_err() {
                    // Storage refused the claim record; put the unit back
                    // rather than running it untracked. If the ready bag
                    // refuses too the descriptor is gone — fail the job
                    // loudly instead of letting the master poll forever
                    // for a unit nobody holds.
                    if let Err(e) = ready.insert(&desc) {
                        let _ = deps.control_tx.send(ControlMsg::Fatal {
                            task: inst.task.0,
                            message: format!("work descriptor lost on requeue: {e}"),
                        });
                    }
                    continue;
                }
                let deps2 = deps.clone();
                let alive2 = alive.clone();
                let w = std::thread::Builder::new()
                    .name(format!("worker-cn{node_id}-{inst}"))
                    .spawn(move || run_unit(node_id, desc, deps2, alive2))
                    .expect("spawning worker");
                workers.push(w);
            }
            Ok(None) => {
                claim_errors = 0;
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(e) => {
                claim_errors += 1;
                if claim_errors == CLAIM_ERROR_LIMIT {
                    // No task to pin the failure on — the claim itself
                    // is what fails. The sentinel id still aborts the
                    // run with the storage error in hand.
                    let _ = deps.control_tx.send(ControlMsg::Fatal {
                        task: u32::MAX,
                        message: format!(
                            "compute node {node_id} cannot claim work \
                             ({CLAIM_ERROR_LIMIT} consecutive failures): {e}"
                        ),
                    });
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Executes one claimed unit (task instance or merge) to completion.
fn run_unit(node_id: u32, desc: Descriptor, deps: ManagerDeps, node_alive: Arc<AtomicBool>) {
    let inst = desc.instance_id();
    let key = (inst.task.0, desc.generation, inst.clone.0, desc.kind);
    deps.registry.register(key.0, key.1, key.2, key.3, node_id);
    let _guard = RegistryGuard {
        registry: &deps.registry,
        key,
    };
    let probe = CancelProbe {
        kill: deps.kill.clone(),
        task: inst.task.0,
        generation: desc.generation,
        node_alive: node_alive.clone(),
    };
    let outcome = match desc.kind {
        KIND_TASK => run_task(node_id, &desc, &deps, &probe),
        KIND_MERGE => run_merge(&desc, &deps, &probe),
        _ => Err(EngineError::InvalidGraph(format!(
            "unknown descriptor kind {}",
            desc.kind
        ))),
    };
    match outcome {
        Ok(()) => {
            if probe.cancelled() {
                return; // Cancelled at the finish line: no done record.
            }
            let mut done: WorkBag<DoneRecord> = deps.workbag(deps.workbags.done);
            // A completion that can't be recorded is indistinguishable
            // from a unit that never finished: the master would wait
            // forever. Surface the storage failure instead of hanging
            // the job (seen with injected disk faults eating the done
            // bag's journal append).
            if let Err(e) = done.insert(&DoneRecord {
                kind: desc.kind,
                instance: desc.instance,
                generation: desc.generation,
                node: node_id,
                outputs: desc.outputs.clone(),
            }) {
                let _ = deps.control_tx.send(ControlMsg::Fatal {
                    task: inst.task.0,
                    message: format!("completion record lost: {e}"),
                });
            }
        }
        Err(EngineError::Cancelled) => {}
        Err(e) => {
            let _ = deps.control_tx.send(ControlMsg::Fatal {
                task: inst.task.0,
                message: e.to_string(),
            });
        }
    }
}

fn run_task(
    node_id: u32,
    desc: &Descriptor,
    deps: &ManagerDeps,
    probe: &CancelProbe,
) -> Result<(), EngineError> {
    let inst = desc.instance_id();
    let logic = deps.graph.task(inst.task).logic.clone();
    let inputs = desc
        .inputs
        .iter()
        .map(|&b| {
            BagReader::open_client(
                deps.bag_client(BagId(b)),
                deps.config.batch_factor,
                Some(probe.clone()),
            )
        })
        .collect();
    let outputs = desc
        .outputs
        .iter()
        .map(|&b| {
            BagWriter::open_batched_client(
                deps.writer_client(BagId(b)),
                deps.config.chunk_size,
                deps.config.batch_factor,
            )
        })
        .collect();
    let mut ctx = TaskCtx {
        inputs,
        outputs,
        input_bags: desc.inputs.iter().map(|&b| BagId(b)).collect(),
        cluster: deps.cluster.clone(),
        instance: inst,
        node: node_id,
        generation: desc.generation,
        clone_tx: deps.config.cloning_enabled.then(|| deps.control_tx.clone()),
        clone_interval: deps.config.clone_interval,
        last_ping: Instant::now(),
        scratch: Vec::new(),
    };
    logic.run(&mut ctx)?;
    ctx.flush_outputs()?;
    Ok(())
}

/// The manager's [`SpillSink`]: scratch runs are cluster bags pinned to
/// one storage node each (bags are unordered *across* nodes but FIFO
/// within one, so a pinned run reads back in key order), created and
/// reclaimed through the normal bag lifecycle. Every live run is also
/// recorded in a registry shared across the merge task's sinks, so
/// [`run_merge`] can reclaim leftovers on *any* exit path — a failed
/// spill write fails the merge cleanly and its scratch never leaks.
struct ClusterSpillSink {
    deps: ManagerDeps,
    probe: CancelProbe,
    /// All unreleased runs of the owning merge task (shared across the
    /// task's per-output sinks).
    scratch: Arc<Mutex<Vec<BagId>>>,
    /// Next storage node to pin a run to (cycled for spread).
    next_pin: usize,
}

impl SpillSink for ClusterSpillSink {
    fn create_run(&mut self) -> Result<BagWriter, EngineError> {
        let bag = self.deps.cluster.create_bag();
        self.scratch.lock().push(bag);
        let pin = self.next_pin % self.deps.cluster.num_nodes();
        self.next_pin = self.next_pin.wrapping_add(1);
        let client = self.deps.bag_client(bag).with_pinned_node(pin);
        // Write batch factor 1: chunks insert (and thus read back) in
        // emission order. No coalescing — a spill failure must surface
        // inside the merge, not at some later flush.
        Ok(BagWriter::open_batched_client(
            client,
            self.deps.config.chunk_size,
            1,
        ))
    }

    fn open_run(&mut self, bag: BagId) -> Result<BagReader, EngineError> {
        self.deps.cluster.seal_bag(bag)?;
        // Batch factor 1 keeps delivery strictly in insertion order.
        Ok(BagReader::open_client(
            self.deps.bag_client(bag),
            1,
            Some(self.probe.clone()),
        ))
    }

    fn release_run(&mut self, bag: BagId) -> Result<(), EngineError> {
        self.deps.cluster.collect_bag(bag)?;
        self.scratch.lock().retain(|&b| b != bag);
        Ok(())
    }
}

fn run_merge(
    desc: &Descriptor,
    deps: &ManagerDeps,
    probe: &CancelProbe,
) -> Result<(), EngineError> {
    let inst = desc.instance_id();
    let stride = desc.outputs.len();
    debug_assert!(stride > 0 && desc.inputs.len().is_multiple_of(stride));
    let instances = desc.inputs.len() / stride;
    let merge: Arc<dyn MergeLogic> = if instances == 1 {
        // A single partial is definitionally the final output: identity.
        Arc::new(ConcatMerge)
    } else {
        deps.graph
            .task(inst.task)
            .merge
            .clone()
            .unwrap_or(Arc::new(ConcatMerge))
    };
    // Open every output's readers and writer here, in output order, so
    // client minting stays deterministic (seed draws, port allocation)
    // regardless of how the jobs are later scheduled; the workers only
    // ever touch their own job's handles.
    let jobs: Vec<(usize, Vec<BagReader>, BagWriter)> = desc
        .outputs
        .iter()
        .enumerate()
        .map(|(out_idx, &out_bag)| {
            let partials: Vec<BagReader> = (0..instances)
                .map(|i| {
                    BagReader::open_client(
                        deps.bag_client(BagId(desc.inputs[i * stride + out_idx])),
                        deps.config.batch_factor,
                        Some(probe.clone()),
                    )
                })
                .collect();
            let out = BagWriter::open_batched_client(
                deps.writer_client(BagId(out_bag)),
                deps.config.chunk_size,
                deps.config.batch_factor,
            );
            (out_idx, partials, out)
        })
        .collect();
    let budget = deps.config.merge_memory_budget;
    if budget == u64::MAX {
        return merges::merge_outputs(&*merge, deps.config.merge_parallelism, jobs);
    }
    // Bounded path: every output gets its own sink; the shared scratch
    // registry lets us reclaim any runs the merge left behind (error or
    // cancellation unwind) so scratch storage never outlives the task.
    let scratch: Arc<Mutex<Vec<BagId>>> = Arc::new(Mutex::new(Vec::new()));
    let make_sink = || -> Box<dyn SpillSink> {
        Box::new(ClusterSpillSink {
            deps: deps.clone(),
            probe: probe.clone(),
            scratch: scratch.clone(),
            next_pin: 0,
        })
    };
    let result = merges::merge_outputs_bounded(
        &*merge,
        deps.config.merge_parallelism,
        jobs,
        budget,
        &make_sink,
    );
    for bag in scratch.lock().drain(..) {
        let _ = deps.cluster.collect_bag(bag);
    }
    result.map(|_stats| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tracks_and_clears() {
        let r = RunningRegistry::new();
        r.register(1, 0, 0, KIND_TASK, 3);
        r.register(1, 0, 1, KIND_TASK, 4);
        assert_eq!(r.active(), 2);
        assert!(r.task_active_upto(1, 0));
        assert!(r.task_active_upto(1, 5), "older gens included");
        assert!(!r.task_active_upto(2, 0));
        r.deregister(1, 0, 0, KIND_TASK);
        r.deregister(1, 0, 1, KIND_TASK);
        assert_eq!(r.active(), 0);
        assert!(!r.task_active_upto(1, 0));
    }

    #[test]
    fn registry_generation_filter() {
        let r = RunningRegistry::new();
        r.register(1, 3, 0, KIND_TASK, 0);
        assert!(!r.task_active_upto(1, 2), "newer gen is not 'upto 2'");
        assert!(r.task_active_upto(1, 3));
    }

    #[test]
    fn registry_guard_deregisters_on_drop() {
        let r = RunningRegistry::new();
        r.register(5, 0, 0, KIND_MERGE, 1);
        {
            let _g = RegistryGuard {
                registry: &r,
                key: (5, 0, 0, KIND_MERGE),
            };
        }
        assert_eq!(r.active(), 0);
    }

    #[test]
    fn seedgen_yields_distinct_seeds() {
        let s = SeedGen::new(42);
        let a = s.next();
        let b = s.next();
        assert_ne!(a, b);
        // Same base, fresh generator: deterministic sequence.
        let s2 = SeedGen::new(42);
        assert_eq!(s2.next(), a);
        assert_eq!(s2.next(), b);
    }
}
