//! The application master (paper §3.1, §3.2, §4.2, §4.4).
//!
//! The master drives the application: it schedules tasks once their input
//! bags are complete, monitors the done bag for completions, arbitrates
//! clone requests with the Eq. 2 heuristic, injects merge tasks when a
//! cloned task requires reconciliation, and recovers from compute-node
//! failures by restarting affected tasks at a bumped *generation*.
//!
//! The master is deliberately lightweight: all durable scheduling state
//! lives in the work bags (ready / running / done) spread across the
//! storage nodes. A crashed master is recovered by replaying those bags —
//! [`Master::recover`] rebuilds clone counts, partial-bag allocations, and
//! completion state from non-destructive snapshots, after which compute
//! nodes (which kept working during the outage) never notice.

use crate::config::HurricaneConfig;
use crate::descriptor::{Descriptor, DoneRecord, RunningRecord, KIND_MERGE, KIND_TASK};
use crate::error::EngineError;
use crate::graph::AppGraph;
use crate::heuristic::{CloneDecision, RateTracker};
use crate::manager::{RunningRegistry, SeedGen, WorkBagIds};
use crate::task::{ControlMsg, KillSwitch};
use crossbeam::channel::Receiver;
use hurricane_common::{BagId, TaskId, TaskInstanceId};
use hurricane_storage::{StorageCluster, StorageEndpoint, WorkBag};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Final statistics from a completed run.
#[derive(Debug, Clone, Default)]
pub struct MasterReport {
    /// Clones created per task (blueprint id → clones beyond the original).
    pub clones_per_task: HashMap<u32, u32>,
    /// Total clones created.
    pub total_clones: u32,
    /// Merge tasks executed.
    pub merges_run: u32,
    /// Task restarts due to compute-node failures.
    pub restarts: u32,
    /// Clone requests received from workers.
    pub clone_requests: u64,
    /// Clone requests rejected (heuristic, caps, capacity, rate limit).
    pub clone_rejections: u64,
}

/// How a master run ended.
pub enum MasterOutcome {
    /// All tasks completed; statistics attached.
    Completed(MasterReport),
    /// The master was crashed (test hook); its state is recoverable from
    /// the work bags via [`Master::recover`]. The control-channel receiver
    /// is handed back so the recovered master keeps hearing the workers'
    /// existing sender endpoints.
    Crashed(Receiver<ControlMsg>),
}

/// Everything the master needs, shared with the rest of the runtime.
#[derive(Clone)]
pub struct MasterDeps {
    /// The application graph.
    pub graph: Arc<AppGraph>,
    /// The storage cluster.
    pub cluster: Arc<StorageCluster>,
    /// The storage endpoint bag clients are minted from (channel RPC
    /// plane or direct, per `HurricaneConfig::storage_rpc`).
    pub endpoint: Arc<StorageEndpoint>,
    /// Runtime configuration.
    pub config: Arc<HurricaneConfig>,
    /// Shared cancellation state.
    pub kill: Arc<KillSwitch>,
    /// Running-unit soft state (quiesce detection during recovery).
    pub registry: Arc<RunningRegistry>,
    /// The scheduling bags.
    pub workbags: WorkBagIds,
    /// Mapping from graph bag index to physical bag id.
    pub bag_map: Arc<Vec<BagId>>,
    /// Seed source.
    pub seeds: Arc<SeedGen>,
    /// Set by the master when the application finishes (managers exit).
    pub app_done: Arc<AtomicBool>,
}

#[derive(Debug, Default)]
struct TaskState {
    scheduled: bool,
    completed: bool,
    generation: u32,
    instances: u32,
    done: HashSet<u32>,
    /// Per-clone partial output bags (merge-bearing tasks only).
    partials: BTreeMap<u32, Vec<u64>>,
    merge_scheduled: bool,
    merge_done: bool,
    last_clone: Option<Instant>,
    rate: RateTracker,
}

/// The application master.
pub struct Master {
    deps: MasterDeps,
    control_rx: Receiver<ControlMsg>,
    state: Vec<TaskState>,
    ready: WorkBag<Descriptor>,
    done_bag: WorkBag<DoneRecord>,
    running_bag: WorkBag<RunningRecord>,
    report: MasterReport,
    start: Instant,
}

impl MasterDeps {
    /// Opens a typed work bag over the deployment's storage path (RPC
    /// messages when the boundary is enabled, direct calls otherwise).
    fn workbag<T: hurricane_format::Record>(&self, bag: BagId) -> WorkBag<T> {
        WorkBag::with_client(self.endpoint.client(bag, self.seeds.next()))
    }
}

impl Master {
    /// Creates a fresh master for a newly deployed application.
    pub fn new(deps: MasterDeps, control_rx: Receiver<ControlMsg>) -> Self {
        let state = (0..deps.graph.num_tasks())
            .map(|_| TaskState::default())
            .collect();
        Self {
            ready: deps.workbag(deps.workbags.ready),
            done_bag: deps.workbag(deps.workbags.done),
            running_bag: deps.workbag(deps.workbags.running),
            state,
            report: MasterReport::default(),
            start: Instant::now(),
            deps,
            control_rx,
        }
    }

    /// Rebuilds a master after a crash by replaying the work bags
    /// (paper §4.4, "Application Master Failure").
    ///
    /// The ready bag's full history (claimed descriptors included — bag
    /// snapshots ignore the read pointer) is the schedule log: it yields
    /// the current generation, instance count, and partial-bag allocation
    /// of every task. The done bag yields completions. Compute nodes and
    /// storage nodes are untouched.
    pub fn recover(
        deps: MasterDeps,
        control_rx: Receiver<ControlMsg>,
    ) -> Result<Self, EngineError> {
        let mut master = Master::new(deps, control_rx);
        let descriptors = master.ready.scan_all()?;
        // Pass 1: current generation per task = max generation scheduled.
        for d in &descriptors {
            let t = d.instance_id().task.index();
            let st = &mut master.state[t];
            st.generation = st.generation.max(d.generation);
        }
        // Pass 2: rebuild instance/partial/merge state at current gen.
        for d in &descriptors {
            let inst = d.instance_id();
            let st = &mut master.state[inst.task.index()];
            if d.generation != st.generation {
                continue;
            }
            st.scheduled = true;
            match d.kind {
                KIND_TASK => {
                    st.instances = st.instances.max(inst.clone.0 + 1);
                    if master.deps.graph.task(inst.task).merge.is_some() {
                        st.partials.insert(inst.clone.0, d.outputs.clone());
                    }
                }
                KIND_MERGE => st.merge_scheduled = true,
                _ => {}
            }
        }
        // Pass 3: replay completions.
        for rec in master.done_bag.scan_all()? {
            master.handle_done(rec);
        }
        Ok(master)
    }

    /// Runs the master to completion (or crash).
    pub fn run(mut self) -> Result<MasterOutcome, EngineError> {
        loop {
            while let Ok(msg) = self.control_rx.try_recv() {
                match msg {
                    ControlMsg::CloneRequest {
                        task, generation, ..
                    } => self.handle_clone_request(task, generation)?,
                    ControlMsg::NodeFailed { node } => self.handle_node_failure(node)?,
                    ControlMsg::Fatal { task, message } => {
                        self.deps.kill.shutdown_all();
                        self.deps.app_done.store(true, Ordering::Relaxed);
                        return Err(EngineError::TaskFailed {
                            task: TaskId(task),
                            message,
                        });
                    }
                    ControlMsg::CrashMaster => return Ok(MasterOutcome::Crashed(self.control_rx)),
                }
            }
            // Batched claim: completions arrive in bursts when clones
            // finish together; one storage pass drains the whole burst.
            loop {
                let recs = self.done_bag.try_take_batch(32)?;
                if recs.is_empty() {
                    break;
                }
                for rec in recs {
                    self.handle_done(rec);
                }
            }
            self.progress()?;
            if self.state.iter().all(|s| s.completed) {
                self.deps.app_done.store(true, Ordering::Relaxed);
                return Ok(MasterOutcome::Completed(self.report));
            }
            std::thread::sleep(self.deps.config.master_poll);
        }
    }

    fn now_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn physical(&self, graph_bag: usize) -> BagId {
        self.deps.bag_map[graph_bag]
    }

    fn task_input_bags(&self, t: TaskId) -> Vec<u64> {
        self.deps
            .graph
            .task(t)
            .inputs
            .iter()
            .map(|&b| self.physical(b).raw())
            .collect()
    }

    fn task_output_bags(&self, t: TaskId) -> Vec<u64> {
        self.deps
            .graph
            .task(t)
            .outputs
            .iter()
            .map(|&b| self.physical(b).raw())
            .collect()
    }

    /// Advances the execution graph: schedules tasks whose inputs are
    /// complete, injects merges, seals outputs of finished tasks.
    ///
    /// Newly runnable tasks are gathered across the whole pass and their
    /// descriptors inserted with one batched work-bag write: at
    /// application start (and whenever one completion unlocks several
    /// dependents) the schedule burst costs one storage round-trip per
    /// node instead of one per task.
    fn progress(&mut self) -> Result<(), EngineError> {
        let mut burst: Vec<Descriptor> = Vec::new();
        for idx in 0..self.state.len() {
            let t = TaskId(idx as u32);
            if self.state[idx].completed {
                continue;
            }
            if !self.state[idx].scheduled {
                let ready = self
                    .deps
                    .graph
                    .task(t)
                    .inputs
                    .iter()
                    .map(|&b| self.deps.cluster.is_sealed(self.physical(b)))
                    .collect::<Result<Vec<bool>, _>>()?
                    .into_iter()
                    .all(|s| s);
                if ready {
                    burst.push(self.make_instance_descriptor(t, 0));
                }
                continue;
            }
            let st = &self.state[idx];
            let all_done = st.done.len() as u32 == st.instances && st.instances > 0;
            if !all_done {
                continue;
            }
            let has_merge = self.deps.graph.task(t).merge.is_some();
            if has_merge {
                if !st.merge_scheduled {
                    // Partials from every instance must be known before the
                    // merge can be assembled.
                    if st.partials.len() as u32 == st.instances {
                        self.schedule_merge(t)?;
                    }
                } else if st.merge_done {
                    self.complete_task(t)?;
                }
            } else {
                self.complete_task(t)?;
            }
        }
        self.ready.insert_batch(&burst)?;
        Ok(())
    }

    fn complete_task(&mut self, t: TaskId) -> Result<(), EngineError> {
        for &b in &self.deps.graph.task(t).outputs {
            self.deps.cluster.seal_bag(self.physical(b))?;
        }
        self.state[t.index()].completed = true;
        Ok(())
    }

    /// Builds the descriptor for instance `clone_id` of task `t` at its
    /// current generation and records it in the task's in-memory state.
    /// The caller inserts the descriptor into the ready bag (singly or as
    /// part of a batch); master state is purely in-memory and is rebuilt
    /// from the bags on crash recovery, so a crash between this call and
    /// the insert simply leaves the task unscheduled.
    fn make_instance_descriptor(&mut self, t: TaskId, clone_id: u32) -> Descriptor {
        let has_merge = self.deps.graph.task(t).merge.is_some();
        let outputs: Vec<u64> = if has_merge {
            // Allocate (or reuse, after a restart) this instance's partial
            // output bags — one per declared output.
            let n_out = self.deps.graph.task(t).outputs.len();
            let st = &mut self.state[t.index()];
            if let Some(existing) = st.partials.get(&clone_id) {
                existing.clone()
            } else {
                let bags: Vec<u64> = (0..n_out)
                    .map(|_| self.deps.cluster.create_bag().raw())
                    .collect();
                st.partials.insert(clone_id, bags.clone());
                bags
            }
        } else {
            self.task_output_bags(t)
        };
        let st = &self.state[t.index()];
        let desc = Descriptor {
            kind: KIND_TASK,
            instance: TaskInstanceId::clone_of(t, clone_id).pack(),
            generation: st.generation,
            inputs: self.task_input_bags(t),
            outputs,
        };
        let st = &mut self.state[t.index()];
        st.scheduled = true;
        st.instances = st.instances.max(clone_id + 1);
        desc
    }

    /// Schedules instance `clone_id` of task `t` at its current generation.
    fn schedule_instance(&mut self, t: TaskId, clone_id: u32) -> Result<(), EngineError> {
        let desc = self.make_instance_descriptor(t, clone_id);
        self.ready.insert(&desc)?;
        Ok(())
    }

    /// Seals partials and schedules the merge reconciling them
    /// (paper §3.2: "Once all the clones complete, we execute the merge
    /// task to produce the reconciled output").
    fn schedule_merge(&mut self, t: TaskId) -> Result<(), EngineError> {
        let st = &self.state[t.index()];
        let stride = self.deps.graph.task(t).outputs.len();
        let mut flattened = Vec::with_capacity(st.instances as usize * stride);
        for (_, bags) in st.partials.iter() {
            for &b in bags {
                flattened.push(b);
            }
        }
        for &b in &flattened {
            self.deps.cluster.seal_bag(BagId(b))?;
        }
        let desc = Descriptor {
            kind: KIND_MERGE,
            instance: TaskInstanceId::original(t).pack(),
            generation: st.generation,
            inputs: flattened,
            outputs: self.task_output_bags(t),
        };
        self.ready.insert(&desc)?;
        self.state[t.index()].merge_scheduled = true;
        Ok(())
    }

    fn handle_done(&mut self, rec: DoneRecord) {
        let inst = TaskInstanceId::unpack(rec.instance);
        let Some(st) = self.state.get_mut(inst.task.index()) else {
            return;
        };
        if rec.generation != st.generation {
            return; // Stale completion from a restarted generation.
        }
        match rec.kind {
            KIND_MERGE if st.merge_scheduled && !st.merge_done => {
                st.merge_done = true;
                self.report.merges_run += 1;
            }
            KIND_TASK => {
                let c = inst.clone.0;
                if c >= st.instances {
                    // A clone scheduled by a previous master incarnation in
                    // the narrow insert-before-crash window: adopt it.
                    st.instances = c + 1;
                }
                if self.deps.graph.task(inst.task).merge.is_some() {
                    st.partials.entry(c).or_insert_with(|| rec.outputs.clone());
                }
                st.done.insert(c);
            }
            _ => {}
        }
    }

    /// Applies the cloning policy to one worker request (paper §4.2).
    fn handle_clone_request(&mut self, task: u32, generation: u32) -> Result<(), EngineError> {
        self.report.clone_requests += 1;
        let t = TaskId(task);
        let Some(st) = self.state.get(t.index()) else {
            self.report.clone_rejections += 1;
            return Ok(());
        };
        let cap = self.deps.config.instance_cap() as u32;
        let capacity = self.deps.config.compute_nodes * self.deps.config.worker_slots;
        let gate_ok = self.deps.config.cloning_enabled
            && st.scheduled
            && !st.completed
            && generation == st.generation
            && (st.done.len() as u32) < st.instances
            && st.instances < cap
            && st
                .last_clone
                .is_none_or(|at| at.elapsed() >= self.deps.config.clone_interval)
            && self.deps.registry.active() < capacity;
        if !gate_ok {
            self.report.clone_rejections += 1;
            return Ok(());
        }
        // Estimate T and T_IO from input-bag samples (paper: "T is
        // estimated by sampling the input bag ... to estimate how much
        // data is left and how fast it is emptying").
        let mut remaining_bytes = 0u64;
        let mut remaining_chunks = 0u64;
        let mut removed_bytes = 0u64;
        for &b in &self.deps.graph.task(t).inputs {
            let s = self.deps.cluster.sample_bag(self.physical(b))?;
            remaining_bytes += s.remaining_bytes;
            remaining_chunks += s.remaining_chunks;
            removed_bytes += s.total_bytes - s.remaining_bytes;
        }
        let now = self.now_secs();
        let st = &mut self.state[t.index()];
        let rate = st.rate.observe(removed_bytes, now);
        let decision = CloneDecision {
            instances: st.instances,
            remaining_bytes,
            drain_rate: rate,
            io_bandwidth: self.deps.config.io_bandwidth,
        };
        if remaining_chunks < self.deps.config.min_remaining_chunks_to_clone
            || !decision.should_clone()
        {
            self.report.clone_rejections += 1;
            return Ok(());
        }
        let clone_id = st.instances;
        st.last_clone = Some(Instant::now());
        self.schedule_instance(t, clone_id)?;
        *self.report.clones_per_task.entry(task).or_insert(0) += 1;
        self.report.total_clones += 1;
        Ok(())
    }

    /// Restarts every task that had an unfinished unit on the failed node
    /// (paper §4.4, "Compute Node Failure").
    fn handle_node_failure(&mut self, node: u32) -> Result<(), EngineError> {
        let running = self.running_bag.scan_all()?;
        let mut affected: Vec<TaskId> = Vec::new();
        for rec in &running {
            if rec.node != node {
                continue;
            }
            let inst = TaskInstanceId::unpack(rec.instance);
            let Some(st) = self.state.get(inst.task.index()) else {
                continue;
            };
            if rec.generation != st.generation || st.completed {
                continue;
            }
            let finished = match rec.kind {
                KIND_MERGE => st.merge_done,
                _ => st.done.contains(&inst.clone.0),
            };
            if !finished && !affected.contains(&inst.task) {
                affected.push(inst.task);
            }
        }
        for t in affected {
            self.restart_task(t)?;
        }
        Ok(())
    }

    fn restart_task(&mut self, t: TaskId) -> Result<(), EngineError> {
        let old_gen = self.state[t.index()].generation;
        // Cancel every worker of the old generation, then wait for them to
        // unwind before touching their bags: a zombie writer inserting
        // into a discarded output bag would corrupt the retry.
        self.deps.kill.kill(t.0, old_gen);
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.deps.registry.task_active_upto(t.0, old_gen) {
            if Instant::now() > deadline {
                return Err(EngineError::TaskFailed {
                    task: t,
                    message: "cancelled workers failed to quiesce".into(),
                });
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let has_merge = self.deps.graph.task(t).merge.is_some();
        let st = &self.state[t.index()];
        let merge_phase_restart = has_merge
            && st.merge_scheduled
            && !st.merge_done
            && st.done.len() as u32 == st.instances;
        if merge_phase_restart {
            // The clones finished; only the merge died. Rerun just the
            // merge: discard its (partial) writes to the real outputs and
            // rewind the sealed partial inputs.
            for &b in &self.deps.graph.task(t).outputs.clone() {
                self.deps.cluster.discard_bag(self.physical(b))?;
            }
            let partials: Vec<u64> = self.state[t.index()]
                .partials
                .values()
                .flatten()
                .copied()
                .collect();
            for b in partials {
                self.deps.cluster.rewind_bag(BagId(b))?;
                self.deps.cluster.seal_bag(BagId(b))?;
            }
            let st = &mut self.state[t.index()];
            st.generation += 1;
            st.merge_scheduled = false;
            st.merge_done = false;
            // progress() reschedules the merge at the new generation.
        } else {
            // Task-phase restart: discard all outputs (real or partial),
            // rewind inputs, and rerun from a single original instance.
            if has_merge {
                let partials: Vec<u64> = self.state[t.index()]
                    .partials
                    .values()
                    .flatten()
                    .copied()
                    .collect();
                for b in partials {
                    self.deps.cluster.discard_bag(BagId(b))?;
                }
            } else {
                for &b in &self.deps.graph.task(t).outputs.clone() {
                    self.deps.cluster.discard_bag(self.physical(b))?;
                }
            }
            for &b in &self.deps.graph.task(t).inputs.clone() {
                self.deps.cluster.rewind_bag(self.physical(b))?;
            }
            let st = &mut self.state[t.index()];
            st.generation += 1;
            st.instances = 0;
            st.done.clear();
            st.merge_scheduled = false;
            st.merge_done = false;
            // Keep only instance 0's (now discarded, reusable) partials.
            let keep = st.partials.get(&0).cloned();
            st.partials.clear();
            if let Some(bags) = keep {
                st.partials.insert(0, bags);
            }
            st.rate = RateTracker::new();
            st.last_clone = None;
            self.schedule_instance(t, 0)?;
        }
        self.report.restarts += 1;
        Ok(())
    }
}
