//! A library of typical merge operations (paper §2.3).
//!
//! "For convenience, Hurricane provides a library of typical merge
//! operations." The merge paradigm is more general than shuffle-and-sort:
//! records for the same key may be processed on multiple nodes
//! simultaneously and reconciled here, and non commutative-associative
//! outputs (unique counts, medians, sorted output) are supported because
//! the merge sees whole partial outputs, not per-key streams.
//!
//! All merges in this module uphold the contract that merging the partial
//! outputs of `n` clones produces output equal (as a multiset of records,
//! or exactly where ordering is the point, as in [`SortedMerge`]) to what
//! a single uncloned task would have produced.

use crate::error::EngineError;
use crate::task::{BagReader, BagWriter, MergeLogic};
use hurricane_format::{decode_all, Record};
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// The default merge: concatenates all partial chunks into the output.
///
/// Correct whenever record order and grouping do not matter — map-style
/// tasks, filters, selects (paper §2.3).
pub struct ConcatMerge;

impl MergeLogic for ConcatMerge {
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                out.emit_chunk(chunk)?;
            }
        }
        Ok(())
    }
}

/// Reduces *all* records across all partials into a single record with a
/// binary combiner — the shape of the paper's Phase 2 (`partial1 |
/// partial2`) and Phase 3 (`partial1 + partial2`) merges.
pub struct ReduceMerge<T, F> {
    combine: F,
    _marker: PhantomData<fn(&T)>,
}

impl<T, F> ReduceMerge<T, F>
where
    T: Record + Send + Sync + 'static,
    F: Fn(T, T) -> T + Send + Sync + 'static,
{
    /// Creates a reduce merge with binary combiner `combine`.
    pub fn new(combine: F) -> Self {
        Self {
            combine,
            _marker: PhantomData,
        }
    }
}

impl<T, F> MergeLogic for ReduceMerge<T, F>
where
    T: Record + Send + Sync + 'static,
    F: Fn(T, T) -> T + Send + Sync + 'static,
{
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        let mut acc: Option<T> = None;
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                for rec in decode_all::<T>(&chunk)? {
                    acc = Some(match acc.take() {
                        None => rec,
                        Some(a) => (self.combine)(a, rec),
                    });
                }
            }
        }
        if let Some(a) = acc {
            out.write_record(&a)?;
            out.flush()?;
        }
        Ok(())
    }
}

/// Merges keyed records by combining values of equal keys — the merge
/// combiner shape (group-by aggregation) generalized to clone partials.
pub struct KeyedMerge<K, V, F> {
    combine: F,
    _marker: PhantomData<fn(&K, &V)>,
}

impl<K, V, F> KeyedMerge<K, V, F>
where
    K: Record + Ord + Send + Sync + 'static,
    V: Record + Send + Sync + 'static,
    F: Fn(V, V) -> V + Send + Sync + 'static,
{
    /// Creates a keyed merge with per-key value combiner `combine`.
    pub fn new(combine: F) -> Self {
        Self {
            combine,
            _marker: PhantomData,
        }
    }
}

impl<K, V, F> MergeLogic for KeyedMerge<K, V, F>
where
    K: Record + Ord + Send + Sync + 'static,
    V: Record + Send + Sync + 'static,
    F: Fn(V, V) -> V + Send + Sync + 'static,
{
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        let mut table: BTreeMap<K, V> = BTreeMap::new();
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                for (k, v) in decode_all::<(K, V)>(&chunk)? {
                    match table.remove(&k) {
                        None => {
                            table.insert(k, v);
                        }
                        Some(prev) => {
                            table.insert(k, (self.combine)(prev, v));
                        }
                    }
                }
            }
        }
        for (k, v) in table {
            out.write_record(&(k, v))?;
        }
        out.flush()?;
        Ok(())
    }
}

/// Merge-sorts partials into a single key-ordered record stream — the
/// paper's example of a *non-aggregation* merge ("for instance through a
/// merge sort").
///
/// Note on ordering and bags: records are *written* to the output in
/// sorted order, and each chunk is internally sorted, but bags spread
/// chunks across storage nodes and are unordered collections (paper
/// §4.1). A consumer that needs the global order either reads the bag
/// from a single storage node (FIFO per node) or k-way-merges the sorted
/// chunks it removes — both cheap because every chunk is already sorted.
pub struct SortedMerge<T> {
    _marker: PhantomData<fn(&T)>,
}

impl<T: Record + Ord + Send + Sync + 'static> SortedMerge<T> {
    /// Creates a sorted merge.
    pub fn new() -> Self {
        Self {
            _marker: PhantomData,
        }
    }
}

impl<T: Record + Ord + Send + Sync + 'static> Default for SortedMerge<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Record + Ord + Send + Sync + 'static> MergeLogic for SortedMerge<T> {
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        // Chunk arrival order within one partial need not be sorted (bags
        // are unordered), so collect per-partial, sort, then k-way merge
        // degenerates to a global sort-merge. Still streaming-friendly at
        // chunk granularity for the common single-chunk partials.
        let mut runs: Vec<Vec<T>> = Vec::with_capacity(partials.len());
        for p in partials.iter_mut() {
            let mut run = Vec::new();
            while let Some(chunk) = p.next_chunk()? {
                run.extend(decode_all::<T>(&chunk)?);
            }
            run.sort();
            runs.push(run);
        }
        let mut cursors = vec![0usize; runs.len()];
        loop {
            let mut best: Option<usize> = None;
            for (i, run) in runs.iter().enumerate() {
                if cursors[i] < run.len() {
                    best = match best {
                        None => Some(i),
                        Some(b) if run[cursors[i]] < runs[b][cursors[b]] => Some(i),
                        keep => keep,
                    };
                }
            }
            match best {
                None => break,
                Some(i) => {
                    out.write_record(&runs[i][cursors[i]])?;
                    cursors[i] += 1;
                }
            }
        }
        out.flush()?;
        Ok(())
    }
}

/// Set-union merge: deduplicates records across partials (distinct
/// values / duplicate removal, one of the paper's non commutative-
/// associative examples).
pub struct SetUnionMerge<T> {
    _marker: PhantomData<fn(&T)>,
}

impl<T: Record + Ord + Send + Sync + 'static> SetUnionMerge<T> {
    /// Creates a set-union merge.
    pub fn new() -> Self {
        Self {
            _marker: PhantomData,
        }
    }
}

impl<T: Record + Ord + Send + Sync + 'static> Default for SetUnionMerge<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Record + Ord + Send + Sync + 'static> MergeLogic for SetUnionMerge<T> {
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        let mut set = std::collections::BTreeSet::new();
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                for rec in decode_all::<T>(&chunk)? {
                    set.insert(rec);
                }
            }
        }
        for rec in set {
            out.write_record(&rec)?;
        }
        out.flush()?;
        Ok(())
    }
}

/// Top-K merge: keeps the `k` largest records across all partials, emitted
/// in descending order.
pub struct TopKMerge<T> {
    k: usize,
    _marker: PhantomData<fn(&T)>,
}

impl<T: Record + Ord + Send + Sync + 'static> TopKMerge<T> {
    /// Creates a top-`k` merge.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            _marker: PhantomData,
        }
    }
}

impl<T: Record + Ord + Send + Sync + 'static> MergeLogic for TopKMerge<T> {
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        let mut heap = std::collections::BinaryHeap::new(); // Min-heap via Reverse.
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                for rec in decode_all::<T>(&chunk)? {
                    heap.push(std::cmp::Reverse(rec));
                    if heap.len() > self.k {
                        heap.pop();
                    }
                }
            }
        }
        let mut top: Vec<T> = heap.into_iter().map(|r| r.0).collect();
        top.sort_by(|a, b| b.cmp(a));
        for rec in top {
            out.write_record(&rec)?;
        }
        out.flush()?;
        Ok(())
    }
}

/// Median merge: collects all records and emits the median — the paper's
/// canonical example of an operation that shuffle-based combining cannot
/// express but whole-partial merging can.
pub struct MedianMerge<T> {
    _marker: PhantomData<fn(&T)>,
}

impl<T: Record + Ord + Send + Sync + 'static> MedianMerge<T> {
    /// Creates a median merge.
    pub fn new() -> Self {
        Self {
            _marker: PhantomData,
        }
    }
}

impl<T: Record + Ord + Send + Sync + 'static> Default for MedianMerge<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Record + Ord + Send + Sync + 'static> MergeLogic for MedianMerge<T> {
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        let mut all = Vec::new();
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                all.extend(decode_all::<T>(&chunk)?);
            }
        }
        if all.is_empty() {
            return Ok(());
        }
        let mid = (all.len() - 1) / 2;
        all.sort();
        out.write_record(&all[mid])?;
        out.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_storage::{ClusterConfig, StorageCluster};
    use std::sync::Arc;

    /// Builds `n` partial bags, fills each with `fill(i)`, seals them, and
    /// runs `merge` into a fresh output bag; returns the decoded output.
    fn run_merge<T, M>(n: usize, fill: impl Fn(usize) -> Vec<T>, merge: M) -> Vec<T>
    where
        T: Record + Clone + std::fmt::Debug,
        M: MergeLogic,
    {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let mut readers = Vec::new();
        for i in 0..n {
            let bag = cluster.create_bag();
            let mut w = BagWriter::open(cluster.clone(), bag, i as u64, 128);
            for rec in fill(i) {
                w.write_record(&rec).unwrap();
            }
            w.flush().unwrap();
            cluster.seal_bag(bag).unwrap();
            readers.push(BagReader::open(
                cluster.clone(),
                bag,
                1000 + i as u64,
                4,
                None,
            ));
        }
        let out_bag = cluster.create_bag();
        let mut out = BagWriter::open(cluster.clone(), out_bag, 77, 128);
        merge.merge(0, &mut readers, &mut out).unwrap();
        out.flush().unwrap();
        cluster.seal_bag(out_bag).unwrap();
        read_bag(&cluster, out_bag)
    }

    fn read_bag<T: Record>(cluster: &Arc<StorageCluster>, bag: hurricane_common::BagId) -> Vec<T> {
        let mut out = Vec::new();
        for c in cluster.snapshot_bag(bag).unwrap() {
            out.extend(decode_all::<T>(&c).unwrap());
        }
        out
    }

    #[test]
    fn concat_preserves_multiset() {
        let mut got: Vec<u64> =
            run_merge(3, |i| vec![i as u64 * 10, i as u64 * 10 + 1], ConcatMerge);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 10, 11, 20, 21]);
    }

    #[test]
    fn reduce_sums_counts() {
        // Paper Phase 3 merge: output.insert(partial1 + partial2).
        let got: Vec<u64> = run_merge(
            4,
            |i| vec![(i as u64 + 1) * 100],
            ReduceMerge::new(|a: u64, b: u64| a + b),
        );
        assert_eq!(got, vec![1000]);
    }

    #[test]
    fn reduce_ors_bitsets() {
        // Paper Phase 2 merge: output.insert(partial1 | partial2), with a
        // bitset encoded as Vec<u64> words of possibly different lengths.
        let or = |a: Vec<u64>, b: Vec<u64>| -> Vec<u64> {
            let (mut long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
            for (i, w) in short.into_iter().enumerate() {
                long[i] |= w;
            }
            long
        };
        let got: Vec<Vec<u64>> = run_merge(
            3,
            |i| vec![vec![1u64 << i, if i == 2 { 0b100 } else { 0 }]],
            ReduceMerge::new(or),
        );
        assert_eq!(got, vec![vec![0b111, 0b100]]);
    }

    #[test]
    fn reduce_single_partial_is_identity() {
        let got: Vec<u64> = run_merge(1, |_| vec![42], ReduceMerge::new(|a: u64, b: u64| a + b));
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn reduce_empty_partials_is_empty() {
        let got: Vec<u64> = run_merge(3, |_| vec![], ReduceMerge::new(|a: u64, b: u64| a + b));
        assert!(got.is_empty());
    }

    #[test]
    fn keyed_merge_combines_per_key() {
        let got: Vec<(String, u64)> = run_merge(
            2,
            |i| vec![("usa".to_string(), 10 + i as u64), (format!("only{i}"), 1)],
            KeyedMerge::<String, u64, _>::new(|a, b| a + b),
        );
        let usa = got.iter().find(|(k, _)| k == "usa").unwrap();
        assert_eq!(usa.1, 21);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn sorted_merge_orders_globally() {
        let got: Vec<u64> = run_merge(
            3,
            |i| (0..10).map(|j| (j * 3 + i) as u64).collect(),
            SortedMerge::<u64>::new(),
        );
        assert_eq!(got.len(), 30);
        assert!(
            got.windows(2).all(|w| w[0] <= w[1]),
            "output must be sorted"
        );
    }

    #[test]
    fn sorted_merge_handles_unsorted_partials() {
        let got: Vec<u64> = run_merge(2, |i| vec![9 - i as u64, 3, 7], SortedMerge::<u64>::new());
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn set_union_dedups() {
        let got: Vec<u64> = run_merge(3, |i| vec![1, 2, 2 + i as u64], SetUnionMerge::<u64>::new());
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn topk_keeps_largest() {
        let got: Vec<u64> = run_merge(
            2,
            |i| (0..20).map(|j| j + i as u64 * 100).collect(),
            TopKMerge::<u64>::new(3),
        );
        assert_eq!(got, vec![119, 118, 117]);
    }

    #[test]
    fn median_of_all_partials() {
        let got: Vec<u64> = run_merge(
            2,
            |i| if i == 0 { vec![1, 9, 5] } else { vec![3, 7] },
            MedianMerge::<u64>::new(),
        );
        assert_eq!(got, vec![5]);
    }

    #[test]
    fn median_of_empty_is_empty() {
        let got: Vec<u64> = run_merge(2, |_| vec![], MedianMerge::<u64>::new());
        assert!(got.is_empty());
    }
}
