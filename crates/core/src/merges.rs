//! A library of typical merge operations (paper §2.3).
//!
//! "For convenience, Hurricane provides a library of typical merge
//! operations." The merge paradigm is more general than shuffle-and-sort:
//! records for the same key may be processed on multiple nodes
//! simultaneously and reconciled here, and non commutative-associative
//! outputs (unique counts, medians, sorted output) are supported because
//! the merge sees whole partial outputs, not per-key streams.
//!
//! All merges in this module uphold the contract that merging the partial
//! outputs of `n` clones produces output equal (as a multiset of records,
//! or exactly where ordering is the point, as in [`SortedMerge`]) to what
//! a single uncloned task would have produced.
//!
//! # The three merge cost classes
//!
//! The merge plane is the convergence point of the paper's skew story:
//! every record a cloned task emits flows through here, so merges are
//! tiered by how much of the record they ever materialize:
//!
//! * **Forward chunks verbatim** — [`ConcatMerge`] moves whole chunks
//!   from partials to the output as refcount bumps: no decode, no
//!   re-encode, no byte copy. This is also why chunk *splatting*
//!   (`TaskCtx::splat_chunk`) composes with the default merge for free —
//!   a splatted chunk forwarded by `ConcatMerge` is never re-encoded
//!   anywhere on its path from producer to final bag.
//! * **Fold borrowed views, own only accumulators** — [`ReduceMerge`]
//!   and [`KeyedMerge`] stream every record as a [`RecordView`] borrowed
//!   straight from the chunk bytes and fold it into accumulators in
//!   place. Only the *surviving* state is owned: one accumulator for a
//!   reduce, one `(encoded key, accumulator)` table entry per distinct
//!   key for a keyed merge. The records themselves — including string
//!   payloads and nested sequences — are never copied out of the chunk.
//! * **Own the records** — [`SortedMerge`], [`SetUnionMerge`],
//!   [`TopKMerge`] and [`MedianMerge`] must compare records that outlive
//!   their chunks, so they convert each view to an owned record into a
//!   scratch buffer that is *reused across merge calls* (per logic
//!   instance; concurrent merges fall back to a fresh buffer), keeping
//!   steady-state allocation amortized to zero.
//!
//! Results re-encode through the single-pass writer path
//! (`BagWriter::write_record` serializes straight into the chunk
//! buffer).
//!
//! # Execution model: parallel outputs
//!
//! Whatever the cost class, one merge phase's *outputs* are independent:
//! output `j` folds only the partials targeted at `j`, into a writer no
//! other output touches. The runtime exploits this via [`merge_outputs`]
//! — a scoped worker pool (bounded by the `merge_parallelism` config
//! knob) through which the manager dispatches output indices. Merge
//! implementations therefore must tolerate concurrent `merge` calls on
//! one logic instance — which the `Send + Sync` bound on [`MergeLogic`]
//! already demands, and the sort-family scratch reuse honors with its
//! try-lock-or-fresh-buffer fallback.
//!
//! # Bounded merges: the spill contract
//!
//! [`KeyedMerge`]'s accumulator table grows with key cardinality, so a
//! skewed-enough group-by could exceed any fixed memory. Its
//! [`MergeLogic::merge_bounded`] override survives *any* cardinality
//! under a configured budget (`merge_memory_budget`) by external
//! aggregation:
//!
//! * **Partial-record format.** When the table's estimated residency
//!   crosses the budget (checked at chunk boundaries, so residency
//!   overshoots by at most one chunk's new entries), the whole table
//!   drains into a scratch *run*: `(key, partial-accumulator)` records in
//!   the canonical codec — the exact encoding the final output uses — in
//!   ascending key order. Runs land in scratch bags pinned to one storage
//!   node so their chunks read back in insertion (i.e. key) order.
//! * **Round invariants.** After the inputs drain, the surviving table
//!   spills as the final run. While more than `RUN_FANIN` runs exist, the
//!   oldest `RUN_FANIN` are k-way merged — equal keys folded oldest-run
//!   first — into one new run that re-enters the queue at the *front*,
//!   keeping the queue ordered oldest-to-newest. Each round therefore
//!   holds only `RUN_FANIN` cursors plus one accumulator in memory, and
//!   the run count strictly decreases: termination at any cardinality.
//!   The last ≤ `RUN_FANIN` runs merge directly into the output writer.
//! * **Determinism / byte-identity.** Within a run, each key's partial
//!   folded its values in arrival order; across runs, partials fold
//!   oldest-run first — so for an *associative* fold (which the merge
//!   contract already requires for clone reconciliation to be
//!   order-insensitive) every key's final accumulator equals the
//!   unbounded table's. Both paths then emit the same `(key, value)`
//!   records in the same ascending key order through the same
//!   [`BagWriter`] chunking, so the output chunk stream is byte-identical
//!   at any budget — pinned by the `spilled_merge_agrees_with_in_memory`
//!   property test.

use crate::error::EngineError;
use crate::task::{BagReader, BagWriter, MergeLogic, SpillSink, SpillStats};
use hurricane_common::BagId;
use hurricane_format::{Chunk, ChunkReader, RecordView};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::marker::PhantomData;

/// Fan-in of one spill-merge round: how many scratch runs a bounded
/// [`KeyedMerge`] re-folds at a time. Bounds a round's memory at this
/// many run cursors (one chunk each) plus one accumulator.
const RUN_FANIN: usize = 8;

/// Estimated table overhead per distinct key beyond the key bytes and
/// accumulator value: hash-table slot, `Box<[u8]>` header, `Option`
/// discriminant. The budget arithmetic is an estimate — accumulators
/// with heap payloads (e.g. `Vec` values) count only their inline size.
const ENTRY_OVERHEAD: u64 = 64;

/// The default merge: concatenates all partial chunks into the output.
///
/// Correct whenever record order and grouping do not matter — map-style
/// tasks, filters, selects (paper §2.3). Chunks forward verbatim (an
/// `Arc` bump each): this merge never decodes or re-encodes a byte, so
/// chunks fanned out by splatting stay shared all the way down.
pub struct ConcatMerge;

impl MergeLogic for ConcatMerge {
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                out.emit_chunk(chunk)?;
            }
        }
        Ok(())
    }
}

/// How a merge folds record views into an owned accumulator.
///
/// The accumulator is `Option<T>` so the fold owns initialization too:
/// `None` means no record has been folded yet. Implementations must be
/// *initialization-neutral* — folding a single record into `None` yields
/// exactly that record — so that merging one uncloned partial is the
/// identity.
///
/// Obtained via [`ReduceMerge::new`]/[`KeyedMerge::new`] (owned binary
/// combiner, converts each view to an owned record first) or
/// [`ReduceMerge::folding`]/[`KeyedMerge::folding`] (in-place borrowed
/// fold — the allocation-free path for accumulators with heap fields).
pub trait ViewFold<T: RecordView>: Send + Sync + 'static {
    /// Folds one record view into the accumulator.
    fn fold(&self, acc: &mut Option<T>, view: T::View<'_>);
}

/// [`ViewFold`] adapter over an owned binary combiner `Fn(T, T) -> T`.
///
/// Every record is converted to an owned value before combining — free
/// for `Copy` records, one conversion per record for heap-backed ones.
/// Prefer the `folding` constructors when the accumulator can absorb
/// views in place.
pub struct OwnedCombine<C>(C);

impl<T, C> ViewFold<T> for OwnedCombine<C>
where
    T: RecordView + Send + Sync + 'static,
    C: Fn(T, T) -> T + Send + Sync + 'static,
{
    fn fold(&self, acc: &mut Option<T>, view: T::View<'_>) {
        let owned = T::view_to_owned(view);
        *acc = Some(match acc.take() {
            None => owned,
            Some(a) => (self.0)(a, owned),
        });
    }
}

/// [`ViewFold`] adapter over an in-place borrowed fold
/// `Fn(&mut T, T::View<'_>)`.
///
/// The first record initializes the accumulator (via
/// [`RecordView::view_to_owned`]); every further record is handed to the
/// closure as a borrowed view, so nothing else is ever copied out of the
/// chunk.
pub struct InPlaceFold<C>(C);

impl<T, C> ViewFold<T> for InPlaceFold<C>
where
    T: RecordView + Send + Sync + 'static,
    C: for<'a> Fn(&mut T, T::View<'a>) + Send + Sync + 'static,
{
    fn fold(&self, acc: &mut Option<T>, view: T::View<'_>) {
        match acc {
            Some(a) => (self.0)(a, view),
            None => *acc = Some(T::view_to_owned(view)),
        }
    }
}

/// Reduces *all* records across all partials into a single record — the
/// shape of the paper's Phase 2 (`partial1 | partial2`) and Phase 3
/// (`partial1 + partial2`) merges.
///
/// Records stream through as borrowed views; only the single surviving
/// accumulator is owned.
pub struct ReduceMerge<T, F> {
    fold: F,
    _marker: PhantomData<fn(&T)>,
}

impl<T, C> ReduceMerge<T, OwnedCombine<C>>
where
    T: RecordView + Send + Sync + 'static,
    C: Fn(T, T) -> T + Send + Sync + 'static,
{
    /// Creates a reduce merge with owned binary combiner `combine`.
    pub fn new(combine: C) -> Self {
        Self {
            fold: OwnedCombine(combine),
            _marker: PhantomData,
        }
    }
}

impl<T, C> ReduceMerge<T, InPlaceFold<C>>
where
    T: RecordView + Send + Sync + 'static,
    C: for<'a> Fn(&mut T, T::View<'a>) + Send + Sync + 'static,
{
    /// Creates a reduce merge that folds borrowed views into the
    /// accumulator in place — no per-record owned conversion. The first
    /// record initializes the accumulator.
    pub fn folding(fold: C) -> Self {
        Self {
            fold: InPlaceFold(fold),
            _marker: PhantomData,
        }
    }
}

impl<T, F> MergeLogic for ReduceMerge<T, F>
where
    T: RecordView + Send + Sync + 'static,
    F: ViewFold<T>,
{
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        let mut acc: Option<T> = None;
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                ChunkReader::<T>::new(&chunk).for_each(|v| self.fold.fold(&mut acc, v))?;
            }
        }
        if let Some(a) = acc {
            out.write_record(&a)?;
            out.flush()?;
        }
        Ok(())
    }
}

/// FxHash-style byte hasher for the keyed-merge table. Keys are short
/// encoded records hashed on every record of every partial; SipHash's
/// per-call setup would dominate at that grain.
#[derive(Default)]
struct FxBytesHasher(u64);

impl Hasher for FxBytesHasher {
    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x517c_c1b7_2722_0a95;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes"));
            self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Disambiguate short tails by length (rem.len() < 8, so byte
            // 7 is never a data byte).
            tail[7] = rem.len() as u8;
            let v = u64::from_le_bytes(tail);
            self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Merges keyed records by combining values of equal keys — the merge
/// combiner shape (group-by aggregation) generalized to clone partials.
///
/// The hot loop never materializes a record: each `(key, value)` pair is
/// decoded as borrowed views, the key's *encoded bytes* (which are equal
/// iff the keys are equal — the codec is canonical) index a hash table,
/// and the value view folds into that key's accumulator in place. Only
/// the surviving entries own memory: one boxed key-byte string plus one
/// accumulator per distinct key. Keys are decoded once at emit time and
/// the output is written in key order, so results are deterministic.
pub struct KeyedMerge<K, V, F> {
    fold: F,
    _marker: PhantomData<fn(&K, &V)>,
}

impl<K, V, C> KeyedMerge<K, V, OwnedCombine<C>>
where
    K: RecordView + Ord + Send + Sync + 'static,
    V: RecordView + Send + Sync + 'static,
    C: Fn(V, V) -> V + Send + Sync + 'static,
{
    /// Creates a keyed merge with owned per-key value combiner `combine`.
    pub fn new(combine: C) -> Self {
        Self {
            fold: OwnedCombine(combine),
            _marker: PhantomData,
        }
    }
}

impl<K, V, C> KeyedMerge<K, V, InPlaceFold<C>>
where
    K: RecordView + Ord + Send + Sync + 'static,
    V: RecordView + Send + Sync + 'static,
    C: for<'a> Fn(&mut V, V::View<'a>) + Send + Sync + 'static,
{
    /// Creates a keyed merge whose values fold into the per-key
    /// accumulator as borrowed views, in place. The first value of each
    /// key initializes its accumulator.
    pub fn folding(fold: C) -> Self {
        Self {
            fold: InPlaceFold(fold),
            _marker: PhantomData,
        }
    }
}

/// The keyed-merge accumulator table: encoded key bytes → accumulator.
type KeyTable<V> = HashMap<Box<[u8]>, Option<V>, BuildHasherDefault<FxBytesHasher>>;

/// A read cursor over one sorted scratch run: walks `(key, value)`
/// records across the run's chunks, exposing the current decoded key
/// (for the k-way minimum) and the current value's byte range (folded
/// lazily as a borrowed view, never owned).
struct RunCursor<K> {
    reader: BagReader,
    chunk: Option<Chunk>,
    pos: usize,
    /// Decoded key of the current record; `None` once the run drains.
    key: Option<K>,
    val_range: (usize, usize),
}

impl<K: RecordView + Ord> RunCursor<K> {
    fn new(reader: BagReader) -> Self {
        Self {
            reader,
            chunk: None,
            pos: 0,
            key: None,
            val_range: (0, 0),
        }
    }

    /// Parses the next record, fetching the next chunk when the current
    /// one is spent; `key` becomes `None` at end of run.
    fn advance<V: RecordView>(&mut self) -> Result<(), EngineError> {
        loop {
            if let Some(chunk) = &self.chunk {
                let bytes = chunk.bytes();
                if self.pos < bytes.len() {
                    let mut rest = &bytes[self.pos..];
                    let key = K::decode(&mut rest).map_err(EngineError::Codec)?;
                    let val_start = bytes.len() - rest.len();
                    V::decode_view(&mut rest).map_err(EngineError::Codec)?;
                    let val_end = bytes.len() - rest.len();
                    self.key = Some(key);
                    self.val_range = (val_start, val_end);
                    self.pos = val_end;
                    return Ok(());
                }
            }
            match self.reader.next_chunk()? {
                Some(c) => {
                    self.chunk = Some(c);
                    self.pos = 0;
                }
                None => {
                    self.key = None;
                    self.chunk = None;
                    return Ok(());
                }
            }
        }
    }

    /// Folds the current record's value view into `acc`.
    fn fold_value<V: RecordView, F: ViewFold<V>>(
        &self,
        fold: &F,
        acc: &mut Option<V>,
    ) -> Result<(), EngineError> {
        let chunk = self.chunk.as_ref().expect("cursor is at a live record");
        let mut v = &chunk.bytes()[self.val_range.0..self.val_range.1];
        let view = V::decode_view(&mut v).map_err(EngineError::Codec)?;
        fold.fold(acc, view);
        Ok(())
    }
}

impl<K, V, F> KeyedMerge<K, V, F>
where
    K: RecordView + Ord + Send + Sync + 'static,
    V: RecordView + Send + Sync + 'static,
    F: ViewFold<V>,
{
    /// Folds one chunk of `(key, value)` records into the table.
    ///
    /// Keyed by the key's encoded bytes rather than the decoded key:
    /// equal keys encode identically (and vice versa), so no owned
    /// key — and no Hash bridge between K and its view — is needed on
    /// the per-record path. The manual span walk (instead of a
    /// ChunkReader driver) is what exposes each key's byte range.
    fn fold_chunk(
        &self,
        chunk: &Chunk,
        table: &mut KeyTable<V>,
        table_bytes: &mut u64,
    ) -> Result<(), EngineError> {
        let mut rest = chunk.bytes();
        while !rest.is_empty() {
            let record_start = rest;
            K::decode_view(&mut rest).map_err(EngineError::Codec)?;
            let key_bytes = &record_start[..record_start.len() - rest.len()];
            let value = V::decode_view(&mut rest).map_err(EngineError::Codec)?;
            match table.get_mut(key_bytes) {
                Some(slot) => self.fold.fold(slot, value),
                None => {
                    let mut slot = None;
                    self.fold.fold(&mut slot, value);
                    *table_bytes +=
                        key_bytes.len() as u64 + std::mem::size_of::<V>() as u64 + ENTRY_OVERHEAD;
                    table.insert(key_bytes.into(), slot);
                }
            }
        }
        Ok(())
    }

    /// Drains the table into `(key, value)` entries sorted by key.
    fn drain_sorted(table: &mut KeyTable<V>) -> Vec<(K, V)> {
        let mut entries: Vec<(K, V)> = Vec::with_capacity(table.len());
        for (key_bytes, slot) in table.drain() {
            let mut kb = &key_bytes[..];
            let key = K::decode(&mut kb).expect("key bytes were validated on ingest");
            entries.push((key, slot.expect("every table slot is filled on insert")));
        }
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Writes the table to `out` in ascending key order — the terminal
    /// emit both the bounded and unbounded paths share.
    fn emit_table(mut table: KeyTable<V>, out: &mut BagWriter) -> Result<(), EngineError> {
        for rec in &Self::drain_sorted(&mut table) {
            out.write_record(rec)?;
        }
        out.flush()?;
        Ok(())
    }

    /// Drains the table into a fresh sorted scratch run; returns its bag.
    fn spill_table(
        &self,
        table: &mut KeyTable<V>,
        table_bytes: &mut u64,
        sink: &mut dyn SpillSink,
        stats: &mut SpillStats,
    ) -> Result<BagId, EngineError> {
        let entries = Self::drain_sorted(table);
        let mut w = sink.create_run()?;
        for rec in &entries {
            w.write_record(rec)?;
        }
        w.flush()?;
        stats.spilled_records += entries.len() as u64;
        stats.runs += 1;
        *table_bytes = 0;
        Ok(w.bag_id())
    }

    /// K-way merges sorted `runs` into `out`, folding equal keys in run
    /// (i.e. oldest-first) order.
    fn merge_runs(
        &self,
        runs: &[BagId],
        sink: &mut dyn SpillSink,
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        let mut cursors = Vec::with_capacity(runs.len());
        for &bag in runs {
            let mut c = RunCursor::<K>::new(sink.open_run(bag)?);
            c.advance::<V>()?;
            cursors.push(c);
        }
        loop {
            let mut min: Option<usize> = None;
            for (i, c) in cursors.iter().enumerate() {
                if let Some(k) = &c.key {
                    if min.is_none_or(|m| k < cursors[m].key.as_ref().expect("min key is live")) {
                        min = Some(i);
                    }
                }
            }
            let Some(m) = min else { break };
            // Keys are unique within a run, so ties span distinct runs;
            // cursor index order is run age order.
            let ties: Vec<usize> = cursors
                .iter()
                .enumerate()
                .filter(|(_, c)| c.key == cursors[m].key)
                .map(|(i, _)| i)
                .collect();
            let mut acc: Option<V> = None;
            for &i in &ties {
                cursors[i].fold_value(&self.fold, &mut acc)?;
            }
            let key = cursors[m].key.take().expect("min key is live");
            for &i in &ties {
                cursors[i].advance::<V>()?;
            }
            out.write_record(&(key, acc.expect("at least one value folded")))?;
        }
        Ok(())
    }
}

impl<K, V, F> MergeLogic for KeyedMerge<K, V, F>
where
    K: RecordView + Ord + Send + Sync + 'static,
    V: RecordView + Send + Sync + 'static,
    F: ViewFold<V>,
{
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        let mut table: KeyTable<V> = HashMap::default();
        let mut table_bytes = 0u64;
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                self.fold_chunk(&chunk, &mut table, &mut table_bytes)?;
            }
        }
        Self::emit_table(table, out)
    }

    /// External aggregation under a memory budget — see the module doc's
    /// spill contract for the format, round invariants, and determinism
    /// argument.
    fn merge_bounded(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
        budget: u64,
        sink: &mut dyn SpillSink,
    ) -> Result<SpillStats, EngineError> {
        let mut stats = SpillStats::default();
        let mut table: KeyTable<V> = HashMap::default();
        let mut table_bytes = 0u64;
        let mut runs: VecDeque<BagId> = VecDeque::new();
        for p in partials.iter_mut() {
            while let Some(chunk) = p.next_chunk()? {
                self.fold_chunk(&chunk, &mut table, &mut table_bytes)?;
                // Budget check at chunk boundaries: residency overshoots
                // by at most the entries one chunk introduced.
                if table_bytes > budget && !table.is_empty() {
                    runs.push_back(self.spill_table(
                        &mut table,
                        &mut table_bytes,
                        sink,
                        &mut stats,
                    )?);
                }
            }
        }
        if runs.is_empty() {
            // Nothing spilled: exactly the unbounded emit.
            Self::emit_table(table, out)?;
            return Ok(stats);
        }
        if !table.is_empty() {
            runs.push_back(self.spill_table(&mut table, &mut table_bytes, sink, &mut stats)?);
        }
        // Hierarchical re-fold: merge the RUN_FANIN *oldest* runs into
        // one that re-enters at the front, keeping the queue (and thus
        // per-key fold order) oldest-first. Run count strictly
        // decreases, so this terminates at any cardinality while
        // holding only RUN_FANIN cursors in memory.
        while runs.len() > RUN_FANIN {
            let batch: Vec<BagId> = runs.drain(..RUN_FANIN).collect();
            let mut w = sink.create_run()?;
            self.merge_runs(&batch, sink, &mut w)?;
            w.flush()?;
            let merged = w.bag_id();
            for bag in batch {
                sink.release_run(bag)?;
            }
            runs.push_front(merged);
            stats.runs += 1;
            stats.rounds += 1;
        }
        let batch: Vec<BagId> = runs.into();
        self.merge_runs(&batch, sink, out)?;
        for bag in batch {
            sink.release_run(bag)?;
        }
        stats.rounds += 1;
        out.flush()?;
        Ok(stats)
    }
}

/// A reusable owned-record buffer shared across `merge` calls.
///
/// `MergeLogic::merge` takes `&self`, and the same logic instance may
/// merge several outputs (possibly concurrently). The scratch hands out
/// its buffer under a `try_lock`: the steady-state sequential case reuses
/// one allocation forever; a concurrent merge simply takes a fresh
/// buffer instead of blocking.
struct Scratch<T>(Mutex<Vec<T>>);

impl<T> Scratch<T> {
    fn new() -> Self {
        Self(Mutex::new(Vec::new()))
    }

    fn with<R>(&self, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        match self.0.try_lock() {
            Some(mut buf) => {
                buf.clear();
                let r = f(&mut buf);
                // Drop the owned records now; keep the capacity.
                buf.clear();
                r
            }
            None => f(&mut Vec::new()),
        }
    }
}

/// Merge-sorts partials into a single key-ordered record stream — the
/// paper's example of a *non-aggregation* merge ("for instance through a
/// merge sort").
///
/// Note on ordering and bags: records are *written* to the output in
/// sorted order, and each chunk is internally sorted, but bags spread
/// chunks across storage nodes and are unordered collections (paper
/// §4.1). A consumer that needs the global order either reads the bag
/// from a single storage node (FIFO per node) or k-way-merges the sorted
/// chunks it removes — both cheap because every chunk is already sorted.
pub struct SortedMerge<T> {
    scratch: Scratch<T>,
}

impl<T: RecordView + Ord + Send + Sync + 'static> SortedMerge<T> {
    /// Creates a sorted merge.
    pub fn new() -> Self {
        Self {
            scratch: Scratch::new(),
        }
    }
}

impl<T: RecordView + Ord + Send + Sync + 'static> Default for SortedMerge<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: RecordView + Ord + Send + Sync + 'static> MergeLogic for SortedMerge<T> {
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        // Sorting needs records that outlive their chunks, so this is an
        // owning merge: views convert into the reused scratch buffer and
        // one unstable sort replaces the per-partial sort + k-way merge
        // (same output, no per-output-record O(partials) scan).
        self.scratch.with(|all| {
            for p in partials.iter_mut() {
                while let Some(chunk) = p.next_chunk()? {
                    ChunkReader::<T>::new(&chunk).for_each(|v| all.push(T::view_to_owned(v)))?;
                }
            }
            all.sort_unstable();
            for rec in all.iter() {
                out.write_record(rec)?;
            }
            out.flush()?;
            Ok(())
        })
    }
}

/// Set-union merge: deduplicates records across partials (distinct
/// values / duplicate removal, one of the paper's non commutative-
/// associative examples). Output is emitted in ascending order.
pub struct SetUnionMerge<T> {
    scratch: Scratch<T>,
}

impl<T: RecordView + Ord + Send + Sync + 'static> SetUnionMerge<T> {
    /// Creates a set-union merge.
    pub fn new() -> Self {
        Self {
            scratch: Scratch::new(),
        }
    }
}

impl<T: RecordView + Ord + Send + Sync + 'static> Default for SetUnionMerge<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: RecordView + Ord + Send + Sync + 'static> MergeLogic for SetUnionMerge<T> {
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        // sort + dedup over the reused scratch replaces the old BTreeSet
        // (a node allocation per distinct record) while producing the
        // same ascending output.
        self.scratch.with(|all| {
            for p in partials.iter_mut() {
                while let Some(chunk) = p.next_chunk()? {
                    ChunkReader::<T>::new(&chunk).for_each(|v| all.push(T::view_to_owned(v)))?;
                }
            }
            all.sort_unstable();
            all.dedup();
            for rec in all.iter() {
                out.write_record(rec)?;
            }
            out.flush()?;
            Ok(())
        })
    }
}

/// Top-K merge: keeps the `k` largest records across all partials, emitted
/// in descending order.
pub struct TopKMerge<T> {
    k: usize,
    scratch: Scratch<Reverse<T>>,
}

impl<T: RecordView + Ord + Send + Sync + 'static> TopKMerge<T> {
    /// Creates a top-`k` merge.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            scratch: Scratch::new(),
        }
    }
}

impl<T: RecordView + Ord + Send + Sync + 'static> MergeLogic for TopKMerge<T> {
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        // A min-heap of at most k owned records (via Reverse); records
        // that cannot displace the current minimum are dropped without
        // entering the heap. The heap's backing vec is the reused
        // scratch.
        self.scratch.with(|vec| {
            let mut heap = BinaryHeap::from(std::mem::take(vec));
            for p in partials.iter_mut() {
                while let Some(chunk) = p.next_chunk()? {
                    ChunkReader::<T>::new(&chunk).for_each(|v| {
                        let rec = T::view_to_owned(v);
                        if heap.len() < self.k {
                            heap.push(Reverse(rec));
                        } else if let Some(min) = heap.peek() {
                            if rec > min.0 {
                                heap.pop();
                                heap.push(Reverse(rec));
                            }
                        }
                    })?;
                }
            }
            let mut top = heap.into_vec();
            // Ascending Reverse<T> is descending T.
            top.sort_unstable();
            for rec in top.iter() {
                out.write_record(&rec.0)?;
            }
            out.flush()?;
            *vec = top;
            Ok(())
        })
    }
}

/// Median merge: collects all records and emits the median — the paper's
/// canonical example of an operation that shuffle-based combining cannot
/// express but whole-partial merging can.
pub struct MedianMerge<T> {
    scratch: Scratch<T>,
}

impl<T: RecordView + Ord + Send + Sync + 'static> MedianMerge<T> {
    /// Creates a median merge.
    pub fn new() -> Self {
        Self {
            scratch: Scratch::new(),
        }
    }
}

impl<T: RecordView + Ord + Send + Sync + 'static> Default for MedianMerge<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: RecordView + Ord + Send + Sync + 'static> MergeLogic for MedianMerge<T> {
    fn merge(
        &self,
        _output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        self.scratch.with(|all| {
            for p in partials.iter_mut() {
                while let Some(chunk) = p.next_chunk()? {
                    ChunkReader::<T>::new(&chunk).for_each(|v| all.push(T::view_to_owned(v)))?;
                }
            }
            if all.is_empty() {
                return Ok(());
            }
            let mid = (all.len() - 1) / 2;
            // Selection, not a full sort: O(n) expected.
            let (_, median, _) = all.select_nth_unstable(mid);
            out.write_record(&*median)?;
            out.flush()?;
            Ok(())
        })
    }
}

/// Runs one merge phase's output jobs, dispatching independent output
/// indices across up to `parallelism` scoped worker threads.
///
/// Each job is `(output_index, partial readers, output writer)`; outputs
/// of one merge never share a reader or writer, so they are embarrassingly
/// parallel — the only shared state is the [`MergeLogic`] instance itself
/// (`Send + Sync` by trait bound; the sort-family scratch buffers
/// try-lock and fall back to a fresh buffer under contention). Workers
/// claim jobs from a shared queue, so a skewed output (one hot key range)
/// does not stall the rest. With `parallelism <= 1` or a single job the
/// jobs run inline on the calling thread — byte-for-byte today's
/// sequential behavior.
///
/// On failure the first error wins: remaining queued jobs are abandoned,
/// in-flight ones run to completion, and that error is returned.
pub fn merge_outputs(
    merge: &dyn MergeLogic,
    parallelism: usize,
    jobs: Vec<(usize, Vec<BagReader>, BagWriter)>,
) -> Result<(), EngineError> {
    drive_jobs(
        parallelism,
        jobs,
        |(out_idx, mut partials, mut out): (usize, Vec<BagReader>, BagWriter)| {
            merge.merge(out_idx, &mut partials, &mut out)?;
            out.flush()
        },
    )
}

/// [`merge_outputs`] under a memory budget: each output runs
/// [`MergeLogic::merge_bounded`] with its own [`SpillSink`] (minted by
/// `make_sink`, so concurrent outputs never share run state). Returns the
/// merged spill counters across all outputs.
pub fn merge_outputs_bounded(
    merge: &dyn MergeLogic,
    parallelism: usize,
    jobs: Vec<(usize, Vec<BagReader>, BagWriter)>,
    budget: u64,
    make_sink: &(dyn Fn() -> Box<dyn SpillSink> + Sync),
) -> Result<SpillStats, EngineError> {
    let stats = Mutex::new(SpillStats::default());
    drive_jobs(
        parallelism,
        jobs,
        |(out_idx, mut partials, mut out): (usize, Vec<BagReader>, BagWriter)| {
            let mut sink = make_sink();
            let s = merge.merge_bounded(out_idx, &mut partials, &mut out, budget, sink.as_mut())?;
            out.flush()?;
            stats.lock().absorb(s);
            Ok(())
        },
    )?;
    Ok(stats.into_inner())
}

/// The shared job driver behind [`merge_outputs`] and
/// [`merge_outputs_bounded`]: dispatches jobs across up to `parallelism`
/// scoped workers (inline when `parallelism <= 1` or there is a single
/// job), with first-error-wins abandonment of the queue.
fn drive_jobs<J: Send>(
    parallelism: usize,
    jobs: Vec<J>,
    run: impl Fn(J) -> Result<(), EngineError> + Sync,
) -> Result<(), EngineError> {
    if parallelism <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().try_for_each(run);
    }
    let workers = parallelism.min(jobs.len());
    let queue = Mutex::new(jobs.into_iter());
    let failure: Mutex<Option<EngineError>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if failure.lock().is_some() {
                    return;
                }
                let Some(job) = queue.lock().next() else {
                    return;
                };
                if let Err(e) = run(job) {
                    failure.lock().get_or_insert(e);
                    return;
                }
            });
        }
    });
    failure.into_inner().map_or(Ok(()), Err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_format::{decode_all, FixedU64, Record, SeqView};
    use hurricane_storage::{ClusterConfig, StorageCluster};
    use std::sync::Arc;

    /// Builds `n` partial bags, fills each with `fill(i)`, seals them, and
    /// runs `merge` into a fresh output bag; returns the decoded output.
    fn run_merge<T, M>(n: usize, fill: impl Fn(usize) -> Vec<T>, merge: M) -> Vec<T>
    where
        T: Record + Clone + std::fmt::Debug,
        M: MergeLogic,
    {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let mut readers = Vec::new();
        for i in 0..n {
            let bag = cluster.create_bag();
            let mut w = BagWriter::open(cluster.clone(), bag, i as u64, 128);
            for rec in fill(i) {
                w.write_record(&rec).unwrap();
            }
            w.flush().unwrap();
            cluster.seal_bag(bag).unwrap();
            readers.push(BagReader::open(
                cluster.clone(),
                bag,
                1000 + i as u64,
                4,
                None,
            ));
        }
        let out_bag = cluster.create_bag();
        let mut out = BagWriter::open(cluster.clone(), out_bag, 77, 128);
        merge.merge(0, &mut readers, &mut out).unwrap();
        out.flush().unwrap();
        cluster.seal_bag(out_bag).unwrap();
        read_bag(&cluster, out_bag)
    }

    fn read_bag<T: Record>(cluster: &Arc<StorageCluster>, bag: hurricane_common::BagId) -> Vec<T> {
        let mut out = Vec::new();
        for c in cluster.snapshot_bag(bag).unwrap() {
            out.extend(decode_all::<T>(&c).unwrap());
        }
        out
    }

    #[test]
    fn concat_preserves_multiset() {
        let mut got: Vec<u64> =
            run_merge(3, |i| vec![i as u64 * 10, i as u64 * 10 + 1], ConcatMerge);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 10, 11, 20, 21]);
    }

    #[test]
    fn reduce_sums_counts() {
        // Paper Phase 3 merge: output.insert(partial1 + partial2).
        let got: Vec<u64> = run_merge(
            4,
            |i| vec![(i as u64 + 1) * 100],
            ReduceMerge::new(|a: u64, b: u64| a + b),
        );
        assert_eq!(got, vec![1000]);
    }

    #[test]
    fn reduce_ors_bitsets() {
        // Paper Phase 2 merge: output.insert(partial1 | partial2), with a
        // bitset encoded as Vec<u64> words of possibly different lengths.
        let or = |a: Vec<u64>, b: Vec<u64>| -> Vec<u64> {
            let (mut long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
            for (i, w) in short.into_iter().enumerate() {
                long[i] |= w;
            }
            long
        };
        let got: Vec<Vec<u64>> = run_merge(
            3,
            |i| vec![vec![1u64 << i, if i == 2 { 0b100 } else { 0 }]],
            ReduceMerge::new(or),
        );
        assert_eq!(got, vec![vec![0b111, 0b100]]);
    }

    #[test]
    fn reduce_folding_ors_bitsets_in_place() {
        // The borrowed-fold path: word views OR straight into the
        // accumulator, no owned Vec per record.
        fn or_into(acc: &mut Vec<u64>, words: SeqView<'_, u64>) {
            if words.len() > acc.len() {
                acc.resize(words.len(), 0);
            }
            for (slot, w) in acc.iter_mut().zip(words.iter()) {
                *slot |= w;
            }
        }
        let got: Vec<Vec<u64>> = run_merge(
            3,
            |i| vec![vec![1u64 << i, if i == 2 { 0b100 } else { 0 }]],
            ReduceMerge::folding(or_into),
        );
        assert_eq!(got, vec![vec![0b111, 0b100]]);
    }

    #[test]
    fn reduce_folding_over_fixed_words() {
        fn or_into(acc: &mut Vec<FixedU64>, words: SeqView<'_, FixedU64>) {
            if words.len() > acc.len() {
                acc.resize(words.len(), FixedU64(0));
            }
            for (slot, w) in acc.iter_mut().zip(words.iter()) {
                slot.0 |= w.0;
            }
        }
        let got: Vec<Vec<FixedU64>> = run_merge(
            4,
            |i| vec![vec![FixedU64(1 << i)]],
            ReduceMerge::folding(or_into),
        );
        assert_eq!(got, vec![vec![FixedU64(0b1111)]]);
    }

    #[test]
    fn reduce_single_partial_is_identity() {
        let got: Vec<u64> = run_merge(1, |_| vec![42], ReduceMerge::new(|a: u64, b: u64| a + b));
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn reduce_empty_partials_is_empty() {
        let got: Vec<u64> = run_merge(3, |_| vec![], ReduceMerge::new(|a: u64, b: u64| a + b));
        assert!(got.is_empty());
    }

    #[test]
    fn keyed_merge_combines_per_key() {
        let got: Vec<(String, u64)> = run_merge(
            2,
            |i| vec![("usa".to_string(), 10 + i as u64), (format!("only{i}"), 1)],
            KeyedMerge::<String, u64, _>::new(|a, b| a + b),
        );
        let usa = got.iter().find(|(k, _)| k == "usa").unwrap();
        assert_eq!(usa.1, 21);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn keyed_merge_emits_in_key_order() {
        let got: Vec<(u32, u64)> = run_merge(
            3,
            |i| (0..10u32).rev().map(|k| (k, i as u64 + 1)).collect(),
            KeyedMerge::<u32, u64, _>::new(|a, b| a + b),
        );
        assert_eq!(got.len(), 10);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "keys ascending");
        assert!(got.iter().all(|&(_, v)| v == 6), "1+2+3 per key");
    }

    #[test]
    fn keyed_merge_folding_combines_in_place() {
        let got: Vec<(String, (u64, u64))> = run_merge(
            2,
            |i| {
                vec![
                    ("a".to_string(), (i as u64, 1)),
                    ("b".to_string(), (10, i as u64)),
                ]
            },
            KeyedMerge::<String, (u64, u64), _>::folding(|acc, v: (u64, u64)| {
                acc.0 += v.0;
                acc.1 = acc.1.max(v.1);
            }),
        );
        assert_eq!(
            got,
            vec![("a".to_string(), (1, 1)), ("b".to_string(), (20, 1)),]
        );
    }

    #[test]
    fn sorted_merge_orders_globally() {
        let got: Vec<u64> = run_merge(
            3,
            |i| (0..10).map(|j| (j * 3 + i) as u64).collect(),
            SortedMerge::<u64>::new(),
        );
        assert_eq!(got.len(), 30);
        assert!(
            got.windows(2).all(|w| w[0] <= w[1]),
            "output must be sorted"
        );
    }

    #[test]
    fn sorted_merge_handles_unsorted_partials() {
        let got: Vec<u64> = run_merge(2, |i| vec![9 - i as u64, 3, 7], SortedMerge::<u64>::new());
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn sorted_merge_scratch_survives_reuse() {
        // The same logic instance runs several merges: the scratch must
        // fully reset between calls (no leakage across outputs).
        let merge = SortedMerge::<u64>::new();
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        for round in 0..3u64 {
            let bag = cluster.create_bag();
            let mut w = BagWriter::open(cluster.clone(), bag, round, 64);
            for v in [3 + round, 1 + round, 2 + round] {
                w.write_record(&v).unwrap();
            }
            w.flush().unwrap();
            cluster.seal_bag(bag).unwrap();
            let mut readers = vec![BagReader::open(cluster.clone(), bag, 50 + round, 2, None)];
            let out_bag = cluster.create_bag();
            let mut out = BagWriter::open(cluster.clone(), out_bag, 99, 64);
            merge.merge(0, &mut readers, &mut out).unwrap();
            out.flush().unwrap();
            cluster.seal_bag(out_bag).unwrap();
            let got = read_bag::<u64>(&cluster, out_bag);
            assert_eq!(got, vec![1 + round, 2 + round, 3 + round]);
        }
    }

    #[test]
    fn set_union_dedups() {
        let got: Vec<u64> = run_merge(3, |i| vec![1, 2, 2 + i as u64], SetUnionMerge::<u64>::new());
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn topk_keeps_largest() {
        let got: Vec<u64> = run_merge(
            2,
            |i| (0..20).map(|j| j + i as u64 * 100).collect(),
            TopKMerge::<u64>::new(3),
        );
        assert_eq!(got, vec![119, 118, 117]);
    }

    #[test]
    fn topk_with_duplicates_and_small_input() {
        // Two partials of [5, 5, 1] make the multiset {5,5,5,5,1,1}.
        let got: Vec<u64> = run_merge(2, |_| vec![5, 5, 1], TopKMerge::<u64>::new(5));
        assert_eq!(got, vec![5, 5, 5, 5, 1]);
        // k = 0 emits nothing.
        let got: Vec<u64> = run_merge(2, |_| vec![7], TopKMerge::<u64>::new(0));
        assert!(got.is_empty());
    }

    #[test]
    fn median_of_all_partials() {
        let got: Vec<u64> = run_merge(
            2,
            |i| if i == 0 { vec![1, 9, 5] } else { vec![3, 7] },
            MedianMerge::<u64>::new(),
        );
        assert_eq!(got, vec![5]);
    }

    #[test]
    fn median_of_empty_is_empty() {
        let got: Vec<u64> = run_merge(2, |_| vec![], MedianMerge::<u64>::new());
        assert!(got.is_empty());
    }

    /// Builds an `instances x outputs` grid of partial bags (each filled
    /// with keyed records skewed per instance), runs `merge_outputs` at
    /// the given parallelism, and returns the raw chunk byte-streams of
    /// every output bag in output order.
    fn keyed_grid_merge(parallelism: usize, instances: usize, outputs: usize) -> Vec<Vec<Vec<u8>>> {
        let cluster = StorageCluster::new(3, ClusterConfig::default());
        let mut jobs = Vec::new();
        let mut out_bags = Vec::new();
        for out_idx in 0..outputs {
            let partials: Vec<BagReader> = (0..instances)
                .map(|i| {
                    let bag = cluster.create_bag();
                    let seed = (out_idx * instances + i) as u64;
                    let mut w = BagWriter::open(cluster.clone(), bag, seed, 128);
                    // Skewed row counts so outputs finish at different
                    // times; overlapping keys so the merge must combine.
                    for r in 0..(i + 1) * 7 {
                        let key = format!("k{:02}", r % 5);
                        w.write_record(&(key, (out_idx * 100 + r) as u64)).unwrap();
                    }
                    w.flush().unwrap();
                    cluster.seal_bag(bag).unwrap();
                    BagReader::open(cluster.clone(), bag, 1000 + seed, 4, None)
                })
                .collect();
            let out_bag = cluster.create_bag();
            let out = BagWriter::open(cluster.clone(), out_bag, 500 + out_idx as u64, 128);
            out_bags.push(out_bag);
            jobs.push((out_idx, partials, out));
        }
        let merge = KeyedMerge::<String, u64, _>::new(|a, b| a + b);
        merge_outputs(&merge, parallelism, jobs).unwrap();
        out_bags
            .into_iter()
            .map(|bag| {
                cluster.seal_bag(bag).unwrap();
                cluster
                    .snapshot_bag(bag)
                    .unwrap()
                    .iter()
                    .map(|c| c.bytes().to_vec())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parallel_outputs_byte_identical_to_sequential() {
        // The knob changes wall-clock only: every output bag's chunk
        // stream must match the sequential run byte for byte.
        let sequential = keyed_grid_merge(1, 3, 5);
        for par in [2, 4, 8] {
            assert_eq!(
                keyed_grid_merge(par, 3, 5),
                sequential,
                "merge_parallelism {par} changed output bytes"
            );
        }
    }

    #[test]
    fn merge_outputs_propagates_first_error() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let failing = |idx: usize, partials: &mut [BagReader], out: &mut BagWriter| {
            if idx == 3 {
                return Err(EngineError::TaskFailed {
                    task: hurricane_common::TaskId(3),
                    message: "injected".into(),
                });
            }
            ConcatMerge.merge(idx, partials, out)
        };
        for par in [1usize, 4] {
            let jobs: Vec<_> = (0..6)
                .map(|out_idx| {
                    let bag = cluster.create_bag();
                    let mut w = BagWriter::open(cluster.clone(), bag, out_idx as u64, 128);
                    w.write_record(&(out_idx as u64)).unwrap();
                    w.flush().unwrap();
                    cluster.seal_bag(bag).unwrap();
                    (
                        out_idx,
                        vec![BagReader::open(cluster.clone(), bag, 1, 4, None)],
                        BagWriter::open(cluster.clone(), cluster.create_bag(), 9, 128),
                    )
                })
                .collect();
            let err = merge_outputs(&failing, par, jobs).unwrap_err();
            assert!(
                matches!(
                    err,
                    EngineError::TaskFailed {
                        task: hurricane_common::TaskId(3),
                        ..
                    }
                ),
                "parallelism {par}: wrong error {err:?}"
            );
        }
    }

    /// A [`SpillSink`] over an in-process cluster: every run pinned to
    /// node 0 (insertion-order read-back) with shared lifecycle tracking
    /// so tests can assert no scratch outlives the merge.
    struct TestSink {
        cluster: Arc<StorageCluster>,
        chunk_size: usize,
        seed: u64,
        live: Arc<Mutex<Vec<BagId>>>,
        created: Arc<Mutex<usize>>,
    }

    impl TestSink {
        fn new(cluster: &Arc<StorageCluster>, chunk_size: usize) -> Self {
            Self {
                cluster: cluster.clone(),
                chunk_size,
                seed: 9000,
                live: Arc::new(Mutex::new(Vec::new())),
                created: Arc::new(Mutex::new(0)),
            }
        }
    }

    impl SpillSink for TestSink {
        fn create_run(&mut self) -> Result<BagWriter, EngineError> {
            let bag = self.cluster.create_bag();
            self.live.lock().push(bag);
            *self.created.lock() += 1;
            self.seed += 1;
            let client = hurricane_storage::BagClient::new(self.cluster.clone(), bag, self.seed)
                .with_pinned_node(0);
            Ok(BagWriter::open_batched_client(client, self.chunk_size, 1))
        }

        fn open_run(&mut self, bag: BagId) -> Result<BagReader, EngineError> {
            self.cluster.seal_bag(bag)?;
            self.seed += 1;
            Ok(BagReader::open(
                self.cluster.clone(),
                bag,
                self.seed,
                1,
                None,
            ))
        }

        fn release_run(&mut self, bag: BagId) -> Result<(), EngineError> {
            self.cluster.collect_bag(bag)?;
            self.live.lock().retain(|&b| b != bag);
            Ok(())
        }
    }

    /// Builds `n` sealed partial bags filled by `fill` and returns their
    /// readers.
    fn string_partials(
        cluster: &Arc<StorageCluster>,
        n: usize,
        fill: &dyn Fn(usize) -> Vec<(String, u64)>,
    ) -> Vec<BagReader> {
        (0..n)
            .map(|i| {
                let bag = cluster.create_bag();
                let mut w = BagWriter::open(cluster.clone(), bag, i as u64, 128);
                for rec in fill(i) {
                    w.write_record(&rec).unwrap();
                }
                w.flush().unwrap();
                cluster.seal_bag(bag).unwrap();
                BagReader::open(cluster.clone(), bag, 1000 + i as u64, 4, None)
            })
            .collect()
    }

    /// Runs `merge` over identical inputs once unbounded and once bounded
    /// at `budget`; returns (unbounded chunks, bounded chunks, stats,
    /// sink) for comparison.
    fn bounded_vs_unbounded<M: MergeLogic>(
        merge: &M,
        budget: u64,
        chunk_size: usize,
        n: usize,
        fill: &dyn Fn(usize) -> Vec<(String, u64)>,
    ) -> (Vec<Vec<u8>>, Vec<Vec<u8>>, SpillStats, TestSink) {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let chunks_of = |bag| {
            cluster.seal_bag(bag).unwrap();
            cluster
                .snapshot_bag(bag)
                .unwrap()
                .iter()
                .map(|c| c.bytes().to_vec())
                .collect::<Vec<_>>()
        };
        let mut readers = string_partials(&cluster, n, fill);
        let plain_bag = cluster.create_bag();
        let mut plain_out = BagWriter::open(cluster.clone(), plain_bag, 77, chunk_size);
        merge.merge(0, &mut readers, &mut plain_out).unwrap();
        plain_out.flush().unwrap();

        let mut readers = string_partials(&cluster, n, fill);
        let bounded_bag = cluster.create_bag();
        let mut bounded_out = BagWriter::open(cluster.clone(), bounded_bag, 77, chunk_size);
        let mut sink = TestSink::new(&cluster, chunk_size);
        let stats = merge
            .merge_bounded(0, &mut readers, &mut bounded_out, budget, &mut sink)
            .unwrap();
        bounded_out.flush().unwrap();
        (chunks_of(plain_bag), chunks_of(bounded_bag), stats, sink)
    }

    fn skewed_fill(i: usize) -> Vec<(String, u64)> {
        // Overlapping hot keys plus per-partial distinct keys, unsorted.
        (0..120)
            .map(|r| (format!("k{:03}", (r * 7 + i * 3) % 60), (r + i) as u64))
            .collect()
    }

    #[test]
    fn bounded_keyed_merge_is_byte_identical_across_budgets() {
        let merge = KeyedMerge::<String, u64, _>::new(|a, b| a + b);
        for budget in [0, 1, 300, 4 * 1024, u64::MAX] {
            let (plain, bounded, stats, sink) =
                bounded_vs_unbounded(&merge, budget, 128, 3, &skewed_fill);
            assert_eq!(plain, bounded, "budget {budget} changed output bytes");
            if budget < 300 {
                assert!(stats.runs > 0, "tiny budget {budget} must spill");
                assert!(stats.spilled_records > 0);
            }
            assert!(
                sink.live.lock().is_empty(),
                "budget {budget} leaked scratch runs"
            );
        }
    }

    #[test]
    fn bounded_keyed_merge_folding_is_byte_identical() {
        let merge = KeyedMerge::<String, u64, _>::folding(|acc, v: u64| *acc += v);
        let (plain, bounded, stats, sink) = bounded_vs_unbounded(&merge, 0, 96, 2, &skewed_fill);
        assert_eq!(plain, bounded);
        assert!(stats.runs > 0);
        assert!(sink.live.lock().is_empty());
    }

    #[test]
    fn bounded_merge_refolds_hierarchically_past_run_fanin() {
        // Budget 0 spills once per input chunk; small chunks make far
        // more runs than RUN_FANIN, forcing intermediate re-merge rounds.
        let merge = KeyedMerge::<String, u64, _>::new(|a, b| a + b);
        let fill = |i: usize| {
            (0..400)
                .map(|r| (format!("key{:04}", (r * 13 + i) % 250), r as u64))
                .collect::<Vec<_>>()
        };
        let (plain, bounded, stats, sink) = bounded_vs_unbounded(&merge, 0, 64, 2, &fill);
        assert_eq!(plain, bounded);
        assert!(
            stats.runs as usize > RUN_FANIN,
            "need > RUN_FANIN runs to exercise re-folding, got {}",
            stats.runs
        );
        assert!(stats.rounds > 1, "expected intermediate rounds");
        assert!(sink.live.lock().is_empty());
    }

    #[test]
    fn unbounded_budget_never_touches_the_sink() {
        let merge = KeyedMerge::<String, u64, _>::new(|a, b| a + b);
        let (plain, bounded, stats, sink) =
            bounded_vs_unbounded(&merge, u64::MAX, 128, 3, &skewed_fill);
        assert_eq!(plain, bounded);
        assert_eq!(stats, SpillStats::default());
        assert_eq!(*sink.created.lock(), 0, "no scratch bag may be created");
    }

    #[test]
    fn bounded_merge_of_empty_partials_is_empty() {
        let merge = KeyedMerge::<String, u64, _>::new(|a, b| a + b);
        let (plain, bounded, stats, _sink) =
            bounded_vs_unbounded(&merge, 0, 128, 3, &|_| Vec::new());
        assert_eq!(plain, bounded);
        assert!(plain.is_empty());
        assert_eq!(stats, SpillStats::default());
    }

    #[test]
    fn default_merge_bounded_falls_back_to_unbounded() {
        // Merges without per-key state (here: concat) use the default
        // method — unbounded behavior, no sink traffic, empty stats.
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let mut readers = string_partials(&cluster, 2, &skewed_fill);
        let out_bag = cluster.create_bag();
        let mut out = BagWriter::open(cluster.clone(), out_bag, 77, 128);
        let mut sink = TestSink::new(&cluster, 128);
        let stats = ConcatMerge
            .merge_bounded(0, &mut readers, &mut out, 0, &mut sink)
            .unwrap();
        out.flush().unwrap();
        assert_eq!(stats, SpillStats::default());
        assert_eq!(*sink.created.lock(), 0);
        cluster.seal_bag(out_bag).unwrap();
        assert_eq!(
            read_bag::<(String, u64)>(&cluster, out_bag).len(),
            2 * skewed_fill(0).len()
        );
    }

    #[test]
    fn merge_outputs_bounded_matches_merge_outputs() {
        // The driver-level check: a multi-output keyed merge spilling
        // under a tiny budget produces the same bytes per output as the
        // unbounded driver, and releases every scratch run.
        let build_jobs = |cluster: &Arc<StorageCluster>| -> (Vec<_>, Vec<BagId>) {
            let mut jobs = Vec::new();
            let mut out_bags = Vec::new();
            for out_idx in 0..4usize {
                let partials: Vec<BagReader> = (0..3)
                    .map(|i| {
                        let bag = cluster.create_bag();
                        let seed = (out_idx * 3 + i) as u64;
                        let mut w = BagWriter::open(cluster.clone(), bag, seed, 128);
                        for r in 0..80 {
                            w.write_record(&(format!("k{:02}", (r + i) % 40), r as u64))
                                .unwrap();
                        }
                        w.flush().unwrap();
                        cluster.seal_bag(bag).unwrap();
                        BagReader::open(cluster.clone(), bag, 1000 + seed, 4, None)
                    })
                    .collect();
                let out_bag = cluster.create_bag();
                let out = BagWriter::open(cluster.clone(), out_bag, 500 + out_idx as u64, 128);
                out_bags.push(out_bag);
                jobs.push((out_idx, partials, out));
            }
            (jobs, out_bags)
        };
        let collect = |cluster: &Arc<StorageCluster>, bags: Vec<BagId>| -> Vec<Vec<Vec<u8>>> {
            bags.into_iter()
                .map(|bag| {
                    cluster.seal_bag(bag).unwrap();
                    cluster
                        .snapshot_bag(bag)
                        .unwrap()
                        .iter()
                        .map(|c| c.bytes().to_vec())
                        .collect()
                })
                .collect()
        };
        let merge = KeyedMerge::<String, u64, _>::new(|a, b| a + b);

        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let (jobs, out_bags) = build_jobs(&cluster);
        merge_outputs(&merge, 2, jobs).unwrap();
        let plain = collect(&cluster, out_bags);

        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let (jobs, out_bags) = build_jobs(&cluster);
        let live: Arc<Mutex<Vec<BagId>>> = Arc::new(Mutex::new(Vec::new()));
        let make_sink = || -> Box<dyn SpillSink> {
            let mut sink = TestSink::new(&cluster, 128);
            sink.live = live.clone();
            Box::new(sink)
        };
        let stats = merge_outputs_bounded(&merge, 2, jobs, 64, &make_sink).unwrap();
        assert!(stats.runs > 0, "tiny budget must spill");
        assert!(live.lock().is_empty(), "scratch runs leaked");
        assert_eq!(collect(&cluster, out_bags), plain);
    }

    #[test]
    fn fx_hasher_distinguishes_lengths_and_bytes() {
        fn hash(bytes: &[u8]) -> u64 {
            let mut h = FxBytesHasher::default();
            h.write(bytes);
            h.finish()
        }
        assert_ne!(hash(b"a"), hash(b"b"));
        assert_ne!(hash(b"abc"), hash(b"abcd"));
        assert_ne!(hash(&[0; 3]), hash(&[0; 4]));
        assert_eq!(hash(b"hurricane"), hash(b"hurricane"));
    }
}
