//! Task-facing runtime API: ports, contexts, and control.
//!
//! A worker executing a task (or a clone of it — same code, paper §2.1)
//! receives a [`TaskCtx`] giving chunk-level access to the task's input
//! bags (via prefetching readers, i.e. batch sampling) and output bags.
//! Between chunks the context transparently does two control-plane jobs:
//!
//! * **Cancellation** — it polls the shared [`KillSwitch`]; a worker whose
//!   `(task, generation)` has been killed (node-failure recovery) or whose
//!   node has been failed observes [`EngineError::Cancelled`] and unwinds
//!   without emitting a done record.
//! * **Overload signalling** — a worker that has been continuously busy
//!   for the clone interval sends a [`ControlMsg::CloneRequest`] to the
//!   master (paper §4.2: "a compute node generates a clone message
//!   periodically, when the CPU or its local network interface is
//!   saturated ... at least 2 seconds apart").

use crate::error::EngineError;
use crossbeam::channel::Sender;
use hurricane_common::{BagId, TaskInstanceId};
use hurricane_format::{Chunk, ChunkBuf, Record, RecordView};
use hurricane_storage::batch::ChunkBatch;
use hurricane_storage::prefetch::Prefetcher;
use hurricane_storage::{BagClient, StorageCluster};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Control-plane messages from compute nodes to the application master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMsg {
    /// A worker reports sustained load and asks for its task to be cloned.
    CloneRequest {
        /// Task blueprint id.
        task: u32,
        /// Task generation the worker is executing.
        generation: u32,
        /// Compute node issuing the request.
        node: u32,
    },
    /// A compute node failed (detected or injected).
    NodeFailed {
        /// The failed node.
        node: u32,
    },
    /// A worker hit an unrecoverable application error; the master aborts
    /// the run and reports it.
    Fatal {
        /// Task whose worker failed.
        task: u32,
        /// Human-readable failure description.
        message: String,
    },
    /// Test hook: make the master thread exit immediately, losing all of
    /// its in-memory state (its durable state lives in the work bags).
    CrashMaster,
}

/// Cluster-wide cancellation state shared by master and workers.
///
/// Killing `(task, generation)` cancels every worker executing that task at
/// that generation or older; newer generations (restarts) are unaffected.
///
/// Workers poll [`KillSwitch::is_killed`] between chunks, which makes it
/// part of the record hot path's fixed overhead. The common case — nothing
/// has ever been killed — is served by one relaxed atomic load (`epoch ==
/// 0`); the RwLock + map lookup only runs once a kill or shutdown has
/// actually happened.
#[derive(Debug, Default)]
pub struct KillSwitch {
    killed: RwLock<HashMap<u32, u32>>,
    /// Bumped (release) on every kill/shutdown; a zero read means the map
    /// is empty and no shutdown was requested, so polling can skip the
    /// lock entirely.
    epoch: AtomicU64,
    shutdown: AtomicBool,
}

impl KillSwitch {
    /// Creates a switch with nothing killed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancels generations `<= generation` of `task`.
    pub fn kill(&self, task: u32, generation: u32) {
        let mut map = self.killed.write();
        let entry = map.entry(task).or_insert(generation);
        *entry = (*entry).max(generation);
        drop(map);
        // Publish after the map write so a poller that observes a nonzero
        // epoch and takes the slow path sees the new entry (the RwLock
        // acquire orders it regardless; the bump is the wake-up flag).
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Returns whether `(task, generation)` is cancelled.
    ///
    /// Fast path: a single relaxed load when nothing was ever killed.
    /// Relaxed suffices — a poller racing a concurrent kill may miss it
    /// this round, but cache coherence delivers the bump by the next poll
    /// (the "observed within one chunk" guarantee the tests pin down is
    /// about polls *after* the kill call returns, which the release bump
    /// plus the subsequent acquire-free read on the same cache line
    /// satisfies in practice; the slow path re-checks under the lock).
    pub fn is_killed(&self, task: u32, generation: u32) -> bool {
        if self.epoch.load(Ordering::Relaxed) == 0 {
            return false;
        }
        if self.shutdown.load(Ordering::Relaxed) {
            return true;
        }
        self.killed
            .read()
            .get(&task)
            .is_some_and(|&g| generation <= g)
    }

    /// Cancels everything — application shutdown.
    pub fn shutdown_all(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Returns whether global shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A sequential reader over one (sealed) bag, with batch-sampling prefetch.
pub struct BagReader {
    prefetcher: Prefetcher,
    bytes_read: u64,
    chunks_read: u64,
    cancel: Option<CancelProbe>,
}

/// The cancellation context a reader polls between chunks.
#[derive(Clone)]
pub struct CancelProbe {
    /// Shared kill map.
    pub kill: Arc<KillSwitch>,
    /// Task blueprint id of the executing worker.
    pub task: u32,
    /// Generation of the executing worker.
    pub generation: u32,
    /// The hosting compute node's liveness flag.
    pub node_alive: Arc<AtomicBool>,
}

impl CancelProbe {
    /// Returns whether the owning worker should abort.
    pub fn cancelled(&self) -> bool {
        !self.node_alive.load(Ordering::Relaxed) || self.kill.is_killed(self.task, self.generation)
    }
}

impl BagReader {
    /// Opens a reader over `bag` with `batch_factor` outstanding requests.
    pub fn open(
        cluster: Arc<StorageCluster>,
        bag: BagId,
        seed: u64,
        batch_factor: usize,
        cancel: Option<CancelProbe>,
    ) -> Self {
        Self::open_client(BagClient::new(cluster, bag, seed), batch_factor, cancel)
    }

    /// Opens a reader over an existing bag client. With a client minted
    /// over the RPC boundary (`StorageEndpoint::client`), the prefetcher
    /// keeps `batch_factor` requests genuinely in flight against distinct
    /// storage nodes.
    pub fn open_client(
        client: BagClient,
        batch_factor: usize,
        cancel: Option<CancelProbe>,
    ) -> Self {
        Self {
            prefetcher: Prefetcher::spawn(client, batch_factor),
            bytes_read: 0,
            chunks_read: 0,
            cancel,
        }
    }

    /// Returns the next chunk, or `None` once the bag is drained.
    pub fn next_chunk(&mut self) -> Result<Option<Chunk>, EngineError> {
        if let Some(c) = &self.cancel {
            if c.cancelled() {
                return Err(EngineError::Cancelled);
            }
        }
        match self.prefetcher.recv()? {
            Some(chunk) => {
                self.bytes_read += chunk.len() as u64;
                self.chunks_read += 1;
                Ok(Some(chunk))
            }
            None => Ok(None),
        }
    }

    /// Bytes delivered so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Chunks delivered so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks_read
    }
}

/// A buffering writer into one bag: records accumulate into chunks of the
/// configured size (never splitting a record), sealed chunks accumulate
/// into a [`ChunkBatch`] of up to the write batch factor, and whole
/// batches spread across storage nodes in pseudorandom cyclic order — one
/// storage call per node per batch instead of one per chunk.
pub struct BagWriter {
    client: BagClient,
    /// The shared single-pass chunk-building core: the boundary
    /// invariant, encode headroom, and overflow-carry protocol live in
    /// `hurricane_format::ChunkBuf`, not here.
    body: ChunkBuf,
    batch: ChunkBatch,
    bytes_written: u64,
    chunks_written: u64,
}

impl BagWriter {
    /// Opens a writer targeting `bag` with the given chunk capacity,
    /// inserting each chunk as it is sealed (write batch factor 1).
    pub fn open(cluster: Arc<StorageCluster>, bag: BagId, seed: u64, chunk_size: usize) -> Self {
        Self::open_batched(cluster, bag, seed, chunk_size, 1)
    }

    /// Opens a writer that holds up to `batch_factor` sealed chunks and
    /// inserts them with batched storage calls. The runtime wires the
    /// configured batch-sampling factor `b` through here so task output
    /// ports flush whole chunk runs at once.
    pub fn open_batched(
        cluster: Arc<StorageCluster>,
        bag: BagId,
        seed: u64,
        chunk_size: usize,
        batch_factor: usize,
    ) -> Self {
        Self::open_batched_client(BagClient::new(cluster, bag, seed), chunk_size, batch_factor)
    }

    /// Opens a batched writer over an existing bag client. With an
    /// RPC-connected client, replicated batch flushes overlap their backup
    /// acks on the wire.
    pub fn open_batched_client(client: BagClient, chunk_size: usize, batch_factor: usize) -> Self {
        Self {
            client,
            body: ChunkBuf::new(chunk_size),
            batch: ChunkBatch::new(batch_factor.max(1)),
            bytes_written: 0,
            chunks_written: 0,
        }
    }

    /// Appends one record, sealing a chunk (and, at the batch factor,
    /// inserting the pending batch) when full.
    ///
    /// Encoding is single-pass: the record serializes straight into the
    /// chunk buffer (no `encoded_len` pre-traversal). On capacity
    /// overflow the freshly written bytes are carried into the next
    /// chunk's buffer; an oversized record is rolled back and reported as
    /// [`hurricane_format::CodecError::RecordTooLarge`], leaving the
    /// writer usable.
    #[inline]
    pub fn write_record<T: Record>(&mut self, record: &T) -> Result<(), EngineError> {
        let start = self.body.len();
        record.encode(self.body.encode_buf());
        if let Some(data) = self.body.commit(start).map_err(EngineError::Codec)? {
            self.seal_data(data)?;
        }
        Ok(())
    }

    /// Appends one pre-serialized record — the fan-out primitive: encode
    /// once, hand the same bytes to every output writer. `bytes` must be
    /// exactly one record's encoding so the boundary invariant holds.
    #[inline]
    pub fn write_encoded(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        if let Some(data) = self
            .body
            .append_encoded(bytes)
            .map_err(EngineError::Codec)?
        {
            self.seal_data(data)?;
        }
        Ok(())
    }

    /// Inserts a pre-built chunk directly (bypassing the record buffer).
    /// Buffered records are sealed first so framing is preserved.
    pub fn emit_chunk(&mut self, chunk: Chunk) -> Result<(), EngineError> {
        self.seal_chunk()?;
        self.bytes_written += chunk.len() as u64;
        self.chunks_written += 1;
        if self.batch.push(chunk) {
            self.batch.flush_into(&mut self.client)?;
        }
        Ok(())
    }

    /// Seals buffered records into a chunk, queueing it on the batch.
    fn seal_chunk(&mut self) -> Result<(), EngineError> {
        match self.body.take() {
            Some(data) => self.seal_data(data),
            None => Ok(()),
        }
    }

    /// Queues `data` (a complete chunk payload) on the pending batch.
    /// Cold: runs once per sealed chunk.
    #[cold]
    fn seal_data(&mut self, data: Vec<u8>) -> Result<(), EngineError> {
        self.bytes_written += data.len() as u64;
        self.chunks_written += 1;
        if self.batch.push(Chunk::from_vec(data)) {
            self.batch.flush_into(&mut self.client)?;
        }
        Ok(())
    }

    /// Seals buffered records and inserts every pending chunk — including
    /// draining any inserts the RPC port staged for coalescing. After
    /// `flush` returns, all written data is visible in the bag.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        self.seal_chunk()?;
        self.batch.flush_into(&mut self.client)?;
        self.client.flush()?;
        Ok(())
    }

    /// The bag this writer targets.
    pub fn bag_id(&self) -> BagId {
        self.client.bag_id()
    }

    /// Bytes inserted so far (flushed only).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Chunks inserted so far.
    pub fn chunks_written(&self) -> u64 {
        self.chunks_written
    }
}

/// Everything a worker's task logic can touch.
pub struct TaskCtx {
    pub(crate) inputs: Vec<BagReader>,
    pub(crate) outputs: Vec<BagWriter>,
    pub(crate) input_bags: Vec<BagId>,
    pub(crate) cluster: Arc<StorageCluster>,
    pub(crate) instance: TaskInstanceId,
    pub(crate) node: u32,
    pub(crate) generation: u32,
    pub(crate) clone_tx: Option<Sender<ControlMsg>>,
    pub(crate) clone_interval: Duration,
    pub(crate) last_ping: Instant,
    /// Reusable encode buffer for [`TaskCtx::write_record_multi`]:
    /// cleared, never shrunk, so steady-state fan-out allocates nothing.
    pub(crate) scratch: Vec<u8>,
}

impl TaskCtx {
    /// Number of input bags.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output bags.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The executing task instance (task + clone index).
    pub fn instance(&self) -> TaskInstanceId {
        self.instance
    }

    /// The compute node this worker runs on.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Removes the next chunk from input `i`, or `None` once drained.
    ///
    /// Also performs the periodic overload ping: a worker that keeps
    /// getting chunks without waiting is continuously busy, and every
    /// `clone_interval` it asks the master to consider cloning its task.
    pub fn next_chunk(&mut self, i: usize) -> Result<Option<Chunk>, EngineError> {
        self.maybe_ping();
        self.inputs[i].next_chunk()
    }

    /// Appends `record` to output `o`.
    pub fn write_record<T: Record>(&mut self, o: usize, record: &T) -> Result<(), EngineError> {
        self.outputs[o].write_record(record)
    }

    /// Appends `record` to every output in `outs`, encoding it **once**.
    ///
    /// The fan-out write for tasks that route one record to k outputs:
    /// the record serializes into a reusable scratch buffer and the same
    /// bytes append to each listed writer, so the encode cost is
    /// independent of k. For copying *whole chunks* verbatim, prefer
    /// [`TaskCtx::splat_chunk`], which is k refcount bumps.
    pub fn write_record_multi<T: Record>(
        &mut self,
        outs: &[usize],
        record: &T,
    ) -> Result<(), EngineError> {
        self.scratch.clear();
        record.encode(&mut self.scratch);
        let scratch = &self.scratch;
        for &o in outs {
            self.outputs[o].write_encoded(scratch)?;
        }
        Ok(())
    }

    /// Inserts a pre-built chunk into output `o`.
    pub fn emit_chunk(&mut self, o: usize, chunk: Chunk) -> Result<(), EngineError> {
        self.outputs[o].emit_chunk(chunk)
    }

    /// Copies `chunk` verbatim into every output in `outs`.
    ///
    /// Chunks are refcounted, so each copy is an `Arc` bump — no decode,
    /// no re-encode, no byte copy. This is the cheapest possible fan-out
    /// for tasks that forward an input chunk to k outputs unchanged
    /// (e.g. PageRank's per-iteration edge copies). Record framing is
    /// preserved: each writer seals its buffered records first.
    pub fn splat_chunk(&mut self, outs: &[usize], chunk: &Chunk) -> Result<(), EngineError> {
        for &o in outs {
            self.outputs[o].emit_chunk(chunk.clone())?;
        }
        Ok(())
    }

    /// Decodes every record of input `i`'s next chunk, or `None` at end.
    ///
    /// This is the *owned* read loop: one `Vec<T>` (plus any per-record
    /// heap fields) per chunk. For hot loops that only inspect records,
    /// prefer [`TaskCtx::for_each_record`] / [`TaskCtx::fold_records`],
    /// which stream borrowed views and allocate nothing.
    pub fn next_records<T: Record>(&mut self, i: usize) -> Result<Option<Vec<T>>, EngineError> {
        match self.next_chunk(i)? {
            None => Ok(None),
            Some(c) => Ok(Some(hurricane_format::decode_all::<T>(&c)?)),
        }
    }

    /// Streams every remaining record of input `i` through `f` as a
    /// borrowed view ([`RecordView`]), draining the input. Returns the
    /// record count.
    ///
    /// Zero per-record allocation: views borrow each chunk's bytes, and
    /// the chunk is released before the next is fetched. Cancellation and
    /// overload pings keep their per-chunk cadence. The closure cannot
    /// touch `self` (the context is driving the iteration) — for
    /// read-then-write loops, hold the chunk yourself via
    /// [`TaskCtx::next_chunk`] and iterate it with
    /// [`hurricane_format::try_for_each_view`], writing through `self`
    /// from inside the closure.
    pub fn for_each_record<T, F>(&mut self, i: usize, mut f: F) -> Result<u64, EngineError>
    where
        T: RecordView,
        F: for<'a> FnMut(T::View<'a>),
    {
        let mut n = 0;
        while let Some(chunk) = self.next_chunk(i)? {
            n += hurricane_format::ChunkReader::<T>::new(&chunk).for_each(&mut f)?;
        }
        Ok(n)
    }

    /// Folds every remaining record of input `i` into an accumulator via
    /// borrowed views, draining the input.
    pub fn fold_records<T, Acc, F>(
        &mut self,
        i: usize,
        init: Acc,
        mut f: F,
    ) -> Result<Acc, EngineError>
    where
        T: RecordView,
        F: for<'a> FnMut(Acc, T::View<'a>) -> Acc,
    {
        let mut acc = init;
        while let Some(chunk) = self.next_chunk(i)? {
            acc = hurricane_format::ChunkReader::<T>::new(&chunk).fold(acc, &mut f)?;
        }
        Ok(acc)
    }

    /// Reads *all* of input `i` non-destructively, without advancing the
    /// shared read pointer.
    ///
    /// This is the bag API's concurrent-full-scan mode (paper §4.3:
    /// "allowing multiple workers to read an entire bag concurrently").
    /// Use it for broadcast-style inputs that every clone needs in full —
    /// e.g. the sorted build side of a hash join, or the rank vector in a
    /// PageRank iteration — while the *other* input is consumed chunk-by-
    /// chunk to partition the work among clones.
    pub fn snapshot_input<T: Record>(&mut self, i: usize) -> Result<Vec<T>, EngineError> {
        let mut out = Vec::new();
        self.snapshot_input_into(i, &mut out)?;
        Ok(out)
    }

    /// Like [`TaskCtx::snapshot_input`], but decodes into a caller-owned
    /// buffer (cleared first, capacity retained). Task logic that runs
    /// once per clone can keep the buffer in a `thread_local!` so repeated
    /// executions on the same worker reuse the allocation instead of
    /// re-collecting a fresh `Vec` per clone.
    pub fn snapshot_input_into<T: Record>(
        &mut self,
        i: usize,
        out: &mut Vec<T>,
    ) -> Result<(), EngineError> {
        out.clear();
        let chunks = self.cluster.snapshot_bag(self.input_bags[i])?;
        for c in &chunks {
            for rec in hurricane_format::ChunkReader::<T>::new(c) {
                out.push(rec?);
            }
        }
        Ok(())
    }

    /// Flushes all output writers. Called by the worker after the logic
    /// returns; exposed for logic that interleaves phases.
    pub fn flush_outputs(&mut self) -> Result<(), EngineError> {
        for w in &mut self.outputs {
            w.flush()?;
        }
        Ok(())
    }

    fn maybe_ping(&mut self) {
        let Some(tx) = &self.clone_tx else { return };
        if self.last_ping.elapsed() >= self.clone_interval {
            self.last_ping = Instant::now();
            let _ = tx.send(ControlMsg::CloneRequest {
                task: self.instance.task.0,
                generation: self.generation,
                node: self.node,
            });
        }
    }
}

/// Task code: what one circle in the application graph executes. Clones run
/// the same logic on the same input bag(s); the bag's exactly-once chunk
/// delivery partitions the work among them dynamically.
pub trait TaskLogic: Send + Sync + 'static {
    /// Runs the task body. Loop over `ctx.next_chunk(..)` until `None`;
    /// return `Err(EngineError::Cancelled)` bubbles untouched.
    fn run(&self, ctx: &mut TaskCtx) -> Result<(), EngineError>;
}

impl<F> TaskLogic for F
where
    F: Fn(&mut TaskCtx) -> Result<(), EngineError> + Send + Sync + 'static,
{
    fn run(&self, ctx: &mut TaskCtx) -> Result<(), EngineError> {
        self(ctx)
    }
}

/// Counters describing how much a bounded merge had to spill.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Records drained from the accumulator table into scratch runs.
    pub spilled_records: u64,
    /// Scratch runs written (drains plus intermediate re-merges).
    pub runs: u64,
    /// Merge rounds over scratch runs (0 when everything fit in memory).
    pub rounds: u64,
}

impl SpillStats {
    /// Accumulates another output's counters into this one.
    pub fn absorb(&mut self, other: SpillStats) {
        self.spilled_records += other.spilled_records;
        self.runs += other.runs;
        self.rounds += other.rounds;
    }
}

/// Where a bounded merge parks accumulator state that no longer fits in
/// its memory budget.
///
/// A *run* is a scratch bag holding one sorted `(key, partial)` record
/// stream. The sink owns run lifecycle: [`SpillSink::create_run`] mints a
/// writer over a fresh scratch bag whose chunks read back in insertion
/// order (the manager pins each run to one storage node — bags are
/// unordered *across* nodes but FIFO within one), [`SpillSink::open_run`]
/// seals a finished run and returns an in-order reader, and
/// [`SpillSink::release_run`] reclaims a run's storage once it has been
/// folded into a later round. Runs not released by the merge (error
/// unwind) are discarded by the sink's owner when the merge task ends.
pub trait SpillSink {
    /// Creates a fresh scratch run and returns a writer over it.
    fn create_run(&mut self) -> Result<BagWriter, EngineError>;
    /// Seals run `bag` and opens an in-insertion-order reader over it.
    fn open_run(&mut self, bag: BagId) -> Result<BagReader, EngineError>;
    /// Reclaims run `bag`'s storage.
    fn release_run(&mut self, bag: BagId) -> Result<(), EngineError>;
}

/// Application-specified merge: reconciles the partial outputs of a task's
/// clones into the single output an uncloned run would have produced
/// (paper §2.3).
pub trait MergeLogic: Send + Sync + 'static {
    /// Merges the per-clone partials for output index `output_index` into
    /// `out`. `partials[i]` reads clone `i`'s partial output bag.
    fn merge(
        &self,
        output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError>;

    /// Like [`MergeLogic::merge`], but bounded: implementations that
    /// accumulate per-key state may hold at most ~`budget` bytes of it in
    /// memory, draining overflow into scratch runs via `sink` and
    /// re-folding the runs in additional rounds until the result fits.
    ///
    /// The contract is unchanged — the output must be byte-identical to
    /// the unbounded [`MergeLogic::merge`] at any budget. The default
    /// simply runs the unbounded merge (correct for merges whose state
    /// does not grow with key cardinality, e.g. concat/reduce/top-k);
    /// `KeyedMerge` overrides it with a real external aggregation.
    fn merge_bounded(
        &self,
        output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
        _budget: u64,
        _sink: &mut dyn SpillSink,
    ) -> Result<SpillStats, EngineError> {
        self.merge(output_index, partials, out)?;
        Ok(SpillStats::default())
    }
}

impl<F> MergeLogic for F
where
    F: Fn(usize, &mut [BagReader], &mut BagWriter) -> Result<(), EngineError>
        + Send
        + Sync
        + 'static,
{
    fn merge(
        &self,
        output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        self(output_index, partials, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_storage::ClusterConfig;

    #[test]
    fn killswitch_generations() {
        let ks = KillSwitch::new();
        assert!(!ks.is_killed(1, 0));
        ks.kill(1, 2);
        assert!(ks.is_killed(1, 0));
        assert!(ks.is_killed(1, 2));
        assert!(!ks.is_killed(1, 3), "newer generation survives");
        assert!(!ks.is_killed(2, 0), "other tasks unaffected");
        // Kill level never regresses.
        ks.kill(1, 1);
        assert!(ks.is_killed(1, 2));
    }

    #[test]
    fn killswitch_shutdown_kills_all() {
        let ks = KillSwitch::new();
        ks.shutdown_all();
        assert!(ks.is_killed(7, 99));
        assert!(ks.is_shutdown());
    }

    #[test]
    fn killswitch_fast_path_stays_correct_after_first_kill() {
        let ks = KillSwitch::new();
        // Fresh switch: the epoch==0 fast path answers for every query.
        for t in 0..100 {
            assert!(!ks.is_killed(t, 0));
        }
        // After any kill, unrelated tasks must still (correctly) take the
        // slow path and come back unkilled.
        ks.kill(3, 1);
        assert!(ks.is_killed(3, 0));
        assert!(!ks.is_killed(4, 0), "unrelated task unaffected");
        assert!(!ks.is_killed(3, 2), "newer generation unaffected");
    }

    #[test]
    fn kill_is_observed_by_the_very_next_poll() {
        // The cancellation contract the epoch fast path must preserve:
        // once kill() returns, the next is_killed poll (i.e. within one
        // chunk of reading) observes it — from another thread too.
        let ks = Arc::new(KillSwitch::new());
        let ks2 = ks.clone();
        let t = std::thread::spawn(move || ks2.kill(9, 5));
        t.join().unwrap();
        assert!(ks.is_killed(9, 5), "poll after kill joined must observe it");
    }

    #[test]
    fn writer_reader_roundtrip() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open(cluster.clone(), bag, 1, 64);
        for i in 0..100u64 {
            w.write_record(&(i, i * 3)).unwrap();
        }
        w.flush().unwrap();
        cluster.seal_bag(bag).unwrap();
        assert!(w.chunks_written() > 1);
        let mut r = BagReader::open(cluster, bag, 2, 4, None);
        let mut seen = Vec::new();
        while let Some(c) = r.next_chunk().unwrap() {
            seen.extend(hurricane_format::decode_all::<(u64, u64)>(&c).unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen.len(), 100);
        assert_eq!(seen[99], (99, 297));
        assert_eq!(r.chunks_read(), w.chunks_written());
    }

    #[test]
    fn writer_rejects_oversized_record() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open(cluster, bag, 1, 8);
        let err = w.write_record(&"way too long for eight bytes".to_string());
        assert!(matches!(err, Err(EngineError::Codec(_))));
    }

    #[test]
    fn reader_cancellation() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open(cluster.clone(), bag, 1, 32);
        for i in 0..10u64 {
            w.write_record(&i).unwrap();
        }
        w.flush().unwrap();
        cluster.seal_bag(bag).unwrap();
        let kill = Arc::new(KillSwitch::new());
        let probe = CancelProbe {
            kill: kill.clone(),
            task: 5,
            generation: 0,
            node_alive: Arc::new(AtomicBool::new(true)),
        };
        let mut r = BagReader::open(cluster, bag, 2, 2, Some(probe));
        assert!(r.next_chunk().unwrap().is_some());
        kill.kill(5, 0);
        assert_eq!(r.next_chunk(), Err(EngineError::Cancelled));
    }

    #[test]
    fn reader_node_death_cancels() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let bag = cluster.create_bag();
        cluster.seal_bag(bag).unwrap();
        let alive = Arc::new(AtomicBool::new(true));
        let probe = CancelProbe {
            kill: Arc::new(KillSwitch::new()),
            task: 1,
            generation: 0,
            node_alive: alive.clone(),
        };
        let mut r = BagReader::open(cluster, bag, 3, 2, Some(probe));
        alive.store(false, Ordering::Relaxed);
        assert_eq!(r.next_chunk(), Err(EngineError::Cancelled));
    }

    #[test]
    fn batched_writer_defers_then_delivers_all() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open_batched(cluster.clone(), bag, 1, 64, 8);
        for i in 0..20u8 {
            w.emit_chunk(Chunk::from_vec(vec![i])).unwrap();
        }
        // 20 chunks emitted; 16 inserted via 2 full batches, 4 pending.
        assert_eq!(w.chunks_written(), 20);
        assert_eq!(cluster.sample_bag(bag).unwrap().total_chunks, 16);
        w.flush().unwrap();
        assert_eq!(cluster.sample_bag(bag).unwrap().total_chunks, 20);
    }

    #[test]
    fn batched_writer_record_roundtrip() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open_batched(cluster.clone(), bag, 1, 16, 4);
        for i in 0..200u64 {
            w.write_record(&i).unwrap();
        }
        w.flush().unwrap();
        cluster.seal_bag(bag).unwrap();
        let mut r = BagReader::open(cluster, bag, 2, 4, None);
        let mut seen = Vec::new();
        while let Some(c) = r.next_chunk().unwrap() {
            seen.extend(hurricane_format::decode_all::<u64>(&c).unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..200u64).collect::<Vec<_>>());
        assert_eq!(r.chunks_read(), w.chunks_written());
    }

    /// Builds a bare context over `cluster` for exercising the streaming
    /// APIs without a full runtime.
    fn test_ctx(
        cluster: &Arc<StorageCluster>,
        inputs: Vec<hurricane_common::BagId>,
        outputs: Vec<hurricane_common::BagId>,
    ) -> TaskCtx {
        TaskCtx {
            inputs: inputs
                .iter()
                .map(|&b| BagReader::open(cluster.clone(), b, 900 + b.0, 2, None))
                .collect(),
            outputs: outputs
                .iter()
                .map(|&b| BagWriter::open(cluster.clone(), b, 500 + b.0, 64))
                .collect(),
            input_bags: inputs,
            cluster: cluster.clone(),
            instance: TaskInstanceId::original(hurricane_common::TaskId(0)),
            node: 0,
            generation: 0,
            clone_tx: None,
            clone_interval: Duration::from_secs(3600),
            last_ping: Instant::now(),
            scratch: Vec::new(),
        }
    }

    fn filled_bag(cluster: &Arc<StorageCluster>, records: impl IntoIterator<Item = u64>) -> BagId {
        let bag = cluster.create_bag();
        let mut w = BagWriter::open(cluster.clone(), bag, 1, 64);
        for r in records {
            w.write_record(&r).unwrap();
        }
        w.flush().unwrap();
        cluster.seal_bag(bag).unwrap();
        bag
    }

    fn read_sorted(cluster: &Arc<StorageCluster>, bag: BagId) -> Vec<u64> {
        let mut out: Vec<u64> = cluster
            .snapshot_bag(bag)
            .unwrap()
            .iter()
            .flat_map(|c| hurricane_format::decode_all::<u64>(c).unwrap())
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn write_encoded_matches_write_record() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let by_rec = cluster.create_bag();
        let by_bytes = cluster.create_bag();
        let mut a = BagWriter::open(cluster.clone(), by_rec, 1, 32);
        let mut b = BagWriter::open(cluster.clone(), by_bytes, 1, 32);
        let mut scratch = Vec::new();
        for i in 0..200u64 {
            a.write_record(&i).unwrap();
            scratch.clear();
            i.encode(&mut scratch);
            b.write_encoded(&scratch).unwrap();
        }
        a.flush().unwrap();
        b.flush().unwrap();
        cluster.seal_bag(by_rec).unwrap();
        cluster.seal_bag(by_bytes).unwrap();
        assert_eq!(a.chunks_written(), b.chunks_written());
        assert_eq!(a.bytes_written(), b.bytes_written());
        assert_eq!(
            read_sorted(&cluster, by_rec),
            read_sorted(&cluster, by_bytes)
        );
    }

    #[test]
    fn write_encoded_rejects_oversized() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open(cluster, bag, 1, 8);
        let err = w.write_encoded(&[0u8; 9]);
        assert!(matches!(err, Err(EngineError::Codec(_))));
        // Still usable.
        w.write_encoded(&[1, 2, 3]).unwrap();
    }

    #[test]
    fn for_each_and_fold_stream_the_input() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let input = filled_bag(&cluster, 0..1000);
        let mut ctx = test_ctx(&cluster, vec![input], vec![]);
        let mut sum = 0u64;
        let n = ctx.for_each_record::<u64, _>(0, |v| sum += v).unwrap();
        assert_eq!(n, 1000);
        assert_eq!(sum, 999 * 1000 / 2);

        let input2 = filled_bag(&cluster, 0..100);
        let mut ctx2 = test_ctx(&cluster, vec![input2], vec![]);
        let max = ctx2
            .fold_records::<u64, u64, _>(0, 0, |acc, v| acc.max(v))
            .unwrap();
        assert_eq!(max, 99);
    }

    #[test]
    fn write_record_multi_encodes_once_delivers_everywhere() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let outs: Vec<BagId> = (0..3).map(|_| cluster.create_bag()).collect();
        let mut ctx = test_ctx(&cluster, vec![], outs.clone());
        for i in 0..50u64 {
            ctx.write_record_multi(&[0, 1, 2], &i).unwrap();
        }
        ctx.flush_outputs().unwrap();
        let expect: Vec<u64> = (0..50).collect();
        for &bag in &outs {
            cluster.seal_bag(bag).unwrap();
            assert_eq!(read_sorted(&cluster, bag), expect);
        }
    }

    #[test]
    fn splat_chunk_is_refcount_copy() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let outs: Vec<BagId> = (0..3).map(|_| cluster.create_bag()).collect();
        let mut ctx = test_ctx(&cluster, vec![], outs.clone());
        let chunk = Chunk::from_vec(vec![1, 2, 3, 4]);
        ctx.splat_chunk(&[0, 1, 2], &chunk).unwrap();
        ctx.flush_outputs().unwrap();
        for &bag in &outs {
            let chunks = cluster.snapshot_bag(bag).unwrap();
            assert_eq!(chunks.len(), 1);
            assert_eq!(chunks[0].bytes(), chunk.bytes());
            // Same backing storage: the splat cloned the refcount, not
            // the bytes.
            assert_eq!(chunks[0].shared().as_ptr(), chunk.shared().as_ptr());
        }
    }

    #[test]
    fn splat_chunk_seals_buffered_records_first() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let out = cluster.create_bag();
        let mut ctx = test_ctx(&cluster, vec![], vec![out]);
        ctx.write_record(0, &7u64).unwrap();
        ctx.splat_chunk(&[0], &Chunk::from_vec(vec![9])).unwrap();
        ctx.flush_outputs().unwrap();
        let chunks = cluster.snapshot_bag(out).unwrap();
        assert_eq!(chunks.len(), 2, "buffered record sealed before splat");
    }

    #[test]
    fn snapshot_input_into_reuses_the_buffer() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let input = filled_bag(&cluster, 0..500);
        let mut ctx = test_ctx(&cluster, vec![input], vec![]);
        let mut buf: Vec<u64> = Vec::new();
        ctx.snapshot_input_into(0, &mut buf).unwrap();
        let mut got = buf.clone();
        got.sort_unstable();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        // A second snapshot into the same buffer must not reallocate.
        ctx.snapshot_input_into(0, &mut buf).unwrap();
        assert_eq!(buf.len(), 500);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
        // And it must replace, not append.
        ctx.snapshot_input_into(0, &mut buf).unwrap();
        assert_eq!(buf.len(), 500);
    }

    #[test]
    fn emit_chunk_flushes_buffer_first() {
        // Interleaving write_record and emit_chunk must preserve record
        // framing: the buffered records are sealed before the raw chunk.
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open(cluster.clone(), bag, 1, 1024);
        w.write_record(&1u64).unwrap();
        w.emit_chunk(Chunk::from_vec(vec![9])).unwrap();
        w.flush().unwrap();
        cluster.seal_bag(bag).unwrap();
        assert_eq!(w.chunks_written(), 2);
    }
}
