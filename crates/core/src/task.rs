//! Task-facing runtime API: ports, contexts, and control.
//!
//! A worker executing a task (or a clone of it — same code, paper §2.1)
//! receives a [`TaskCtx`] giving chunk-level access to the task's input
//! bags (via prefetching readers, i.e. batch sampling) and output bags.
//! Between chunks the context transparently does two control-plane jobs:
//!
//! * **Cancellation** — it polls the shared [`KillSwitch`]; a worker whose
//!   `(task, generation)` has been killed (node-failure recovery) or whose
//!   node has been failed observes [`EngineError::Cancelled`] and unwinds
//!   without emitting a done record.
//! * **Overload signalling** — a worker that has been continuously busy
//!   for the clone interval sends a [`ControlMsg::CloneRequest`] to the
//!   master (paper §4.2: "a compute node generates a clone message
//!   periodically, when the CPU or its local network interface is
//!   saturated ... at least 2 seconds apart").

use crate::error::EngineError;
use crossbeam::channel::Sender;
use hurricane_common::{BagId, TaskInstanceId};
use hurricane_format::{Chunk, Record};
use hurricane_storage::batch::ChunkBatch;
use hurricane_storage::prefetch::Prefetcher;
use hurricane_storage::{BagClient, StorageCluster};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Control-plane messages from compute nodes to the application master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMsg {
    /// A worker reports sustained load and asks for its task to be cloned.
    CloneRequest {
        /// Task blueprint id.
        task: u32,
        /// Task generation the worker is executing.
        generation: u32,
        /// Compute node issuing the request.
        node: u32,
    },
    /// A compute node failed (detected or injected).
    NodeFailed {
        /// The failed node.
        node: u32,
    },
    /// A worker hit an unrecoverable application error; the master aborts
    /// the run and reports it.
    Fatal {
        /// Task whose worker failed.
        task: u32,
        /// Human-readable failure description.
        message: String,
    },
    /// Test hook: make the master thread exit immediately, losing all of
    /// its in-memory state (its durable state lives in the work bags).
    CrashMaster,
}

/// Cluster-wide cancellation state shared by master and workers.
///
/// Killing `(task, generation)` cancels every worker executing that task at
/// that generation or older; newer generations (restarts) are unaffected.
#[derive(Debug, Default)]
pub struct KillSwitch {
    killed: RwLock<HashMap<u32, u32>>,
    shutdown: AtomicBool,
}

impl KillSwitch {
    /// Creates a switch with nothing killed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancels generations `<= generation` of `task`.
    pub fn kill(&self, task: u32, generation: u32) {
        let mut map = self.killed.write();
        let entry = map.entry(task).or_insert(generation);
        *entry = (*entry).max(generation);
    }

    /// Returns whether `(task, generation)` is cancelled.
    pub fn is_killed(&self, task: u32, generation: u32) -> bool {
        if self.shutdown.load(Ordering::Relaxed) {
            return true;
        }
        self.killed
            .read()
            .get(&task)
            .is_some_and(|&g| generation <= g)
    }

    /// Cancels everything — application shutdown.
    pub fn shutdown_all(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Returns whether global shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A sequential reader over one (sealed) bag, with batch-sampling prefetch.
pub struct BagReader {
    prefetcher: Prefetcher,
    bytes_read: u64,
    chunks_read: u64,
    cancel: Option<CancelProbe>,
}

/// The cancellation context a reader polls between chunks.
#[derive(Clone)]
pub struct CancelProbe {
    /// Shared kill map.
    pub kill: Arc<KillSwitch>,
    /// Task blueprint id of the executing worker.
    pub task: u32,
    /// Generation of the executing worker.
    pub generation: u32,
    /// The hosting compute node's liveness flag.
    pub node_alive: Arc<AtomicBool>,
}

impl CancelProbe {
    /// Returns whether the owning worker should abort.
    pub fn cancelled(&self) -> bool {
        !self.node_alive.load(Ordering::Relaxed) || self.kill.is_killed(self.task, self.generation)
    }
}

impl BagReader {
    /// Opens a reader over `bag` with `batch_factor` outstanding requests.
    pub fn open(
        cluster: Arc<StorageCluster>,
        bag: BagId,
        seed: u64,
        batch_factor: usize,
        cancel: Option<CancelProbe>,
    ) -> Self {
        Self::open_client(BagClient::new(cluster, bag, seed), batch_factor, cancel)
    }

    /// Opens a reader over an existing bag client. With a client connected
    /// over the RPC boundary ([`BagClient::connect`]), the prefetcher
    /// keeps `batch_factor` requests genuinely in flight against distinct
    /// storage nodes.
    pub fn open_client(
        client: BagClient,
        batch_factor: usize,
        cancel: Option<CancelProbe>,
    ) -> Self {
        Self {
            prefetcher: Prefetcher::spawn(client, batch_factor),
            bytes_read: 0,
            chunks_read: 0,
            cancel,
        }
    }

    /// Returns the next chunk, or `None` once the bag is drained.
    pub fn next_chunk(&mut self) -> Result<Option<Chunk>, EngineError> {
        if let Some(c) = &self.cancel {
            if c.cancelled() {
                return Err(EngineError::Cancelled);
            }
        }
        match self.prefetcher.recv()? {
            Some(chunk) => {
                self.bytes_read += chunk.len() as u64;
                self.chunks_read += 1;
                Ok(Some(chunk))
            }
            None => Ok(None),
        }
    }

    /// Bytes delivered so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Chunks delivered so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks_read
    }
}

/// A buffering writer into one bag: records accumulate into chunks of the
/// configured size (never splitting a record), sealed chunks accumulate
/// into a [`ChunkBatch`] of up to the write batch factor, and whole
/// batches spread across storage nodes in pseudorandom cyclic order — one
/// storage call per node per batch instead of one per chunk.
pub struct BagWriter {
    client: BagClient,
    buf: Vec<u8>,
    batch: ChunkBatch,
    chunk_size: usize,
    bytes_written: u64,
    chunks_written: u64,
}

impl BagWriter {
    /// Opens a writer targeting `bag` with the given chunk capacity,
    /// inserting each chunk as it is sealed (write batch factor 1).
    pub fn open(cluster: Arc<StorageCluster>, bag: BagId, seed: u64, chunk_size: usize) -> Self {
        Self::open_batched(cluster, bag, seed, chunk_size, 1)
    }

    /// Opens a writer that holds up to `batch_factor` sealed chunks and
    /// inserts them with batched storage calls. The runtime wires the
    /// configured batch-sampling factor `b` through here so task output
    /// ports flush whole chunk runs at once.
    pub fn open_batched(
        cluster: Arc<StorageCluster>,
        bag: BagId,
        seed: u64,
        chunk_size: usize,
        batch_factor: usize,
    ) -> Self {
        Self::open_batched_client(BagClient::new(cluster, bag, seed), chunk_size, batch_factor)
    }

    /// Opens a batched writer over an existing bag client. With an
    /// RPC-connected client, replicated batch flushes overlap their backup
    /// acks on the wire.
    pub fn open_batched_client(client: BagClient, chunk_size: usize, batch_factor: usize) -> Self {
        Self {
            client,
            buf: Vec::with_capacity(chunk_size),
            batch: ChunkBatch::new(batch_factor.max(1)),
            chunk_size,
            bytes_written: 0,
            chunks_written: 0,
        }
    }

    /// Appends one record, sealing a chunk (and, at the batch factor,
    /// inserting the pending batch) when full.
    pub fn write_record<T: Record>(&mut self, record: &T) -> Result<(), EngineError> {
        let len = record.encoded_len();
        if len > self.chunk_size {
            return Err(EngineError::Codec(
                hurricane_format::CodecError::RecordTooLarge {
                    record: len,
                    chunk: self.chunk_size,
                },
            ));
        }
        if self.buf.len() + len > self.chunk_size {
            self.seal_chunk()?;
        }
        record.encode(&mut self.buf);
        Ok(())
    }

    /// Inserts a pre-built chunk directly (bypassing the record buffer).
    /// Buffered records are sealed first so framing is preserved.
    pub fn emit_chunk(&mut self, chunk: Chunk) -> Result<(), EngineError> {
        self.seal_chunk()?;
        self.bytes_written += chunk.len() as u64;
        self.chunks_written += 1;
        if self.batch.push(chunk) {
            self.batch.flush_into(&mut self.client)?;
        }
        Ok(())
    }

    /// Seals buffered records into a chunk, queueing it on the batch.
    fn seal_chunk(&mut self) -> Result<(), EngineError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let data = std::mem::replace(&mut self.buf, Vec::with_capacity(self.chunk_size));
        self.bytes_written += data.len() as u64;
        self.chunks_written += 1;
        if self.batch.push(Chunk::from_vec(data)) {
            self.batch.flush_into(&mut self.client)?;
        }
        Ok(())
    }

    /// Seals buffered records and inserts every pending chunk — including
    /// draining any inserts the RPC port staged for coalescing. After
    /// `flush` returns, all written data is visible in the bag.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        self.seal_chunk()?;
        self.batch.flush_into(&mut self.client)?;
        self.client.flush()?;
        Ok(())
    }

    /// The bag this writer targets.
    pub fn bag_id(&self) -> BagId {
        self.client.bag_id()
    }

    /// Bytes inserted so far (flushed only).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Chunks inserted so far.
    pub fn chunks_written(&self) -> u64 {
        self.chunks_written
    }
}

/// Everything a worker's task logic can touch.
pub struct TaskCtx {
    pub(crate) inputs: Vec<BagReader>,
    pub(crate) outputs: Vec<BagWriter>,
    pub(crate) input_bags: Vec<BagId>,
    pub(crate) cluster: Arc<StorageCluster>,
    pub(crate) instance: TaskInstanceId,
    pub(crate) node: u32,
    pub(crate) generation: u32,
    pub(crate) clone_tx: Option<Sender<ControlMsg>>,
    pub(crate) clone_interval: Duration,
    pub(crate) last_ping: Instant,
}

impl TaskCtx {
    /// Number of input bags.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output bags.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The executing task instance (task + clone index).
    pub fn instance(&self) -> TaskInstanceId {
        self.instance
    }

    /// The compute node this worker runs on.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Removes the next chunk from input `i`, or `None` once drained.
    ///
    /// Also performs the periodic overload ping: a worker that keeps
    /// getting chunks without waiting is continuously busy, and every
    /// `clone_interval` it asks the master to consider cloning its task.
    pub fn next_chunk(&mut self, i: usize) -> Result<Option<Chunk>, EngineError> {
        self.maybe_ping();
        self.inputs[i].next_chunk()
    }

    /// Appends `record` to output `o`.
    pub fn write_record<T: Record>(&mut self, o: usize, record: &T) -> Result<(), EngineError> {
        self.outputs[o].write_record(record)
    }

    /// Inserts a pre-built chunk into output `o`.
    pub fn emit_chunk(&mut self, o: usize, chunk: Chunk) -> Result<(), EngineError> {
        self.outputs[o].emit_chunk(chunk)
    }

    /// Decodes every record of input `i`'s next chunk, or `None` at end.
    pub fn next_records<T: Record>(&mut self, i: usize) -> Result<Option<Vec<T>>, EngineError> {
        match self.next_chunk(i)? {
            None => Ok(None),
            Some(c) => Ok(Some(hurricane_format::decode_all::<T>(&c)?)),
        }
    }

    /// Reads *all* of input `i` non-destructively, without advancing the
    /// shared read pointer.
    ///
    /// This is the bag API's concurrent-full-scan mode (paper §4.3:
    /// "allowing multiple workers to read an entire bag concurrently").
    /// Use it for broadcast-style inputs that every clone needs in full —
    /// e.g. the sorted build side of a hash join, or the rank vector in a
    /// PageRank iteration — while the *other* input is consumed chunk-by-
    /// chunk to partition the work among clones.
    pub fn snapshot_input<T: Record>(&mut self, i: usize) -> Result<Vec<T>, EngineError> {
        let chunks = self.cluster.snapshot_bag(self.input_bags[i])?;
        let mut out = Vec::new();
        for c in &chunks {
            out.extend(hurricane_format::decode_all::<T>(c)?);
        }
        Ok(out)
    }

    /// Flushes all output writers. Called by the worker after the logic
    /// returns; exposed for logic that interleaves phases.
    pub fn flush_outputs(&mut self) -> Result<(), EngineError> {
        for w in &mut self.outputs {
            w.flush()?;
        }
        Ok(())
    }

    fn maybe_ping(&mut self) {
        let Some(tx) = &self.clone_tx else { return };
        if self.last_ping.elapsed() >= self.clone_interval {
            self.last_ping = Instant::now();
            let _ = tx.send(ControlMsg::CloneRequest {
                task: self.instance.task.0,
                generation: self.generation,
                node: self.node,
            });
        }
    }
}

/// Task code: what one circle in the application graph executes. Clones run
/// the same logic on the same input bag(s); the bag's exactly-once chunk
/// delivery partitions the work among them dynamically.
pub trait TaskLogic: Send + Sync + 'static {
    /// Runs the task body. Loop over `ctx.next_chunk(..)` until `None`;
    /// return `Err(EngineError::Cancelled)` bubbles untouched.
    fn run(&self, ctx: &mut TaskCtx) -> Result<(), EngineError>;
}

impl<F> TaskLogic for F
where
    F: Fn(&mut TaskCtx) -> Result<(), EngineError> + Send + Sync + 'static,
{
    fn run(&self, ctx: &mut TaskCtx) -> Result<(), EngineError> {
        self(ctx)
    }
}

/// Application-specified merge: reconciles the partial outputs of a task's
/// clones into the single output an uncloned run would have produced
/// (paper §2.3).
pub trait MergeLogic: Send + Sync + 'static {
    /// Merges the per-clone partials for output index `output_index` into
    /// `out`. `partials[i]` reads clone `i`'s partial output bag.
    fn merge(
        &self,
        output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError>;
}

impl<F> MergeLogic for F
where
    F: Fn(usize, &mut [BagReader], &mut BagWriter) -> Result<(), EngineError>
        + Send
        + Sync
        + 'static,
{
    fn merge(
        &self,
        output_index: usize,
        partials: &mut [BagReader],
        out: &mut BagWriter,
    ) -> Result<(), EngineError> {
        self(output_index, partials, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_storage::ClusterConfig;

    #[test]
    fn killswitch_generations() {
        let ks = KillSwitch::new();
        assert!(!ks.is_killed(1, 0));
        ks.kill(1, 2);
        assert!(ks.is_killed(1, 0));
        assert!(ks.is_killed(1, 2));
        assert!(!ks.is_killed(1, 3), "newer generation survives");
        assert!(!ks.is_killed(2, 0), "other tasks unaffected");
        // Kill level never regresses.
        ks.kill(1, 1);
        assert!(ks.is_killed(1, 2));
    }

    #[test]
    fn killswitch_shutdown_kills_all() {
        let ks = KillSwitch::new();
        ks.shutdown_all();
        assert!(ks.is_killed(7, 99));
        assert!(ks.is_shutdown());
    }

    #[test]
    fn writer_reader_roundtrip() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open(cluster.clone(), bag, 1, 64);
        for i in 0..100u64 {
            w.write_record(&(i, i * 3)).unwrap();
        }
        w.flush().unwrap();
        cluster.seal_bag(bag).unwrap();
        assert!(w.chunks_written() > 1);
        let mut r = BagReader::open(cluster, bag, 2, 4, None);
        let mut seen = Vec::new();
        while let Some(c) = r.next_chunk().unwrap() {
            seen.extend(hurricane_format::decode_all::<(u64, u64)>(&c).unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen.len(), 100);
        assert_eq!(seen[99], (99, 297));
        assert_eq!(r.chunks_read(), w.chunks_written());
    }

    #[test]
    fn writer_rejects_oversized_record() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open(cluster, bag, 1, 8);
        let err = w.write_record(&"way too long for eight bytes".to_string());
        assert!(matches!(err, Err(EngineError::Codec(_))));
    }

    #[test]
    fn reader_cancellation() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open(cluster.clone(), bag, 1, 32);
        for i in 0..10u64 {
            w.write_record(&i).unwrap();
        }
        w.flush().unwrap();
        cluster.seal_bag(bag).unwrap();
        let kill = Arc::new(KillSwitch::new());
        let probe = CancelProbe {
            kill: kill.clone(),
            task: 5,
            generation: 0,
            node_alive: Arc::new(AtomicBool::new(true)),
        };
        let mut r = BagReader::open(cluster, bag, 2, 2, Some(probe));
        assert!(r.next_chunk().unwrap().is_some());
        kill.kill(5, 0);
        assert_eq!(r.next_chunk(), Err(EngineError::Cancelled));
    }

    #[test]
    fn reader_node_death_cancels() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let bag = cluster.create_bag();
        cluster.seal_bag(bag).unwrap();
        let alive = Arc::new(AtomicBool::new(true));
        let probe = CancelProbe {
            kill: Arc::new(KillSwitch::new()),
            task: 1,
            generation: 0,
            node_alive: alive.clone(),
        };
        let mut r = BagReader::open(cluster, bag, 3, 2, Some(probe));
        alive.store(false, Ordering::Relaxed);
        assert_eq!(r.next_chunk(), Err(EngineError::Cancelled));
    }

    #[test]
    fn batched_writer_defers_then_delivers_all() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open_batched(cluster.clone(), bag, 1, 64, 8);
        for i in 0..20u8 {
            w.emit_chunk(Chunk::from_vec(vec![i])).unwrap();
        }
        // 20 chunks emitted; 16 inserted via 2 full batches, 4 pending.
        assert_eq!(w.chunks_written(), 20);
        assert_eq!(cluster.sample_bag(bag).unwrap().total_chunks, 16);
        w.flush().unwrap();
        assert_eq!(cluster.sample_bag(bag).unwrap().total_chunks, 20);
    }

    #[test]
    fn batched_writer_record_roundtrip() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open_batched(cluster.clone(), bag, 1, 16, 4);
        for i in 0..200u64 {
            w.write_record(&i).unwrap();
        }
        w.flush().unwrap();
        cluster.seal_bag(bag).unwrap();
        let mut r = BagReader::open(cluster, bag, 2, 4, None);
        let mut seen = Vec::new();
        while let Some(c) = r.next_chunk().unwrap() {
            seen.extend(hurricane_format::decode_all::<u64>(&c).unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..200u64).collect::<Vec<_>>());
        assert_eq!(r.chunks_read(), w.chunks_written());
    }

    #[test]
    fn emit_chunk_flushes_buffer_first() {
        // Interleaving write_record and emit_chunk must preserve record
        // framing: the buffered records are sealed before the raw chunk.
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagWriter::open(cluster.clone(), bag, 1, 1024);
        w.write_record(&1u64).unwrap();
        w.emit_chunk(Chunk::from_vec(vec![9])).unwrap();
        w.flush().unwrap();
        cluster.seal_bag(bag).unwrap();
        assert_eq!(w.chunks_written(), 2);
    }
}
