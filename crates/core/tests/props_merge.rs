//! Property pin for the merge spill contract (`merges` module doc):
//! a bounded [`KeyedMerge`] must produce an output chunk stream
//! byte-identical to the unbounded in-memory path at *any* memory budget
//! — including budget 0, which spills after every input chunk — for any
//! chunk size and any skew of keys across partials.

use hurricane_common::BagId;
use hurricane_core::merges::KeyedMerge;
use hurricane_core::task::{BagReader, BagWriter, SpillSink};
use hurricane_core::{EngineError, MergeLogic};
use hurricane_storage::{BagClient, ClusterConfig, StorageCluster};
use proptest::prelude::*;
use std::sync::Arc;

/// Minimal spill sink over the test cluster: runs pinned to node 0 so
/// their chunks read back in insertion order.
struct PinnedSink {
    cluster: Arc<StorageCluster>,
    chunk_size: usize,
    seed: u64,
}

impl SpillSink for PinnedSink {
    fn create_run(&mut self) -> Result<BagWriter, EngineError> {
        let bag = self.cluster.create_bag();
        self.seed += 1;
        let client = BagClient::new(self.cluster.clone(), bag, self.seed).with_pinned_node(0);
        Ok(BagWriter::open_batched_client(client, self.chunk_size, 1))
    }

    fn open_run(&mut self, bag: BagId) -> Result<BagReader, EngineError> {
        self.cluster.seal_bag(bag)?;
        self.seed += 1;
        Ok(BagReader::open(
            self.cluster.clone(),
            bag,
            self.seed,
            1,
            None,
        ))
    }

    fn release_run(&mut self, bag: BagId) -> Result<(), EngineError> {
        self.cluster.collect_bag(bag)?;
        Ok(())
    }
}

/// Writes each partial's records into a sealed bag and returns readers.
fn build_partials(cluster: &Arc<StorageCluster>, parts: &[Vec<(u32, u64)>]) -> Vec<BagReader> {
    parts
        .iter()
        .enumerate()
        .map(|(i, recs)| {
            let bag = cluster.create_bag();
            let mut w = BagWriter::open(cluster.clone(), bag, i as u64, 256);
            for rec in recs {
                w.write_record(rec).unwrap();
            }
            w.flush().unwrap();
            cluster.seal_bag(bag).unwrap();
            BagReader::open(cluster.clone(), bag, 1000 + i as u64, 4, None)
        })
        .collect()
}

/// Runs `merge` unbounded and bounded over identical inputs; asserts the
/// output chunk streams are byte-equal.
fn assert_spill_agrees<M: MergeLogic>(
    merge: &M,
    parts: &[Vec<(u32, u64)>],
    budget: u64,
    chunk_size: usize,
) -> Result<(), proptest::TestCaseError> {
    let cluster = StorageCluster::new(2, ClusterConfig::default());
    let chunks_of = |bag| -> Vec<Vec<u8>> {
        cluster.seal_bag(bag).unwrap();
        cluster
            .snapshot_bag(bag)
            .unwrap()
            .iter()
            .map(|c| c.bytes().to_vec())
            .collect()
    };

    let mut readers = build_partials(&cluster, parts);
    let plain_bag = cluster.create_bag();
    let mut out = BagWriter::open(cluster.clone(), plain_bag, 77, chunk_size);
    merge.merge(0, &mut readers, &mut out).unwrap();
    out.flush().unwrap();

    let mut readers = build_partials(&cluster, parts);
    let bounded_bag = cluster.create_bag();
    let mut out = BagWriter::open(cluster.clone(), bounded_bag, 77, chunk_size);
    let mut sink = PinnedSink {
        cluster: cluster.clone(),
        chunk_size,
        seed: 9000,
    };
    merge
        .merge_bounded(0, &mut readers, &mut out, budget, &mut sink)
        .unwrap();
    out.flush().unwrap();

    prop_assert_eq!(
        chunks_of(plain_bag),
        chunks_of(bounded_bag),
        "budget {} chunk_size {} diverged",
        budget,
        chunk_size
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spilled_merge_agrees_with_in_memory(
        parts in prop::collection::vec(
            prop::collection::vec((0u32..64, any::<u64>()), 0..160),
            1..4,
        ),
        budget in 0u64..1500,
        chunk_size in 48usize..320,
        folding in prop::bool::ANY,
    ) {
        // Both keyed merge logics — the owned combiner and the in-place
        // borrowed fold — under the same associative operation.
        if folding {
            let merge = KeyedMerge::<u32, u64, _>::folding(|acc, v: u64| {
                *acc = acc.wrapping_add(v)
            });
            assert_spill_agrees(&merge, &parts, budget, chunk_size)?;
        } else {
            let merge =
                KeyedMerge::<u32, u64, _>::new(|a: u64, b: u64| a.wrapping_add(b));
            assert_spill_agrees(&merge, &parts, budget, chunk_size)?;
        }
    }

    #[test]
    fn spill_every_record_still_agrees(
        parts in prop::collection::vec(
            prop::collection::vec((0u32..16, any::<u64>()), 1..80),
            1..3,
        ),
        chunk_size in 48usize..128,
    ) {
        // Budget 0: the table drains after every chunk — the worst case
        // the ISSUE calls "spill every record".
        let merge = KeyedMerge::<u32, u64, _>::new(|a: u64, b: u64| a.wrapping_add(b));
        assert_spill_agrees(&merge, &parts, 0, chunk_size)?;
    }
}
