//! End-to-end tests of the Hurricane runtime: correctness under cloning,
//! merge reconciliation, and fault injection.

use hurricane_core::graph::GraphBuilder;
use hurricane_core::merges::{KeyedMerge, ReduceMerge};
use hurricane_core::task::TaskCtx;
use hurricane_core::{EngineError, HurricaneApp, HurricaneConfig};
use hurricane_storage::{ClusterConfig, StorageCluster};
use std::sync::Arc;
use std::time::Duration;

/// A per-chunk artificial compute cost that makes tasks long enough to
/// clone (and to kill mid-flight) at laptop scale.
fn busy_work(micros: u64) {
    let t = std::time::Instant::now();
    while t.elapsed() < Duration::from_micros(micros) {
        std::hint::spin_loop();
    }
}

fn test_config() -> HurricaneConfig {
    // `with_env_overrides` lets CI's low-memory leg re-run this whole
    // suite under a tiny merge budget / spill threshold without a
    // second copy of the tests.
    HurricaneConfig {
        compute_nodes: 4,
        worker_slots: 2,
        chunk_size: 1024,
        clone_interval: Duration::from_millis(10),
        master_poll: Duration::from_millis(1),
        ..Default::default()
    }
    .with_env_overrides()
}

/// Builds the two-stage "sum per key" pipeline used by several tests:
/// phase 1 maps (key, value) to per-key totals held locally per clone,
/// phase 2 reduces clone partials with a merge. Returns (app, input bag,
/// sum bag).
fn sum_pipeline(
    cluster: Arc<StorageCluster>,
    config: HurricaneConfig,
    work_per_chunk_us: u64,
) -> (
    HurricaneApp,
    hurricane_core::GraphBag,
    hurricane_core::GraphBag,
) {
    let mut g = GraphBuilder::new();
    let input = g.source("values");
    let summed = g.bag("summed");
    g.task_with_merge(
        "sum",
        &[input],
        &[summed],
        move |ctx: &mut TaskCtx| {
            let mut total = 0u64;
            while let Some(recs) = ctx.next_records::<u64>(0)? {
                busy_work(work_per_chunk_us);
                total += recs.iter().sum::<u64>();
            }
            ctx.write_record(0, &total)?;
            Ok(())
        },
        ReduceMerge::new(|a: u64, b: u64| a + b),
    );
    let app = HurricaneApp::deploy(g.build().unwrap(), cluster, config).unwrap();
    (app, input, summed)
}

#[test]
fn sum_with_merge_is_exact() {
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let (mut app, input, summed) = sum_pipeline(cluster, test_config(), 0);
    let n = 10_000u64;
    app.fill_source(input, 0..n).unwrap();
    let report = app.run().unwrap();
    let out: Vec<u64> = app.read_records(summed).unwrap();
    assert_eq!(out.len(), 1, "merge must produce a single total");
    assert_eq!(out[0], n * (n - 1) / 2);
    assert!(report.merges_run >= 1);
}

#[test]
fn cloning_kicks_in_on_long_tasks() {
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let config = HurricaneConfig {
        chunk_size: 256,
        ..test_config()
    };
    let (mut app, input, summed) = sum_pipeline(cluster, config, 500);
    let n = 40_000u64;
    app.fill_source(input, 0..n).unwrap();
    let report = app.run().unwrap();
    let out: Vec<u64> = app.read_records(summed).unwrap();
    assert_eq!(out, vec![n * (n - 1) / 2], "cloned run must stay exact");
    assert!(
        report.total_clones >= 1,
        "a CPU-bound task should have been cloned: {report:?}"
    );
}

#[test]
fn sum_with_merge_is_exact_over_storage_rpc() {
    // The same pipeline with the data plane routed through the storage
    // RPC boundary: workers' readers become pipelines of b outstanding
    // requests and writers flush through per-node server loops. The
    // result must be bit-identical to the direct path.
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let (mut app, input, summed) = sum_pipeline(cluster, test_config().with_storage_rpc(), 0);
    let n = 10_000u64;
    app.fill_source(input, 0..n).unwrap();
    let report = app.run().unwrap();
    let out: Vec<u64> = app.read_records(summed).unwrap();
    assert_eq!(out, vec![n * (n - 1) / 2]);
    assert!(report.merges_run >= 1);
}

#[test]
fn durable_spilling_storage_completes_a_full_run() {
    // The whole pipeline on disk-backed storage nodes (`SEGMENT.md`)
    // with a resident budget far below the data volume: the job must
    // stay exact while every node's in-memory footprint remains bounded
    // by the spill threshold (plus one insert batch of slack — spilling
    // runs after each batch lands).
    let dir =
        std::env::temp_dir().join(format!("hurricane-runtime-durable-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = HurricaneConfig {
        spill_threshold_bytes: 32 * 1024,
        ..test_config()
    }
    .with_env_overrides() // the CI low-memory leg shrinks the budget here
    .with_data_dir(&dir);
    let threshold = config.spill_threshold_bytes;
    let slack = (config.chunk_size * config.batch_factor) as u64;

    let mut g = GraphBuilder::new();
    let input = g.source("values");
    let summed = g.bag("summed");
    g.task_with_merge(
        "sum",
        &[input],
        &[summed],
        |ctx: &mut TaskCtx| {
            let mut total = 0u64;
            while let Some(recs) = ctx.next_records::<u64>(0)? {
                total += recs.iter().sum::<u64>();
            }
            ctx.write_record(0, &total)?;
            Ok(())
        },
        ReduceMerge::new(|a: u64, b: u64| a + b),
    );
    let mut app =
        HurricaneApp::deploy_with_storage(g.build().unwrap(), 4, ClusterConfig::default(), config)
            .unwrap();

    let n = 40_000u64; // 320 KB of records, 10x the resident budget.
    app.fill_source(input, 0..n).unwrap();
    let cluster = app.cluster().clone();
    for i in 0..cluster.num_nodes() {
        let node = cluster.node(i);
        assert!(node.is_durable(), "config.data_dir ignored");
        assert!(
            node.resident_bytes() <= threshold + slack,
            "node {i} resident {} exceeds budget after fill",
            node.resident_bytes()
        );
    }

    let report = app.run().unwrap();
    let out: Vec<u64> = app.read_records(summed).unwrap();
    assert_eq!(out, vec![n * (n - 1) / 2], "spilled run lost exactness");
    assert!(report.merges_run >= 1);
    for i in 0..cluster.num_nodes() {
        assert!(
            cluster.node(i).resident_bytes() <= threshold + slack,
            "node {i} resident {} exceeds budget after run",
            cluster.node(i).resident_bytes()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rpc_run_survives_compute_node_failure() {
    // Fault recovery (cancel, rewind, restart at a bumped generation)
    // exercised end to end with every bag access flowing over RPC.
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let (app, input, summed) = sum_pipeline(cluster, test_config().with_storage_rpc(), 200);
    let n = 15_000u64;
    app.fill_source(input, 0..n).unwrap();
    let running = app.start().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    running.kill_compute_node(1);
    running.wait().unwrap();
    let out: Vec<u64> = app.read_records(summed).unwrap();
    assert_eq!(out, vec![n * (n - 1) / 2]);
}

#[test]
fn hurricane_nc_never_clones() {
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let (mut app, input, summed) = sum_pipeline(cluster, test_config().without_cloning(), 300);
    let n = 5_000u64;
    app.fill_source(input, 0..n).unwrap();
    let report = app.run().unwrap();
    assert_eq!(report.total_clones, 0);
    assert_eq!(report.clone_requests, 0, "workers should not even ping");
    let out: Vec<u64> = app.read_records(summed).unwrap();
    assert_eq!(out, vec![n * (n - 1) / 2]);
}

#[test]
fn multi_stage_pipeline_with_concat_stage() {
    // phase1: route evens/odds into two bags (default concat merge —
    // clones write straight into the shared outputs). phase2: sum each.
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let mut g = GraphBuilder::new();
    let input = g.source("numbers");
    let evens = g.bag("evens");
    let odds = g.bag("odds");
    g.task("route", &[input], &[evens, odds], |ctx: &mut TaskCtx| {
        while let Some(recs) = ctx.next_records::<u64>(0)? {
            for r in recs {
                ctx.write_record((r % 2) as usize, &r)?;
            }
        }
        Ok(())
    });
    let mut sums = Vec::new();
    for (name, bag) in [("sum-evens", evens), ("sum-odds", odds)] {
        let out = g.bag(format!("{name}.out"));
        g.task_with_merge(
            name,
            &[bag],
            &[out],
            |ctx: &mut TaskCtx| {
                let mut total = 0u64;
                while let Some(recs) = ctx.next_records::<u64>(0)? {
                    total += recs.iter().sum::<u64>();
                }
                ctx.write_record(0, &total)?;
                Ok(())
            },
            ReduceMerge::new(|a: u64, b: u64| a + b),
        );
        sums.push(out);
    }
    let mut app = HurricaneApp::deploy(g.build().unwrap(), cluster, test_config()).unwrap();
    let n = 10_000u64;
    app.fill_source(input, 0..n).unwrap();
    app.run().unwrap();
    let even_sum: Vec<u64> = app.read_records(sums[0]).unwrap();
    let odd_sum: Vec<u64> = app.read_records(sums[1]).unwrap();
    let expect_even: u64 = (0..n).filter(|x| x % 2 == 0).sum();
    let expect_odd: u64 = (0..n).filter(|x| x % 2 == 1).sum();
    assert_eq!(even_sum, vec![expect_even]);
    assert_eq!(odd_sum, vec![expect_odd]);
}

#[test]
fn compute_node_failure_recovers_exactly() {
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let (app, input, summed) = sum_pipeline(cluster, test_config(), 200);
    let n = 20_000u64;
    app.fill_source(input, 0..n).unwrap();
    let running = app.start().unwrap();
    std::thread::sleep(Duration::from_millis(60));
    running.kill_compute_node(1);
    let report = running.wait().unwrap();
    let out: Vec<u64> = app.read_records(summed).unwrap();
    assert_eq!(
        out,
        vec![n * (n - 1) / 2],
        "restarted task must produce the exact result (exactly-once reads)"
    );
    // The killed node either hosted work (restart observed) or happened to
    // be idle; both are legal, but the run must have completed regardless.
    assert!(report.restarts <= 4);
}

#[test]
fn parallel_merge_outputs_survive_compute_node_failure() {
    // A four-output task whose merge phase dispatches output indices
    // across a worker pool (merge_parallelism > 1), with a compute node
    // killed mid-run: per-output totals must still be exact.
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let config = HurricaneConfig {
        merge_parallelism: 4,
        ..test_config()
    };
    let mut g = GraphBuilder::new();
    let input = g.source("values");
    let outs: Vec<_> = (0..4).map(|i| g.bag(format!("residue.{i}"))).collect();
    g.task_with_merge(
        "scatter-sum",
        &[input],
        &outs,
        move |ctx: &mut TaskCtx| {
            let mut totals = [0u64; 4];
            while let Some(recs) = ctx.next_records::<u64>(0)? {
                busy_work(200);
                for v in recs {
                    totals[(v % 4) as usize] += v;
                }
            }
            for (j, t) in totals.iter().enumerate() {
                ctx.write_record(j, t)?;
            }
            Ok(())
        },
        ReduceMerge::new(|a: u64, b: u64| a + b),
    );
    let app = HurricaneApp::deploy(g.build().unwrap(), cluster, config).unwrap();
    let n = 20_000u64;
    app.fill_source(input, 0..n).unwrap();
    let running = app.start().unwrap();
    std::thread::sleep(Duration::from_millis(60));
    running.kill_compute_node(2);
    running.wait().unwrap();
    for (j, &out_bag) in outs.iter().enumerate() {
        let got: Vec<u64> = app.read_records(out_bag).unwrap();
        let expect: u64 = (0..n).filter(|v| v % 4 == j as u64).sum();
        assert_eq!(got, vec![expect], "output {j} total");
    }
}

#[test]
fn node_failure_then_restart_rejoins() {
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let (app, input, summed) = sum_pipeline(cluster, test_config(), 200);
    let n = 10_000u64;
    app.fill_source(input, 0..n).unwrap();
    let running = app.start().unwrap();
    std::thread::sleep(Duration::from_millis(40));
    running.kill_compute_node(0);
    std::thread::sleep(Duration::from_millis(40));
    running.restart_compute_node(0);
    running.wait().unwrap();
    let out: Vec<u64> = app.read_records(summed).unwrap();
    assert_eq!(out, vec![n * (n - 1) / 2]);
}

#[test]
fn master_crash_and_recovery_mid_run() {
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let (app, input, summed) = sum_pipeline(cluster, test_config(), 200);
    let n = 20_000u64;
    app.fill_source(input, 0..n).unwrap();
    let mut running = app.start().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    running.crash_and_recover_master().unwrap();
    let report = running.wait().unwrap();
    let out: Vec<u64> = app.read_records(summed).unwrap();
    assert_eq!(out, vec![n * (n - 1) / 2]);
    assert!(report.master_recoveries <= 1);
}

#[test]
fn master_crash_recovery_twice() {
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let (app, input, summed) = sum_pipeline(cluster, test_config(), 150);
    let n = 15_000u64;
    app.fill_source(input, 0..n).unwrap();
    let mut running = app.start().unwrap();
    for _ in 0..2 {
        std::thread::sleep(Duration::from_millis(30));
        running.crash_and_recover_master().unwrap();
    }
    running.wait().unwrap();
    let out: Vec<u64> = app.read_records(summed).unwrap();
    assert_eq!(out, vec![n * (n - 1) / 2]);
}

/// Builds a fan-out pipeline whose task splats every input chunk
/// verbatim to `k` outputs via `TaskCtx::splat_chunk`, with per-chunk
/// busy work so the run is long enough to clone and to kill into.
/// Returns (app, input bag, output bags).
fn splat_pipeline(
    cluster: Arc<StorageCluster>,
    config: HurricaneConfig,
    k: usize,
    work_per_chunk_us: u64,
) -> (
    HurricaneApp,
    hurricane_core::GraphBag,
    Vec<hurricane_core::GraphBag>,
) {
    let mut g = GraphBuilder::new();
    let input = g.source("values");
    let outs: Vec<hurricane_core::GraphBag> = (0..k).map(|i| g.bag(format!("copy.{i}"))).collect();
    let out_indices: Vec<usize> = (0..k).collect();
    g.task("fanout", &[input], &outs, move |ctx: &mut TaskCtx| {
        while let Some(chunk) = ctx.next_chunk(0)? {
            busy_work(work_per_chunk_us);
            ctx.splat_chunk(&out_indices, &chunk)?;
        }
        Ok(())
    });
    let app = HurricaneApp::deploy(g.build().unwrap(), cluster, config).unwrap();
    (app, input, outs)
}

fn read_sorted(app: &HurricaneApp, bag: hurricane_core::GraphBag) -> Vec<u64> {
    let mut v: Vec<u64> = app.read_records(bag).unwrap();
    v.sort_unstable();
    v
}

#[test]
fn chunk_splatting_delivers_identical_copies_to_all_outputs() {
    // Exactly-once delivery through the splat path: every output bag must
    // hold exactly the input multiset, even with clones racing over the
    // shared input.
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let config = HurricaneConfig {
        chunk_size: 256,
        ..test_config()
    };
    let (mut app, input, outs) = splat_pipeline(cluster, config, 3, 300);
    let n = 20_000u64;
    app.fill_source(input, 0..n).unwrap();
    let report = app.run().unwrap();
    let expect: Vec<u64> = (0..n).collect();
    for (i, &bag) in outs.iter().enumerate() {
        assert_eq!(
            read_sorted(&app, bag),
            expect,
            "output {i} must hold exactly the input multiset"
        );
    }
    // The splatted copies must be chunk-identical across outputs, not
    // just record-identical: collect each bag's chunk payloads as a
    // multiset and compare.
    let mut chunk_sets: Vec<Vec<Vec<u8>>> = outs
        .iter()
        .map(|&b| {
            let mut chunks: Vec<Vec<u8>> = app
                .read_chunks(b)
                .unwrap()
                .iter()
                .map(|c| c.bytes().to_vec())
                .collect();
            chunks.sort();
            chunks
        })
        .collect();
    let first = chunk_sets.remove(0);
    for (i, set) in chunk_sets.iter().enumerate() {
        assert_eq!(&first, set, "output {} chunks differ from output 0", i + 1);
    }
    let _ = report;
}

#[test]
fn chunk_splatting_survives_compute_node_failure() {
    // Kill a node mid-run: the restarted task's rewind must not
    // duplicate or drop any splatted chunk in any of the k outputs.
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let config = HurricaneConfig {
        chunk_size: 256,
        ..test_config()
    };
    let (app, input, outs) = splat_pipeline(cluster, config, 3, 300);
    let n = 20_000u64;
    app.fill_source(input, 0..n).unwrap();
    let running = app.start().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    running.kill_compute_node(1);
    running.wait().unwrap();
    let expect: Vec<u64> = (0..n).collect();
    for (i, &bag) in outs.iter().enumerate() {
        assert_eq!(
            read_sorted(&app, bag),
            expect,
            "output {i} must survive the failure with exactly-once contents"
        );
    }
}

#[test]
fn task_error_aborts_run() {
    let cluster = StorageCluster::new(2, ClusterConfig::default());
    let mut g = GraphBuilder::new();
    let input = g.source("in");
    let out = g.bag("out");
    g.task("explode", &[input], &[out], |ctx: &mut TaskCtx| {
        let _ = ctx.next_chunk(0)?;
        Err(EngineError::TaskFailed {
            task: ctx.instance().task,
            message: "deliberate".into(),
        })
    });
    let mut app = HurricaneApp::deploy(g.build().unwrap(), cluster, test_config()).unwrap();
    app.fill_source(input, 0..10u64).unwrap();
    let err = app.run().unwrap_err();
    assert!(matches!(err, EngineError::TaskFailed { .. }), "{err}");
}

#[test]
fn skewed_two_region_pipeline_clones_the_heavy_region() {
    // A miniature of the paper's central claim: two downstream tasks, one
    // with 50x the data. With cloning, the heavy task should attract
    // clones while the light one completes on a single worker.
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let mut g = GraphBuilder::new();
    let input = g.source("records");
    let heavy = g.bag("region.heavy");
    let light = g.bag("region.light");
    g.task("split", &[input], &[heavy, light], |ctx: &mut TaskCtx| {
        while let Some(recs) = ctx.next_records::<u64>(0)? {
            for r in recs {
                ctx.write_record(if r % 51 == 0 { 1 } else { 0 }, &r)?;
            }
        }
        Ok(())
    });
    let mut outs = Vec::new();
    for (name, bag) in [("heavy-sum", heavy), ("light-sum", light)] {
        let out = g.bag(format!("{name}.out"));
        g.task_with_merge(
            name,
            &[bag],
            &[out],
            |ctx: &mut TaskCtx| {
                let mut total = 0u64;
                while let Some(recs) = ctx.next_records::<u64>(0)? {
                    busy_work(400);
                    total += recs.iter().sum::<u64>();
                }
                ctx.write_record(0, &total)?;
                Ok(())
            },
            ReduceMerge::new(|a: u64, b: u64| a + b),
        );
        outs.push(out);
    }
    let mut app = HurricaneApp::deploy(g.build().unwrap(), cluster, test_config()).unwrap();
    let n = 30_000u64;
    app.fill_source(input, 0..n).unwrap();
    let report = app.run().unwrap();
    let heavy_sum: Vec<u64> = app.read_records(outs[0]).unwrap();
    let light_sum: Vec<u64> = app.read_records(outs[1]).unwrap();
    let expect_light: u64 = (0..n).filter(|x| x % 51 == 0).sum();
    let expect_heavy: u64 = (0..n).filter(|x| x % 51 != 0).sum();
    assert_eq!(heavy_sum, vec![expect_heavy]);
    assert_eq!(light_sum, vec![expect_light]);
    let heavy_task = app.graph().task_by_name("heavy-sum").unwrap();
    let heavy_clones = report
        .clones_per_task
        .get(&heavy_task.0)
        .copied()
        .unwrap_or(0);
    assert!(
        heavy_clones >= 1,
        "the heavy region should attract clones: {report:?}"
    );
}

#[test]
fn bounded_merge_zipf_groupby_survives_compute_node_kill() {
    // The spill tentpole end to end: a Zipf-skewed group-by whose
    // distinct-key merge state (~500 keys) dwarfs `merge_memory_budget`
    // (a few table entries), with a compute node killed mid-run. The
    // keyed merge must spill to scratch runs, re-fold them, and still
    // produce exact per-key counts in sorted chunks — and the retried
    // merge's scratch and outputs from the killed attempt must not leak
    // extra records into the output.
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let config = HurricaneConfig {
        merge_memory_budget: 512,
        ..test_config()
    };
    let mut g = GraphBuilder::new();
    let input = g.source("events");
    let counts = g.bag("counts");
    g.task_with_merge(
        "count-by-key",
        &[input],
        &[counts],
        |ctx: &mut TaskCtx| {
            let mut local: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
            while let Some(recs) = ctx.next_records::<u32>(0)? {
                busy_work(800);
                for k in recs {
                    *local.entry(k).or_insert(0) += 1;
                }
            }
            let mut sorted: Vec<(u32, u64)> = local.into_iter().collect();
            sorted.sort_unstable();
            for rec in &sorted {
                ctx.write_record(0, rec)?;
            }
            Ok(())
        },
        KeyedMerge::<u32, u64, _>::new(|a, b| a + b),
    );
    let app = HurricaneApp::deploy(g.build().unwrap(), cluster, config).unwrap();

    // Deterministic Zipf(1.1) sampler over 500 keys (inverse CDF over
    // SplitMix64 draws).
    let keys = 500usize;
    let weights: Vec<f64> = (1..=keys).map(|r| 1.0 / (r as f64).powf(1.1)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(keys);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = 30_000;
    let mut expect: std::collections::BTreeMap<u32, u64> = Default::default();
    let sample: Vec<u32> = (0..n)
        .map(|_| {
            let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
            let k = cdf.partition_point(|&c| c < u) as u32;
            *expect.entry(k).or_insert(0) += 1;
            k
        })
        .collect();
    app.fill_source(input, sample).unwrap();

    let running = app.start().unwrap();
    std::thread::sleep(Duration::from_millis(30));
    running.kill_compute_node(1);
    running.wait().unwrap();

    // Each output chunk must be internally ascending (the keyed merge
    // emits sorted output), but chunk order across storage nodes is not
    // part of the bag contract: bags are FIFO per node and unordered
    // across nodes, and a restarted merge's writer draws a fresh
    // placement permutation, so the chunks may read back transposed.
    // Global byte-identity of the spilled fold is pinned where ordering
    // is defined — the merge-layer proptests in `props_merge.rs`.
    for c in &app.read_chunks(counts).unwrap() {
        let recs: Vec<(u32, u64)> = hurricane_format::decode_all(c).unwrap();
        assert!(
            recs.windows(2).all(|w| w[0].0 < w[1].0),
            "keyed merge chunk must be in ascending key order"
        );
    }
    let mut got: Vec<(u32, u64)> = app.read_records(counts).unwrap();
    got.sort_unstable();
    assert!(
        got.windows(2).all(|w| w[0].0 < w[1].0),
        "duplicate key in merge output: the retried merge leaked records"
    );
    let expect: Vec<(u32, u64)> = expect.into_iter().collect();
    assert_eq!(got, expect, "spilled group-by lost exactness");
}
