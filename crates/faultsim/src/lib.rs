//! Deterministic fault injection for the storage RPC protocol.
//!
//! This crate runs the *real* protocol stack — [`RpcPort`]'s coalescer
//! and replica fan-out, `NodeConnection`'s correlation slab and retry
//! loop, the prefetcher pipeline, and the server-side dedup window —
//! over a simulated wire that drops, duplicates, delays, reorders, and
//! partitions messages on a virtual clock, all reproducible from one
//! `u64` seed.
//!
//! # Why a simulated wire
//!
//! Replicated writes, failover rerouting, and exactly-once delivery are
//! distributed-systems claims; exercising them over well-behaved
//! in-process channels tests the happy path only. The simulator makes
//! the unhappy paths *schedulable*: "partition node 2 mid-insert-burst",
//! "crash the primary between the backup ack and the primary write",
//! "duplicate every envelope" become one-line scenario scripts whose
//! end-state invariants are checked against the actual node logs.
//!
//! # Virtual clock and seed discipline
//!
//! See [`net`] for the full model. In short: virtual time advances only
//! when an endpoint waits, wire faults are drawn from per-link
//! [`DetRng`](hurricane_common::DetRng) forks of the root seed, and
//! wait budgets are quantized so real-clock jitter cannot perturb the
//! schedule. A **single-threaded** scenario (one client thread driving
//! ports) is fully deterministic: same seed, same config, same call
//! sequence ⇒ byte-identical [`net::TraceEvent`] traces, which the
//! replay test asserts. Scenarios that spawn threads (the prefetcher
//! pipeline) remain seed-reproducible in their *fault schedule* but not
//! in event interleaving; they assert invariants, not traces.
//!
//! # Reproducing a CI failure
//!
//! The CI `faultsim` job sweeps seeds and every scenario prints its
//! seed (`faultsim: seed = …`) before running. To reproduce the failing
//! case locally:
//!
//! ```text
//! FAULTSIM_SEED=<seed from the log> cargo test -p hurricane-faultsim <test_name> -- --nocapture
//! ```
//!
//! Proptest cases print their own case seed and inputs on failure; the
//! schedule parameters in the panic message are the repro.
//!
//! [`RpcPort`]: hurricane_storage::RpcPort

pub mod net;
pub mod scenario;
pub mod store;

pub use net::{FaultAction, SimConfig, SimNet, SimTransport, TraceEvent};
pub use scenario::{
    assert_exactly_once, chunk_of, drain_all, scenario_seed, sweep_seeds, value_of, FaultSim,
};
pub use store::{DiskFaultConfig, DiskFaultCounts, DiskFaults, FaultyStore};
