//! The simulated wire: a virtual-clock event queue behind the real
//! [`Transport`] trait.
//!
//! One [`SimNet`] models the whole network of a storage cluster. Every
//! connection minted from it ([`SimNet::port`] / [`SimNet::transport`])
//! is an *endpoint* with a private reply inbox; requests and replies
//! travel as events on one shared queue ordered by `(virtual time,
//! insertion tick)`. Server dispatch happens inline at request-delivery
//! time through [`serve_deduped_traced`] — the exact code path the
//! threaded server pool runs — so the protocol under test is the real
//! one, minus the threads.
//!
//! # Virtual clock
//!
//! The clock (`now_us`, virtual microseconds) only advances when an
//! endpoint waits: `recv_timeout` converts its real-duration budget into
//! virtual time, runs every event due inside that budget, and advances
//! the clock to the earliest of "reply arrived", "next event", or the
//! budget's end. Waiting therefore costs almost no wall-clock time — a
//! 50 ms request timeout elapses in microseconds — while preserving the
//! causal order of deliveries, timeouts, and scheduled faults.
//!
//! Real-clock jitter must not leak into the virtual schedule: callers
//! compute residual timeouts from `Instant::now()`, so two runs hand the
//! transport slightly different durations (49.98 ms vs 49.99 ms). Budgets
//! are quantized up to a multiple of [`SimConfig::quantum_us`] (default
//! 1 ms), which absorbs sub-quantum jitter and keeps single-threaded
//! schedules bit-identical across runs.
//!
//! # Fault model
//!
//! Wire faults (drop / duplicate / delay) are decided per message at
//! *send* time from a per-link [`DetRng`] fork, so each (endpoint, node)
//! link has its own reproducible randomness stream. Reachability faults
//! ([`FaultAction::Partition`] / [`FaultAction::Crash`]) are checked at
//! *delivery* time: a message in flight when the partition lands is lost,
//! and a partition healing before delivery lets the message through —
//! both directions, requests and replies alike. [`FaultAction::Fail`] is
//! different in kind: the node stays reachable but answers every request
//! with `NodeDown`, the protocol-visible failure that triggers client
//! rerouting. A crash wipes the node's *memory*
//! ([`StorageNode::crash_lose_memory`]); its segment logs live on the
//! cluster's shared in-memory virtual disk
//! ([`hurricane_storage::SegmentStore::mem`]) and survive, and a restart
//! recovers all bag state from them by log scan — the same code path a
//! real `hurricane-node` takes restarting from its `--data-dir`. The
//! server-side dedup window lives beside the logs in the simulation's
//! shared state and is modeled durable too (see `SEGMENT.md` for the
//! caveat).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Weak};
use std::time::Duration;

use hurricane_common::{DetRng, StorageNodeId};
use hurricane_storage::cluster::StorageCluster;
use hurricane_storage::error::StorageError;
use hurricane_storage::membership::{Connect, Membership};
use hurricane_storage::node::StorageNode;
use hurricane_storage::rpc::{
    serve_deduped_traced, ReplyEnvelope, RequestEnvelope, RpcPort, ServedKind, ServerDedup,
    Transport,
};
use parking_lot::Mutex;

/// Knobs of one simulated network, all reproducible from `seed`.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Root seed; every per-link randomness stream is forked from it.
    pub seed: u64,
    /// Minimum one-way link delay (virtual µs).
    pub delay_min_us: u64,
    /// Maximum one-way link delay (virtual µs, inclusive).
    pub delay_max_us: u64,
    /// Per-message wire-loss probability in per-mille (0..=1000).
    pub drop_per_mille: u32,
    /// Per-message duplication probability in per-mille (0..=1000).
    pub dup_per_mille: u32,
    /// Wait-budget quantization step (virtual µs). Budgets handed to
    /// `recv_timeout` are rounded up to a multiple of this, absorbing
    /// the real-clock jitter in residual-timeout computations.
    pub quantum_us: u64,
    /// Request timeout for ports minted by [`SimNet::port`].
    pub timeout: Duration,
}

impl SimConfig {
    /// A fault-free network (delays only) — the baseline configuration;
    /// raise the fault rates or schedule [`FaultAction`]s from here.
    pub fn reliable(seed: u64) -> Self {
        Self {
            seed,
            delay_min_us: 20,
            delay_max_us: 200,
            drop_per_mille: 0,
            dup_per_mille: 0,
            quantum_us: 1000,
            timeout: Duration::from_millis(20),
        }
    }
}

/// One scripted fault, applied immediately or at a scheduled virtual
/// time. Node indices are taken modulo the cluster size, so randomly
/// generated schedules are always in range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Bidirectional network partition: messages to *and* from the node
    /// are lost at delivery time. The node itself keeps running.
    Partition(usize),
    /// Removes the node's partition.
    Heal(usize),
    /// SIGKILL-equivalent: like a partition at the transport level, but
    /// semantically the process is gone — anything in flight vanishes
    /// and the node's in-memory bag state is wiped
    /// ([`StorageNode::crash_lose_memory`]). Its segment logs (and the
    /// dedup window) survive on the virtual disk.
    Crash(usize),
    /// Brings a crashed node back, recovering every bag — chunks,
    /// consumed pointers, seal state — from its segment logs by log scan
    /// ([`StorageNode::restart_recover`]).
    Restart(usize),
    /// Protocol-visible failure ([`StorageNode::fail`]): the node stays
    /// reachable and answers `NodeDown`, the error clients reroute on.
    Fail(usize),
    /// Undoes [`FaultAction::Fail`] ([`StorageNode::recover`]).
    Recover(usize),
    /// Elastic growth (paper §3.4): a fresh node joins the cluster and
    /// the membership view mid-run. Clients pick it up on their next
    /// membership refresh; placement immediately includes it in new
    /// cycles.
    AddNode,
    /// Elastic shrink, paper-style "leave": the node starts *draining* —
    /// it refuses new inserts (placement skips it) but keeps serving its
    /// remaining chunks until empty. The slot is never reused.
    DrainNode(usize),
    /// The node's *disk* starts misbehaving: segment-log appends, syncs,
    /// and positioned reads roll faults at the attached
    /// [`DiskFaults`](crate::store::DiskFaults) controller's rates
    /// (ENOSPC, EIO, torn frames, fsync failure, read corruption). The
    /// node and the network stay healthy — only its storage medium lies.
    /// A no-op unless the simulation was built over a
    /// [`FaultyStore`](crate::store::FaultyStore)
    /// ([`FaultSim::new_with_disk`](crate::scenario::FaultSim::new_with_disk)).
    DiskFault(usize),
    /// Heals the node's disk: stops injecting new faults (bytes already
    /// torn or corrupt replies already served stay in history).
    DiskHeal(usize),
}

/// One observable simulation event, recorded in virtual-time order.
/// Endpoints are identified by their creation index (stable across
/// replays of the same construction sequence — unlike connection client
/// ids, which come from a process-global counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An endpoint handed a request to the wire.
    Send {
        /// Virtual time (µs).
        at_us: u64,
        /// Sending endpoint.
        endpoint: usize,
        /// Target storage node.
        node: u32,
        /// The envelope's retry-stable sequence number.
        seq: u64,
    },
    /// The wire lost the request.
    Dropped {
        /// Virtual time (µs).
        at_us: u64,
        /// Sending endpoint.
        endpoint: usize,
        /// Target storage node.
        node: u32,
        /// The envelope's retry-stable sequence number.
        seq: u64,
    },
    /// The wire duplicated the request (a second delivery was scheduled).
    Duplicated {
        /// Virtual time (µs).
        at_us: u64,
        /// Sending endpoint.
        endpoint: usize,
        /// Target storage node.
        node: u32,
        /// The envelope's retry-stable sequence number.
        seq: u64,
    },
    /// The request reached the node and was served.
    Delivered {
        /// Virtual time (µs).
        at_us: u64,
        /// Sending endpoint.
        endpoint: usize,
        /// Serving storage node.
        node: u32,
        /// The envelope's retry-stable sequence number.
        seq: u64,
        /// How the server classified it (executed / replayed / …).
        served: ServedKind,
    },
    /// The request arrived while the node was partitioned or crashed.
    DropUnreachable {
        /// Virtual time (µs).
        at_us: u64,
        /// Sending endpoint.
        endpoint: usize,
        /// Target storage node.
        node: u32,
        /// The envelope's retry-stable sequence number.
        seq: u64,
    },
    /// The wire lost the reply.
    ReplyDropped {
        /// Virtual time (µs).
        at_us: u64,
        /// Destination endpoint.
        endpoint: usize,
        /// Replying storage node.
        node: u32,
    },
    /// The wire duplicated the reply.
    ReplyDuplicated {
        /// Virtual time (µs).
        at_us: u64,
        /// Destination endpoint.
        endpoint: usize,
        /// Replying storage node.
        node: u32,
    },
    /// The reply reached the endpoint's inbox.
    ReplyDelivered {
        /// Virtual time (µs).
        at_us: u64,
        /// Destination endpoint.
        endpoint: usize,
        /// Replying storage node.
        node: u32,
    },
    /// The reply was in flight when its node became unreachable.
    ReplyDropUnreachable {
        /// Virtual time (µs).
        at_us: u64,
        /// Destination endpoint.
        endpoint: usize,
        /// Replying storage node.
        node: u32,
    },
    /// A fault action fired.
    Fault {
        /// Virtual time (µs).
        at_us: u64,
        /// The action applied.
        action: FaultAction,
    },
}

impl TraceEvent {
    /// The storage node this event concerns.
    pub fn node(&self) -> Option<u32> {
        match *self {
            TraceEvent::Send { node, .. }
            | TraceEvent::Dropped { node, .. }
            | TraceEvent::Duplicated { node, .. }
            | TraceEvent::Delivered { node, .. }
            | TraceEvent::DropUnreachable { node, .. }
            | TraceEvent::ReplyDropped { node, .. }
            | TraceEvent::ReplyDuplicated { node, .. }
            | TraceEvent::ReplyDelivered { node, .. }
            | TraceEvent::ReplyDropUnreachable { node, .. } => Some(node),
            TraceEvent::Fault { .. } => None,
        }
    }
}

/// A message or fault waiting on the virtual-time queue.
enum Event {
    DeliverRequest {
        endpoint: usize,
        node: u32,
        env: RequestEnvelope,
    },
    DeliverReply {
        endpoint: usize,
        node: u32,
        reply: ReplyEnvelope,
    },
    Fault(FaultAction),
}

struct SimInner {
    cfg: SimConfig,
    cluster: Arc<StorageCluster>,
    /// The live node view ports are minted from; grows on
    /// [`FaultAction::AddNode`]. Connectors hold a `Weak` back-reference,
    /// so the membership living here creates no `Arc` cycle.
    membership: Membership,
    /// Back-reference handed to connectors minted for joined nodes.
    self_weak: Weak<Mutex<SimInner>>,
    nodes: Vec<Arc<StorageNode>>,
    /// Per-node dedup windows — durable state, surviving crash/restart.
    dedups: Vec<ServerDedup>,
    /// Disk-fault controller, when the cluster was built over a
    /// [`FaultyStore`](crate::store::FaultyStore); routes
    /// [`FaultAction::DiskFault`] / [`FaultAction::DiskHeal`].
    disk: Option<Arc<crate::store::DiskFaults>>,
    now_us: u64,
    /// Queue tiebreak: same-instant events run in insertion order.
    next_tick: u64,
    queue: BTreeMap<(u64, u64), Event>,
    inboxes: Vec<VecDeque<ReplyEnvelope>>,
    link_rngs: HashMap<(usize, u32), DetRng>,
    partitioned: Vec<bool>,
    crashed: Vec<bool>,
    trace: Vec<TraceEvent>,
}

impl SimInner {
    fn unreachable(&self, node: u32) -> bool {
        self.partitioned[node as usize] || self.crashed[node as usize]
    }

    fn link_rng(&mut self, endpoint: usize, node: u32) -> &mut DetRng {
        let seed = self.cfg.seed;
        self.link_rngs
            .entry((endpoint, node))
            .or_insert_with(|| DetRng::new(seed).fork(((endpoint as u64) << 32) ^ u64::from(node)))
    }

    /// One fault roll on the link's stream. Zero-rate rolls draw nothing
    /// so a reliable phase does not consume link randomness.
    fn roll(&mut self, endpoint: usize, node: u32, per_mille: u32) -> bool {
        per_mille > 0 && self.link_rng(endpoint, node).gen_range(1000) < u64::from(per_mille)
    }

    fn link_delay(&mut self, endpoint: usize, node: u32) -> u64 {
        let (lo, hi) = (self.cfg.delay_min_us, self.cfg.delay_max_us);
        if hi <= lo {
            lo
        } else {
            self.link_rng(endpoint, node).gen_range_in(lo, hi + 1)
        }
    }

    fn push_event(&mut self, at_us: u64, ev: Event) {
        let tick = self.next_tick;
        self.next_tick += 1;
        self.queue.insert((at_us, tick), ev);
    }

    fn quantize(&self, timeout: Duration) -> u64 {
        let q = self.cfg.quantum_us.max(1);
        let us = u64::try_from(timeout.as_micros()).unwrap_or(u64::MAX / 2);
        us.div_ceil(q).max(1).saturating_mul(q)
    }

    /// Runs every queued event due at or before `t_us`, then advances
    /// the clock to `t_us`. Events spawned while running (replies) join
    /// the same pass if they land inside the window.
    fn run_until(&mut self, t_us: u64) {
        while let Some((&key, _)) = self.queue.iter().next() {
            if key.0 > t_us {
                break;
            }
            let ev = self.queue.remove(&key).expect("event vanished");
            self.now_us = self.now_us.max(key.0);
            self.handle(ev);
        }
        self.now_us = self.now_us.max(t_us);
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Fault(action) => self.apply_action(action),
            Event::DeliverRequest {
                endpoint,
                node,
                env,
            } => {
                let seq = env.seq;
                if self.unreachable(node) {
                    self.trace.push(TraceEvent::DropUnreachable {
                        at_us: self.now_us,
                        endpoint,
                        node,
                        seq,
                    });
                    return;
                }
                let (reply, served) = serve_deduped_traced(
                    &self.nodes[node as usize],
                    &self.dedups[node as usize],
                    env,
                );
                self.trace.push(TraceEvent::Delivered {
                    at_us: self.now_us,
                    endpoint,
                    node,
                    seq,
                    served,
                });
                if let Some(reply) = reply {
                    self.send_reply(endpoint, node, reply);
                }
            }
            Event::DeliverReply {
                endpoint,
                node,
                reply,
            } => {
                if self.unreachable(node) {
                    self.trace.push(TraceEvent::ReplyDropUnreachable {
                        at_us: self.now_us,
                        endpoint,
                        node,
                    });
                    return;
                }
                self.trace.push(TraceEvent::ReplyDelivered {
                    at_us: self.now_us,
                    endpoint,
                    node,
                });
                self.inboxes[endpoint].push_back(reply);
            }
        }
    }

    /// Puts a freshly produced reply on the wire (same drop / duplicate /
    /// delay treatment as requests — the protocol must survive lost and
    /// doubled acks too).
    fn send_reply(&mut self, endpoint: usize, node: u32, reply: ReplyEnvelope) {
        let cfg = self.cfg;
        if self.roll(endpoint, node, cfg.drop_per_mille) {
            self.trace.push(TraceEvent::ReplyDropped {
                at_us: self.now_us,
                endpoint,
                node,
            });
            return;
        }
        let dup = self.roll(endpoint, node, cfg.dup_per_mille);
        let d = self.link_delay(endpoint, node);
        let at = self.now_us + d;
        if dup {
            self.trace.push(TraceEvent::ReplyDuplicated {
                at_us: self.now_us,
                endpoint,
                node,
            });
            let d2 = self.link_delay(endpoint, node);
            let at2 = self.now_us + d2;
            self.push_event(
                at2,
                Event::DeliverReply {
                    endpoint,
                    node,
                    reply: reply.clone(),
                },
            );
        }
        self.push_event(
            at,
            Event::DeliverReply {
                endpoint,
                node,
                reply,
            },
        );
    }

    fn apply_action(&mut self, action: FaultAction) {
        let m = self.nodes.len();
        // Canonicalize the node index so arbitrary (proptest-generated)
        // schedules are always valid, and the trace records what ran.
        let canonical = |n: usize| n % m;
        let action = match action {
            FaultAction::Partition(n) => FaultAction::Partition(canonical(n)),
            FaultAction::Heal(n) => FaultAction::Heal(canonical(n)),
            FaultAction::Crash(n) => FaultAction::Crash(canonical(n)),
            FaultAction::Restart(n) => FaultAction::Restart(canonical(n)),
            FaultAction::Fail(n) => FaultAction::Fail(canonical(n)),
            FaultAction::Recover(n) => FaultAction::Recover(canonical(n)),
            FaultAction::AddNode => FaultAction::AddNode,
            FaultAction::DrainNode(n) => FaultAction::DrainNode(canonical(n)),
            FaultAction::DiskFault(n) => FaultAction::DiskFault(canonical(n)),
            FaultAction::DiskHeal(n) => FaultAction::DiskHeal(canonical(n)),
        };
        self.trace.push(TraceEvent::Fault {
            at_us: self.now_us,
            action,
        });
        match action {
            FaultAction::Partition(n) => self.partitioned[n] = true,
            FaultAction::Heal(n) => self.partitioned[n] = false,
            FaultAction::Crash(n) => {
                self.crashed[n] = true;
                self.nodes[n].crash_lose_memory();
            }
            FaultAction::Restart(n) => {
                self.nodes[n]
                    .restart_recover()
                    .expect("recover node from virtual disk");
                self.crashed[n] = false;
            }
            FaultAction::Fail(n) => self.nodes[n].fail(),
            FaultAction::Recover(n) => self.nodes[n].recover(),
            FaultAction::AddNode => self.add_node(),
            FaultAction::DrainNode(n) => self.nodes[n].start_draining(),
            FaultAction::DiskFault(n) => {
                if let Some(disk) = &self.disk {
                    disk.arm(n);
                }
            }
            FaultAction::DiskHeal(n) => {
                if let Some(disk) = &self.disk {
                    disk.disarm(n);
                }
            }
        }
    }

    /// Grows the cluster, the simulation's per-node state, and the
    /// membership view by one node — the AddNode fault. Ports observe the
    /// epoch bump on their next membership refresh.
    fn add_node(&mut self) {
        let idx = self.cluster.add_node();
        debug_assert_eq!(idx, self.nodes.len(), "sim state misaligned");
        self.nodes.push(self.cluster.node(idx));
        self.dedups.push(ServerDedup::new());
        self.partitioned.push(false);
        self.crashed.push(false);
        self.membership.join(Arc::new(SimConnector {
            inner: self.self_weak.clone(),
            node: StorageNodeId(idx as u32),
        }));
    }
}

/// Handle to one simulated network. Clones share the network; every
/// transport minted from it shares the virtual clock and event queue.
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<Mutex<SimInner>>,
}

impl SimNet {
    /// Builds a simulated network over `cluster`'s nodes.
    pub fn new(cluster: Arc<StorageCluster>, cfg: SimConfig) -> Self {
        let m = cluster.num_nodes();
        let nodes: Vec<_> = (0..m).map(|i| cluster.node(i)).collect();
        let dedups = (0..m).map(|_| ServerDedup::new()).collect();
        let membership = Membership::new();
        let inner = Arc::new_cyclic(|weak: &Weak<Mutex<SimInner>>| {
            Mutex::new(SimInner {
                cfg,
                cluster,
                membership: membership.clone(),
                self_weak: weak.clone(),
                nodes,
                dedups,
                disk: None,
                now_us: 0,
                next_tick: 0,
                queue: BTreeMap::new(),
                inboxes: Vec::new(),
                link_rngs: HashMap::new(),
                partitioned: vec![false; m],
                crashed: vec![false; m],
                trace: Vec::new(),
            })
        });
        for i in 0..m {
            membership.join(Arc::new(SimConnector {
                inner: Arc::downgrade(&inner),
                node: StorageNodeId(i as u32),
            }));
        }
        Self { inner }
    }

    /// Mints one raw endpoint connected to node `node_idx`.
    pub fn transport(&self, node_idx: usize) -> SimTransport {
        let mut inner = self.inner.lock();
        let node = inner.nodes[node_idx].id();
        let endpoint = inner.inboxes.len();
        inner.inboxes.push(VecDeque::new());
        SimTransport {
            inner: self.inner.clone(),
            endpoint,
            node,
        }
    }

    /// The live membership view over the simulated wire — one
    /// [`SimConnector`] per node, growing on [`FaultAction::AddNode`].
    /// This is what [`hurricane_storage::StorageEndpoint::custom`] takes.
    pub fn membership(&self) -> Membership {
        self.inner.lock().membership.clone()
    }

    /// The configured request timeout for ports over this network.
    pub fn timeout(&self) -> Duration {
        self.inner.lock().cfg.timeout
    }

    /// Mints an [`RpcPort`] with one fresh endpoint per storage node —
    /// the full data-plane stack (coalescer, replica fan-out, failover)
    /// over the simulated wire. The port is membership-backed: after an
    /// [`FaultAction::AddNode`], a refresh extends it to the new node.
    pub fn port(&self) -> RpcPort {
        let (cluster, membership, timeout) = {
            let inner = self.inner.lock();
            (
                inner.cluster.clone(),
                inner.membership.clone(),
                inner.cfg.timeout,
            )
        };
        RpcPort::from_membership(cluster, membership, timeout)
    }

    /// Attaches a disk-fault controller so [`FaultAction::DiskFault`] /
    /// [`FaultAction::DiskHeal`] (and [`SimNet::heal_all`]) reach it.
    /// Called by [`FaultSim::new_with_disk`](crate::scenario::FaultSim::new_with_disk).
    pub fn attach_disk(&self, disk: Arc<crate::store::DiskFaults>) {
        self.inner.lock().disk = Some(disk);
    }

    /// Applies a fault right now.
    pub fn apply(&self, action: FaultAction) {
        self.inner.lock().apply_action(action);
    }

    /// Schedules a fault at virtual time `at_us` (fires immediately if
    /// the clock is already past it).
    pub fn schedule(&self, at_us: u64, action: FaultAction) {
        let mut inner = self.inner.lock();
        if at_us <= inner.now_us {
            inner.apply_action(action);
        } else {
            inner.push_event(at_us, Event::Fault(action));
        }
    }

    /// Restores a fully healthy, reliable network: clears partitions,
    /// restarts crashed nodes (recovering them from their segment logs),
    /// recovers failed nodes, cancels scheduled faults, and zeroes the
    /// wire drop/duplicate rates. Used by scenarios to close the fault
    /// window before asserting end-state invariants.
    pub fn heal_all(&self) {
        let mut inner = self.inner.lock();
        inner.queue.retain(|_, ev| !matches!(ev, Event::Fault(_)));
        // Disks heal first: a crashed node's restart below re-reads its
        // segment logs, and recovery must not roll fresh read faults.
        if let Some(disk) = &inner.disk {
            disk.disarm_all();
        }
        for i in 0..inner.nodes.len() {
            inner.partitioned[i] = false;
            if inner.crashed[i] {
                inner.nodes[i]
                    .restart_recover()
                    .expect("recover node from virtual disk");
                inner.crashed[i] = false;
            }
            inner.nodes[i].recover();
        }
        inner.cfg.drop_per_mille = 0;
        inner.cfg.dup_per_mille = 0;
    }

    /// Advances the virtual clock by `us`, running everything due.
    pub fn advance(&self, us: u64) {
        let mut inner = self.inner.lock();
        let t = inner.now_us + us;
        inner.run_until(t);
    }

    /// Current virtual time (µs).
    pub fn now_us(&self) -> u64 {
        self.inner.lock().now_us
    }

    /// Snapshot of the event trace so far.
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.inner.lock().trace.clone()
    }
}

/// One endpoint of the simulated network, implementing the storage
/// [`Transport`] trait. `send` never fails (the simulated wire has no
/// local failure mode — loss shows up as a timeout, exactly like UDP);
/// receives drive the virtual clock.
pub struct SimTransport {
    inner: Arc<Mutex<SimInner>>,
    endpoint: usize,
    node: StorageNodeId,
}

/// A [`Connect`] that mints [`SimTransport`] endpoints for one node —
/// the membership entry for a simulated node. Holds the network weakly:
/// once the [`SimNet`] is gone the connector reports
/// [`StorageError::Disconnected`], and the membership living inside the
/// network never forms a reference cycle.
pub struct SimConnector {
    inner: Weak<Mutex<SimInner>>,
    node: StorageNodeId,
}

impl Connect for SimConnector {
    fn connect(&self) -> Result<Box<dyn Transport>, StorageError> {
        let inner = self
            .inner
            .upgrade()
            .ok_or(StorageError::Disconnected(self.node))?;
        let endpoint = {
            let mut g = inner.lock();
            let e = g.inboxes.len();
            g.inboxes.push(VecDeque::new());
            e
        };
        Ok(Box::new(SimTransport {
            inner,
            endpoint,
            node: self.node,
        }))
    }
}

impl std::fmt::Debug for SimConnector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConnector")
            .field("node", &self.node)
            .finish()
    }
}

impl Transport for SimTransport {
    fn node(&self) -> StorageNodeId {
        self.node
    }

    fn send(&mut self, env: RequestEnvelope) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        let cfg = inner.cfg;
        let node = self.node.0;
        let now = inner.now_us;
        let seq = env.seq;
        inner.trace.push(TraceEvent::Send {
            at_us: now,
            endpoint: self.endpoint,
            node,
            seq,
        });
        if inner.roll(self.endpoint, node, cfg.drop_per_mille) {
            inner.trace.push(TraceEvent::Dropped {
                at_us: now,
                endpoint: self.endpoint,
                node,
                seq,
            });
            return Ok(());
        }
        let dup = inner.roll(self.endpoint, node, cfg.dup_per_mille);
        let d = inner.link_delay(self.endpoint, node);
        if dup {
            inner.trace.push(TraceEvent::Duplicated {
                at_us: now,
                endpoint: self.endpoint,
                node,
                seq,
            });
            let d2 = inner.link_delay(self.endpoint, node);
            inner.push_event(
                now + d2,
                Event::DeliverRequest {
                    endpoint: self.endpoint,
                    node,
                    env: env.clone(),
                },
            );
        }
        inner.push_event(
            now + d,
            Event::DeliverRequest {
                endpoint: self.endpoint,
                node,
                env,
            },
        );
        Ok(())
    }

    fn try_recv(&mut self) -> Option<ReplyEnvelope> {
        let mut inner = self.inner.lock();
        let now = inner.now_us;
        inner.run_until(now);
        inner.inboxes[self.endpoint].pop_front()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<ReplyEnvelope> {
        let deadline = {
            let mut inner = self.inner.lock();
            if let Some(r) = inner.inboxes[self.endpoint].pop_front() {
                return Some(r);
            }
            let budget = inner.quantize(timeout);
            inner.now_us.saturating_add(budget)
        };
        loop {
            {
                let mut inner = self.inner.lock();
                // Run everything due inside the budget; stop as soon as a
                // reply lands in our inbox.
                loop {
                    if let Some(r) = inner.inboxes[self.endpoint].pop_front() {
                        return Some(r);
                    }
                    match inner.queue.keys().next().copied() {
                        Some((t, _)) if t <= deadline => inner.run_until(t),
                        _ => break,
                    }
                }
                if inner.now_us >= deadline {
                    return None;
                }
                // Idle: advance one quantum, then release the lock so a
                // concurrent endpoint (a prefetcher thread, say) can
                // inject events into the window.
                let step = inner.cfg.quantum_us.max(1).min(deadline - inner.now_us);
                let t = inner.now_us + step;
                inner.run_until(t);
            }
            std::thread::sleep(Duration::from_micros(10));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_storage::cluster::ClusterConfig;
    use hurricane_storage::rpc::{NodeConnection, StorageRequest};
    use hurricane_storage::StorageResponse;

    fn net(seed: u64) -> (Arc<StorageCluster>, SimNet) {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let net = SimNet::new(cluster.clone(), SimConfig::reliable(seed));
        (cluster, net)
    }

    #[test]
    fn ping_round_trips_on_virtual_time() {
        let (_cluster, net) = net(7);
        let mut conn = NodeConnection::new(Box::new(net.transport(0)));
        let t0 = net.now_us();
        let resp = conn
            .call(StorageRequest::Ping, Duration::from_millis(50))
            .unwrap();
        assert_eq!(resp, StorageResponse::Pong);
        let dt = net.now_us() - t0;
        // One round trip costs two link delays of 20..=200 µs each; the
        // wait only advanced the clock to the delivery events.
        assert!((40..=400).contains(&dt), "round trip took {dt} virtual µs");
    }

    #[test]
    fn partitioned_node_times_out_then_heals() {
        let (_cluster, net) = net(8);
        let mut conn = NodeConnection::new(Box::new(net.transport(0)));
        net.apply(FaultAction::Partition(0));
        let err = conn
            .call(StorageRequest::Ping, Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, StorageError::Timeout(_)), "{err:?}");
        // The wait advanced the virtual clock by the quantized budget.
        assert!(net.now_us() >= 20_000);
        net.apply(FaultAction::Heal(0));
        let resp = conn
            .call(StorageRequest::Ping, Duration::from_millis(20))
            .unwrap();
        assert_eq!(resp, StorageResponse::Pong);
        assert!(net
            .trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::DropUnreachable { node: 0, .. })));
    }

    #[test]
    fn failed_node_answers_node_down() {
        let (_cluster, net) = net(9);
        let mut conn = NodeConnection::new(Box::new(net.transport(1)));
        net.apply(FaultAction::Fail(1));
        let err = conn
            .call(StorageRequest::IsDrained, Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, StorageError::NodeDown(_)), "{err:?}");
    }

    #[test]
    fn scheduled_fault_fires_at_virtual_time() {
        let (_cluster, net) = net(10);
        net.schedule(5_000, FaultAction::Partition(0));
        assert!(!net.inner.lock().partitioned[0]);
        net.advance(4_000);
        assert!(!net.inner.lock().partitioned[0]);
        net.advance(2_000);
        assert!(net.inner.lock().partitioned[0]);
    }
}
