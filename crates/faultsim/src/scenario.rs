//! Scenario plumbing: a cluster + simulated network bundle, chunk
//! helpers, drain loops, and the seed discipline shared by scripted
//! scenarios, the proptest schedules, and the CI seed sweep.

use std::sync::Arc;
use std::time::Duration;

use hurricane_common::BagId;
use hurricane_format::Chunk;
use hurricane_storage::bag::{BagClient, BatchRemoveResult};
use hurricane_storage::cluster::{ClusterConfig, DurabilityConfig, StorageCluster};
use hurricane_storage::endpoint::StorageEndpoint;
use hurricane_storage::error::StorageError;
use hurricane_storage::rpc::{RetryPolicy, RpcPort};
use hurricane_storage::segment::SegmentStore;

use crate::net::{SimConfig, SimNet};
use crate::store::{DiskFaultConfig, DiskFaults, FaultyStore};

/// A cluster with its simulated network and one bag under test.
pub struct FaultSim {
    /// The real storage cluster the simulation runs against.
    pub cluster: Arc<StorageCluster>,
    /// The simulated wire every minted port speaks over.
    pub net: SimNet,
    /// The bag scenarios insert into and drain from.
    pub bag: BagId,
    /// Disk-fault controller when built with
    /// [`FaultSim::new_with_disk`]; `None` means every virtual disk is
    /// perfect.
    pub disk: Option<Arc<DiskFaults>>,
}

impl FaultSim {
    /// Builds an `m`-node cluster with the given replication factor over
    /// a fresh simulated network.
    ///
    /// Every node is durable over an in-memory virtual disk
    /// ([`SegmentStore::mem`]): a [`crate::net::FaultAction::Crash`]
    /// wipes the node's memory but the segment logs survive, and
    /// [`crate::net::FaultAction::Restart`] recovers from them exactly
    /// like a real process restarting from its `--data-dir`.
    pub fn new(m: usize, replication: usize, cfg: SimConfig) -> Self {
        let cluster = StorageCluster::new_durable(
            m,
            ClusterConfig { replication },
            DurabilityConfig {
                store: SegmentStore::mem(),
                spill_threshold_bytes: u64::MAX,
            },
        );
        let bag = cluster.create_bag();
        let net = SimNet::new(cluster.clone(), cfg);
        Self {
            cluster,
            net,
            bag,
            disk: None,
        }
    }

    /// As [`FaultSim::new`], but the virtual disks roll faults at
    /// `disk_cfg`'s rates once armed — by
    /// [`crate::net::FaultAction::DiskFault`] on the wire's schedule, or
    /// directly through the returned sim's [`disk`](Self::disk)
    /// controller. [`SimNet::heal_all`] disarms every disk before it
    /// restarts crashed nodes.
    pub fn new_with_disk(
        m: usize,
        replication: usize,
        cfg: SimConfig,
        disk_cfg: DiskFaultConfig,
    ) -> Self {
        let disk = DiskFaults::new(cfg.seed, disk_cfg);
        let cluster = StorageCluster::new_durable(
            m,
            ClusterConfig { replication },
            DurabilityConfig {
                store: FaultyStore::wrap(SegmentStore::mem(), disk.clone()),
                spill_threshold_bytes: u64::MAX,
            },
        );
        let bag = cluster.create_bag();
        let net = SimNet::new(cluster.clone(), cfg);
        net.attach_disk(disk.clone());
        Self {
            cluster,
            net,
            bag,
            disk: Some(disk),
        }
    }

    /// Mints a port with `attempts` total tries per request (1 = fail
    /// fast, the protocol default) and a fast retry backoff so timed-out
    /// virtual waits don't stack real sleeps.
    pub fn port_with_retry(&self, attempts: u32) -> RpcPort {
        let mut port = self.net.port();
        port.set_retry_policy(RetryPolicy {
            attempts: attempts.max(1),
            backoff: Duration::from_micros(100),
        });
        port
    }

    /// A bag client over a fresh simulated port, minted through a
    /// [`StorageEndpoint`] on the custom plane — the same endpoint API
    /// real deployments use, with the simulated membership plugged in.
    pub fn client(&self, seed: u64, retry_attempts: u32) -> BagClient {
        self.endpoint(retry_attempts).client(self.bag, seed)
    }

    /// A [`StorageEndpoint`] over the simulated network: custom plane,
    /// the net's membership and timeout, and a fast retry backoff so
    /// timed-out virtual waits don't stack real sleeps.
    pub fn endpoint(&self, retry_attempts: u32) -> StorageEndpoint {
        StorageEndpoint::custom(self.cluster.clone(), self.net.membership())
            .with_request_timeout(self.net.timeout())
            .with_retry_policy(RetryPolicy {
                attempts: retry_attempts.max(1),
                backoff: Duration::from_micros(100),
            })
    }

    /// Seals the bag through the cluster authority (control plane — not
    /// the protocol under test).
    pub fn seal(&self) {
        self.cluster.seal_bag(self.bag).expect("seal");
    }

    /// Every value currently stored for the bag, across all nodes and
    /// origin streams, read directly off the node logs (bypasses read
    /// pointers). With replication `r` and converged replicas, each
    /// inserted value appears exactly `r` times.
    pub fn stored_values(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for i in 0..self.cluster.num_nodes() {
            let chunks = self.cluster.node(i).snapshot(self.bag).expect("snapshot");
            out.extend(chunks.iter().map(value_of));
        }
        out.sort_unstable();
        out
    }
}

/// Encodes a test value as a one-record chunk.
pub fn chunk_of(v: u64) -> Chunk {
    Chunk::from_vec(v.to_le_bytes().to_vec())
}

/// Decodes a chunk produced by [`chunk_of`].
pub fn value_of(c: &Chunk) -> u64 {
    let bytes: [u8; 8] = c.bytes()[..8].try_into().expect("test chunk payload");
    u64::from_le_bytes(bytes)
}

/// Drains the (sealed) bag to exhaustion through `client`, returning
/// every removed value in removal order. Panics rather than spinning
/// forever if the bag stays `Pending` — scenarios call this only after
/// healing the network, so pending here means lost data.
pub fn drain_all(client: &mut BagClient) -> Result<Vec<u64>, StorageError> {
    let mut out = Vec::new();
    let mut pending_budget = 10_000u32;
    loop {
        match client.try_remove_batch(8)? {
            BatchRemoveResult::Chunks(chunks) => {
                pending_budget = 10_000;
                out.extend(chunks.iter().map(value_of));
            }
            BatchRemoveResult::Pending => {
                pending_budget -= 1;
                assert!(
                    pending_budget > 0,
                    "bag stayed pending on a healed network: data lost?"
                );
            }
            BatchRemoveResult::Drained => return Ok(out),
        }
    }
}

/// Asserts the exactly-once contract over one fault run:
///
/// * nothing drained twice (`drained` has no duplicates),
/// * every acknowledged insert survived (`acked ⊆ drained`),
/// * nothing materialized out of thin air (`drained ⊆ attempted`).
///
/// `attempted` may exceed `acked`: a timed-out insert has an unknown
/// outcome and is allowed to have landed or not — but never twice.
pub fn assert_exactly_once(attempted: &[u64], acked: &[u64], drained: &[u64]) {
    let mut sorted = drained.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).for_each(|w| {
        assert_ne!(w[0], w[1], "value {} drained twice", w[0]);
    });
    for v in acked {
        assert!(
            sorted.binary_search(v).is_ok(),
            "acknowledged value {v} was lost"
        );
    }
    let mut attempted_sorted = attempted.to_vec();
    attempted_sorted.sort_unstable();
    for v in &sorted {
        assert!(
            attempted_sorted.binary_search(v).is_ok(),
            "value {v} drained but never inserted"
        );
    }
}

/// Resolves the seed for a scripted scenario: `FAULTSIM_SEED` overrides
/// the scenario's default, and either way the seed is printed so a CI
/// failure is reproducible locally with
/// `FAULTSIM_SEED=<seed> cargo test -p hurricane-faultsim <name>`.
pub fn scenario_seed(default: u64) -> u64 {
    let seed = std::env::var("FAULTSIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    eprintln!("faultsim: seed = {seed} (override with FAULTSIM_SEED)");
    seed
}

/// The seed list for the CI sweep: `FAULTSIM_SWEEP` picks how many
/// consecutive seeds to run (default 4 for local test runs; CI sets it
/// higher). Each seed is printed as it starts, so the last line of a
/// failing log names the offender.
pub fn sweep_seeds(base: u64) -> Vec<u64> {
    let n: u64 = std::env::var("FAULTSIM_SWEEP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    (0..n).map(|i| base + i).collect()
}
