//! Disk fault injection behind the segment-store backend traits.
//!
//! [`FaultyStore`] wraps a real [`SegmentStore`] (typically the
//! in-memory virtual disk, [`SegmentStore::mem`]) through the
//! [`StoreBackend`]/[`LogBackend`] hooks, so every byte a storage node
//! journals or reads back passes through a seeded fault roll. The
//! faults model the ways real disks betray a log:
//!
//! * **ENOSPC** — an append fails with `No space left on device`
//!   (`raw_os_error == 28`), which the node surfaces as the
//!   non-retryable [`StorageError::DiskFull`] clients route around.
//! * **EIO** — an append fails with a transient I/O error, surfaced as
//!   the retryable [`StorageError::DiskIo`].
//! * **Short write** — an append writes only a *prefix* of the frame
//!   before failing: torn bytes stay in the log, exactly what a crash
//!   mid-`write(2)` leaves. The node's stream poisoning must refuse
//!   later appends so the torn frame is never buried where the
//!   recovery scan's torn-tail cut cannot reach it (`SEGMENT.md`).
//! * **fsync failure** — [`SegmentLog::sync`] fails; callers must treat
//!   the durability of every frame since the last successful sync as
//!   unknown.
//! * **Read corruption** — a positioned read returns the stored bytes
//!   with one bit flipped. Spilled-frame reads CRC-check what they
//!   decode, so corruption must surface as a typed error, never as
//!   silently wrong chunk bytes.
//!
//! Faults are **per-node armable**: the shared [`DiskFaults`]
//! controller knows which storage node's disk is currently misbehaving
//! (see [`FaultAction::DiskFault`](crate::net::FaultAction::DiskFault)),
//! and every roll is drawn from a [`DetRng`] fork of the scenario seed,
//! so a sweep failure replays from its seed alone.
//!
//! [`StorageError::DiskFull`]: hurricane_storage::StorageError::DiskFull
//! [`StorageError::DiskIo`]: hurricane_storage::StorageError::DiskIo

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hurricane_common::DetRng;
use hurricane_storage::segment::{LogBackend, SegmentLog, SegmentStore, StoreBackend};
use parking_lot::Mutex;

/// Per-operation fault rates, in per-mille (0..=1000).
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskFaultConfig {
    /// An append fails with ENOSPC (nothing written).
    pub enospc_per_mille: u32,
    /// An append fails with a transient EIO (nothing written).
    pub eio_per_mille: u32,
    /// An append writes a prefix of the frame, then fails (torn bytes
    /// remain in the log).
    pub short_write_per_mille: u32,
    /// A sync (fsync) call fails.
    pub sync_fail_per_mille: u32,
    /// A positioned read returns the stored bytes with one bit flipped.
    pub corrupt_read_per_mille: u32,
}

impl DiskFaultConfig {
    /// No faults — the baseline every node starts from until armed.
    pub fn off() -> Self {
        Self::default()
    }

    /// A moderately hostile disk: every fault class enabled at rates
    /// that fire several times over a few hundred operations without
    /// drowning the run.
    pub fn hostile() -> Self {
        Self {
            enospc_per_mille: 30,
            eio_per_mille: 30,
            short_write_per_mille: 15,
            sync_fail_per_mille: 15,
            corrupt_read_per_mille: 10,
        }
    }
}

/// Running totals of injected faults, proving a scenario's fault window
/// actually intersected the I/O it meant to disturb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskFaultCounts {
    /// Appends failed with ENOSPC.
    pub enospc: u64,
    /// Appends failed with EIO.
    pub eio: u64,
    /// Appends torn mid-frame.
    pub short_writes: u64,
    /// Syncs failed.
    pub sync_fails: u64,
    /// Reads returned corrupted bytes.
    pub corrupt_reads: u64,
}

impl DiskFaultCounts {
    /// Total faults injected across every class.
    pub fn total(&self) -> u64 {
        self.enospc + self.eio + self.short_writes + self.sync_fails + self.corrupt_reads
    }
}

/// Shared controller for one cluster's disk faults: the seeded
/// randomness, the per-node armed flags, and the injection counters.
/// Held by the scenario (and by [`SimNet`](crate::net::SimNet) when
/// attached) on one side and by every [`FaultyStore`]-wrapped log on
/// the other.
pub struct DiskFaults {
    cfg: Mutex<DiskFaultConfig>,
    rng: Mutex<DetRng>,
    /// Indexed by storage-node index; absent entries are unarmed.
    armed: Mutex<Vec<bool>>,
    enospc: AtomicU64,
    eio: AtomicU64,
    short_writes: AtomicU64,
    sync_fails: AtomicU64,
    corrupt_reads: AtomicU64,
}

impl DiskFaults {
    /// A controller rolling faults at `cfg` rates from a fork of
    /// `seed`. All nodes start unarmed: wrap first, arm when the
    /// scenario's fault window opens.
    pub fn new(seed: u64, cfg: DiskFaultConfig) -> Arc<Self> {
        Arc::new(Self {
            cfg: Mutex::new(cfg),
            rng: Mutex::new(DetRng::new(seed).fork(0xD15C)),
            armed: Mutex::new(Vec::new()),
            enospc: AtomicU64::new(0),
            eio: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
            sync_fails: AtomicU64::new(0),
            corrupt_reads: AtomicU64::new(0),
        })
    }

    /// Starts injecting faults on `node`'s disk.
    pub fn arm(&self, node: usize) {
        let mut armed = self.armed.lock();
        if armed.len() <= node {
            armed.resize(node + 1, false);
        }
        armed[node] = true;
    }

    /// Stops injecting faults on `node`'s disk (already-torn bytes and
    /// already-returned corrupt reads stay — a healed disk does not
    /// unhappen its past).
    pub fn disarm(&self, node: usize) {
        let mut armed = self.armed.lock();
        if node < armed.len() {
            armed[node] = false;
        }
    }

    /// Disarms every node — part of a scenario's `heal_all`.
    pub fn disarm_all(&self) {
        self.armed.lock().iter_mut().for_each(|a| *a = false);
    }

    /// Whether `node`'s disk is currently injecting faults.
    pub fn is_armed(&self, node: usize) -> bool {
        self.armed.lock().get(node).copied().unwrap_or(false)
    }

    /// Replaces the fault rates mid-run.
    pub fn set_config(&self, cfg: DiskFaultConfig) {
        *self.cfg.lock() = cfg;
    }

    /// Snapshot of the injection counters.
    pub fn counts(&self) -> DiskFaultCounts {
        DiskFaultCounts {
            enospc: self.enospc.load(Ordering::Relaxed),
            eio: self.eio.load(Ordering::Relaxed),
            short_writes: self.short_writes.load(Ordering::Relaxed),
            sync_fails: self.sync_fails.load(Ordering::Relaxed),
            corrupt_reads: self.corrupt_reads.load(Ordering::Relaxed),
        }
    }

    /// One fault roll for `node`. Unarmed nodes (and zero rates) draw
    /// nothing, so healthy phases do not consume randomness.
    fn roll(&self, node: Option<usize>, per_mille: u32) -> bool {
        let Some(node) = node else { return false };
        if per_mille == 0 || !self.is_armed(node) {
            return false;
        }
        self.rng.lock().gen_range(1000) < u64::from(per_mille)
    }

    /// A draw in `0..n` for fault shaping (torn-prefix length, flipped
    /// bit position).
    fn draw(&self, n: u64) -> u64 {
        self.rng.lock().gen_range(n)
    }
}

impl std::fmt::Debug for DiskFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskFaults")
            .field("cfg", &*self.cfg.lock())
            .field("armed", &*self.armed.lock())
            .field("counts", &self.counts())
            .finish()
    }
}

/// A [`StoreBackend`] wrapping a real store with per-node disk-fault
/// injection. The store a cluster is built over is the *root*; each
/// node's `node-<i>` subdir view inherits that node index, and only
/// node-scoped logs ever inject (the root itself holds no logs).
pub struct FaultyStore {
    inner: SegmentStore,
    faults: Arc<DiskFaults>,
    /// The storage-node index this view is scoped to (`None` at root).
    node: Option<usize>,
}

impl FaultyStore {
    /// Wraps `inner` so every log opened under a `node-<i>` subdir
    /// rolls faults against `faults`. Hand the result to
    /// [`DurabilityConfig`](hurricane_storage::DurabilityConfig) as the
    /// cluster's store.
    pub fn wrap(inner: SegmentStore, faults: Arc<DiskFaults>) -> SegmentStore {
        SegmentStore::custom(Arc::new(Self {
            inner,
            faults,
            node: None,
        }))
    }
}

impl StoreBackend for FaultyStore {
    fn open_log(&self, name: &str) -> io::Result<SegmentLog> {
        let inner = self.inner.open_log(name)?;
        Ok(SegmentLog::custom(Arc::new(FaultyLog {
            inner,
            faults: self.faults.clone(),
            node: self.node,
        })))
    }

    fn list_logs(&self) -> io::Result<Vec<String>> {
        self.inner.list_logs()
    }

    fn subdir(&self, name: &str) -> io::Result<SegmentStore> {
        // The cluster namespaces each node as `node-<i>`; deeper
        // subdirs (if any) keep their node's scope.
        let node = name
            .strip_prefix("node-")
            .and_then(|s| s.parse().ok())
            .or(self.node);
        Ok(SegmentStore::custom(Arc::new(Self {
            inner: self.inner.subdir(name)?,
            faults: self.faults.clone(),
            node,
        })))
    }
}

/// A [`LogBackend`] injecting the faults of its node's [`DiskFaults`]
/// into one log.
struct FaultyLog {
    inner: SegmentLog,
    faults: Arc<DiskFaults>,
    node: Option<usize>,
}

impl LogBackend for FaultyLog {
    fn append(&self, frame: &[u8]) -> io::Result<u64> {
        let f = &self.faults;
        if f.roll(self.node, f.cfg.lock().enospc_per_mille) {
            f.enospc.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::from_raw_os_error(28)); // ENOSPC
        }
        if f.roll(self.node, f.cfg.lock().eio_per_mille) {
            f.eio.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::from_raw_os_error(5)); // EIO
        }
        if frame.len() >= 2 && f.roll(self.node, f.cfg.lock().short_write_per_mille) {
            f.short_writes.fetch_add(1, Ordering::Relaxed);
            // Tear the frame: a nonempty strict prefix lands, then the
            // write dies. The torn bytes stay — the caller must poison
            // the stream so no later append buries them beyond the
            // recovery scan's torn-tail cut.
            let torn = 1 + f.draw(frame.len() as u64 - 1) as usize;
            let _ = self.inner.append(&frame[..torn]);
            return Err(io::Error::from_raw_os_error(5));
        }
        self.inner.append(frame)
    }

    fn read(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut buf = self.inner.read(offset, len)?;
        let f = &self.faults;
        if !buf.is_empty() && f.roll(self.node, f.cfg.lock().corrupt_read_per_mille) {
            f.corrupt_reads.fetch_add(1, Ordering::Relaxed);
            let pos = f.draw(buf.len() as u64) as usize;
            let bit = f.draw(8) as u32;
            buf[pos] ^= 1 << bit;
        }
        Ok(buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_all(&self) -> io::Result<Vec<u8>> {
        // Recovery scans read the whole log; corruption there is the
        // torn-tail / bad-frame case the scan already models, so the
        // full read passes through untouched. Positioned reads (the hot
        // spilled-frame path) are where bit rot is injected.
        self.inner.read_all()
    }

    fn truncate(&self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }

    fn sync(&self) -> io::Result<()> {
        let f = &self.faults;
        if f.roll(self.node, f.cfg.lock().sync_fail_per_mille) {
            f.sync_fails.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::from_raw_os_error(5));
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed(seed: u64, cfg: DiskFaultConfig) -> (SegmentStore, Arc<DiskFaults>) {
        let faults = DiskFaults::new(seed, cfg);
        faults.arm(0);
        let store = FaultyStore::wrap(SegmentStore::mem(), faults.clone());
        (store.subdir("node-0").unwrap(), faults)
    }

    #[test]
    fn unarmed_store_is_transparent() {
        let faults = DiskFaults::new(7, DiskFaultConfig::hostile());
        let store = FaultyStore::wrap(SegmentStore::mem(), faults.clone());
        let log = store
            .subdir("node-0")
            .unwrap()
            .open_log("bag-0/meta.log")
            .unwrap();
        for _ in 0..200 {
            log.append(b"frame").unwrap();
            log.sync().unwrap();
        }
        assert_eq!(log.read(0, 5).unwrap(), b"frame");
        assert_eq!(faults.counts().total(), 0);
    }

    #[test]
    fn enospc_appends_nothing_and_counts() {
        let (store, faults) = armed(
            11,
            DiskFaultConfig {
                enospc_per_mille: 1000,
                ..DiskFaultConfig::off()
            },
        );
        let log = store.open_log("bag-0/seg-0.log").unwrap();
        let err = log.append(b"payload").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert_eq!(log.len(), 0, "ENOSPC must not leave bytes behind");
        assert_eq!(faults.counts().enospc, 1);
    }

    #[test]
    fn short_write_tears_the_frame() {
        let (store, faults) = armed(
            13,
            DiskFaultConfig {
                short_write_per_mille: 1000,
                ..DiskFaultConfig::off()
            },
        );
        let log = store.open_log("bag-0/seg-0.log").unwrap();
        let frame = vec![0xAB; 64];
        log.append(&frame).unwrap_err();
        let torn = log.len();
        assert!(
            torn > 0 && torn < 64,
            "a torn append must leave a nonempty strict prefix, left {torn}"
        );
        assert_eq!(faults.counts().short_writes, 1);
    }

    #[test]
    fn corrupt_read_flips_exactly_one_bit() {
        let (store, faults) = armed(
            17,
            DiskFaultConfig {
                corrupt_read_per_mille: 1000,
                ..DiskFaultConfig::off()
            },
        );
        let log = store.open_log("bag-0/seg-0.log").unwrap();
        let frame = vec![0u8; 32];
        log.append(&frame).unwrap();
        let read = log.read(0, 32).unwrap();
        let flipped: u32 = read.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit must differ");
        assert_eq!(faults.counts().corrupt_reads, 1);
        // The log itself is intact: disarm and re-read.
        faults.disarm(0);
        assert_eq!(log.read(0, 32).unwrap(), frame);
    }

    #[test]
    fn sync_failure_counts_and_passes_after_disarm() {
        let (store, faults) = armed(
            19,
            DiskFaultConfig {
                sync_fail_per_mille: 1000,
                ..DiskFaultConfig::off()
            },
        );
        let log = store.open_log("bag-0/meta.log").unwrap();
        log.sync().unwrap_err();
        assert_eq!(faults.counts().sync_fails, 1);
        faults.disarm_all();
        log.sync().unwrap();
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let schedule = |seed| {
            let (store, _faults) = armed(
                seed,
                DiskFaultConfig {
                    eio_per_mille: 300,
                    ..DiskFaultConfig::off()
                },
            );
            let log = store.open_log("bag-0/seg-0.log").unwrap();
            (0..64)
                .map(|_| log.append(b"x").is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(schedule(42), schedule(42), "same-seed schedules diverged");
        assert_ne!(
            schedule(42),
            schedule(43),
            "different seeds drew identical 64-roll schedules (suspicious)"
        );
    }
}
