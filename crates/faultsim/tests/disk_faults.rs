//! Disk-fault scenarios: storage nodes whose segment logs fail
//! (ENOSPC, EIO, torn frames, fsync failure, read corruption) while the
//! network and processes stay healthy. Every scenario prints its seed;
//! rerun a failure with `FAULTSIM_SEED=<seed> cargo test -p
//! hurricane-faultsim <name> -- --nocapture`.

use std::collections::BTreeMap;
use std::sync::Arc;

use hurricane_common::DetRng;
use hurricane_core::graph::GraphBuilder;
use hurricane_core::merges::KeyedMerge;
use hurricane_core::task::TaskCtx;
use hurricane_core::{EngineError, HurricaneApp, HurricaneConfig};
use hurricane_faultsim::net::{FaultAction, SimConfig};
use hurricane_faultsim::scenario::{
    assert_exactly_once, chunk_of, drain_all, scenario_seed, sweep_seeds, FaultSim,
};
use hurricane_faultsim::store::{DiskFaultConfig, DiskFaults, FaultyStore};
use hurricane_storage::cluster::{ClusterConfig, DurabilityConfig, StorageCluster};
use hurricane_storage::segment::SegmentStore;

/// A full disk is not a dead node: with one storage node answering
/// ENOSPC on every journal append, inserts must route around it (the
/// non-retryable [`hurricane_storage::StorageError::DiskFull`] routes
/// around), the full node must hold nothing, and a drain still sees
/// every value exactly once. Healing the disk brings the node back into
/// placement with no client surgery.
#[test]
fn failover_routes_around_full_disk() {
    let seed = scenario_seed(0xF0_11);
    const N: u64 = 90;
    let cfg = SimConfig::reliable(seed);
    let sim = FaultSim::new_with_disk(
        3,
        1,
        cfg,
        DiskFaultConfig {
            enospc_per_mille: 1000,
            ..DiskFaultConfig::off()
        },
    );
    sim.net.apply(FaultAction::DiskFault(1));

    let mut writer = sim.client(seed, 1);
    for v in 0..N {
        writer
            .insert(chunk_of(v))
            .unwrap_or_else(|e| panic!("insert {v} failed instead of routing around: {e:?}"));
    }
    let disk = sim.disk.as_ref().expect("disk controller");
    assert!(
        disk.counts().enospc > 0,
        "the full disk never refused an append"
    );
    assert_eq!(
        sim.cluster.node(1).sample(sim.bag).unwrap().total_chunks,
        0,
        "a full-disk node accepted chunks"
    );

    // Heal the disk. The tested bag's append stream on node 1 stays
    // poisoned for good — its failed appends could have left torn bytes,
    // so the node refuses that stream forever (`SEGMENT.md`) — but a
    // *fresh bag* opens fresh streams: the healed node takes its cyclic
    // share again with no client surgery.
    sim.net.apply(FaultAction::DiskHeal(1));
    let bag2 = sim.cluster.create_bag();
    let mut writer2 = sim.endpoint(1).client(bag2, seed ^ 9);
    for v in N..N + 30 {
        writer2.insert(chunk_of(v)).expect("insert after disk heal");
    }
    assert!(
        sim.cluster.node(1).sample(bag2).unwrap().total_chunks > 0,
        "healed node still refused its cyclic share"
    );

    sim.seal();
    let mut reader = sim.client(seed ^ 1, 1);
    let drained = drain_all(&mut reader).expect("drain");
    let attempted: Vec<u64> = (0..N).collect();
    assert_exactly_once(&attempted, &attempted, &drained);
    assert_eq!(drained.len() as u64, N);

    sim.cluster.seal_bag(bag2).expect("seal bag2");
    let mut reader2 = sim.endpoint(1).client(bag2, seed ^ 2);
    let drained2 = drain_all(&mut reader2).expect("drain bag2");
    let attempted2: Vec<u64> = (N..N + 30).collect();
    assert_exactly_once(&attempted2, &attempted2, &drained2);
    assert_eq!(drained2.len() as u64, 30);
}

/// CI sweep: the bounded (spilling) keyed merge over storage whose
/// disks inject ENOSPC / EIO / torn frames / fsync failures / read
/// corruption on one victim node. Per seed the job must either complete
/// with output *exactly* equal to the fault-free answer (spill rounds
/// included — the budget forces them), or fail with a clean typed
/// engine error. Never a panic, never a wrong answer.
#[test]
fn disk_fault_sweep_spilled_merge_stays_exact() {
    let mut completed = 0u32;
    let mut failed_cleanly = 0u32;
    let mut injected = 0u64;
    let seeds = sweep_seeds(0xD15C_0000);
    for &seed in &seeds {
        eprintln!("faultsim: seed = {seed} (override with FAULTSIM_SEED)");
        match run_spill_merge_under_disk_faults(seed) {
            Ok(faults) => {
                completed += 1;
                injected += faults;
            }
            Err((e, faults)) => {
                // The fault surfaced as a typed storage/task error — the
                // clean-failure contract. Wrong output already panicked
                // inside the run.
                assert!(
                    !matches!(e, EngineError::InvalidGraph(_)),
                    "disk fault misreported as a graph defect: {e} (seed {seed})"
                );
                failed_cleanly += 1;
                injected += faults;
            }
        }
    }
    eprintln!(
        "faultsim: disk sweep over {} seeds: {completed} exact completions, \
         {failed_cleanly} clean failures, {injected} faults injected",
        seeds.len()
    );
    assert!(
        completed > 0,
        "every seed failed — rerouting absorbed no disk faults at all"
    );
    assert!(
        injected > 0,
        "no disk fault ever fired — the sweep tested nothing"
    );
}

/// One sweep run: a count-by-key job with distinct-key state ≫ the merge
/// budget (so the merge spills and re-folds through scratch runs on the
/// same faulty storage tier), a resident-memory budget small enough that
/// reads go back to the faulty disk, and one victim node armed for the
/// whole run. Returns the injected-fault total on success, or the engine
/// error (with the total) on a clean failure.
fn run_spill_merge_under_disk_faults(seed: u64) -> Result<u64, (EngineError, u64)> {
    const NODES: usize = 4;
    const KEYS: u64 = 64;
    const N: usize = 6_000;

    let faults = DiskFaults::new(
        seed,
        DiskFaultConfig {
            enospc_per_mille: 20,
            eio_per_mille: 20,
            short_write_per_mille: 8,
            sync_fail_per_mille: 8,
            corrupt_read_per_mille: 6,
        },
    );
    let mut rng = DetRng::new(seed).fork(0xD1);
    let victim = rng.gen_range(NODES as u64) as usize;
    faults.arm(victim);

    let cluster = StorageCluster::new_durable(
        NODES,
        ClusterConfig::default(),
        DurabilityConfig {
            store: FaultyStore::wrap(SegmentStore::mem(), faults.clone()),
            // Evict aggressively so chunk reads return to the (faulty)
            // logs instead of staying resident.
            spill_threshold_bytes: 16 * 1024,
        },
    );

    // Uniform-random keys: every partial's table holds all 64 keys
    // (64 × ~76 bytes ≈ 4.9 KB ≫ the 512-byte budget), so every merge
    // output spills and re-folds through scratch runs.
    let sample: Vec<u32> = (0..N).map(|_| rng.gen_range(KEYS) as u32).collect();
    let mut expect: BTreeMap<u32, u64> = BTreeMap::new();
    for &k in &sample {
        *expect.entry(k).or_default() += 1;
    }
    let expect: Vec<(u32, u64)> = expect.into_iter().collect();

    let mut g = GraphBuilder::new();
    let input = g.source("keys");
    let counts = g.bag("counts");
    g.task_with_merge(
        "count-by-key",
        &[input],
        &[counts],
        move |ctx: &mut TaskCtx| {
            let mut local: BTreeMap<u32, u64> = BTreeMap::new();
            while let Some(recs) = ctx.next_records::<u32>(0)? {
                for k in recs {
                    *local.entry(k).or_default() += 1;
                }
            }
            for (k, n) in local {
                ctx.write_record(0, &(k, n))?;
            }
            Ok(())
        },
        KeyedMerge::<u32, u64, _>::new(|a, b| a + b),
    );
    let config = HurricaneConfig {
        compute_nodes: 2,
        worker_slots: 2,
        chunk_size: 1024,
        merge_memory_budget: 512,
        ..Default::default()
    };
    let mut app = HurricaneApp::deploy(g.build().unwrap(), cluster, config)
        .map_err(|e| (e, faults.counts().total()))?;
    app.fill_source(input, sample.iter().copied())
        .map_err(|e| (e, faults.counts().total()))?;
    match app.run() {
        Ok(_report) => {
            let got: Vec<(u32, u64)> = app
                .read_records(counts)
                .map_err(|e| (e, faults.counts().total()))?;
            assert_eq!(
                got, expect,
                "spilled merge under disk faults produced wrong output (seed {seed})"
            );
            Ok(faults.counts().total())
        }
        Err(e) => Err((e, faults.counts().total())),
    }
}

/// A torn spill-run append must fail the merge as a typed error and
/// reclaim every scratch bag — not hang, not panic, not emit a
/// truncated output. All appends on every node tear, so the first
/// spill write is guaranteed to hit.
#[test]
fn torn_spill_write_fails_the_job_cleanly() {
    let seed = scenario_seed(0x70_12);
    const NODES: usize = 3;
    let faults = DiskFaults::new(
        seed,
        DiskFaultConfig {
            short_write_per_mille: 1000,
            ..DiskFaultConfig::off()
        },
    );
    let cluster = StorageCluster::new_durable(
        NODES,
        ClusterConfig::default(),
        DurabilityConfig {
            store: FaultyStore::wrap(SegmentStore::mem(), faults.clone()),
            spill_threshold_bytes: u64::MAX,
        },
    );

    let mut g = GraphBuilder::new();
    let input = g.source("keys");
    let counts = g.bag("counts");
    g.task_with_merge(
        "count-by-key",
        &[input],
        &[counts],
        move |ctx: &mut TaskCtx| {
            let mut local: BTreeMap<u32, u64> = BTreeMap::new();
            while let Some(recs) = ctx.next_records::<u32>(0)? {
                for k in recs {
                    *local.entry(k).or_default() += 1;
                }
            }
            for (k, n) in local {
                ctx.write_record(0, &(k, n))?;
            }
            Ok(())
        },
        KeyedMerge::<u32, u64, _>::new(|a, b| a + b),
    );
    let config = HurricaneConfig {
        compute_nodes: 2,
        worker_slots: 1,
        chunk_size: 512,
        merge_memory_budget: 256,
        ..Default::default()
    };
    let mut app = HurricaneApp::deploy(g.build().unwrap(), cluster, config).unwrap();
    let sample: Vec<u32> = (0..4_000u32).map(|i| i % 48).collect();
    app.fill_source(input, sample.iter().copied()).unwrap();

    // Arm only after the source is filled: the input lands intact, and
    // the first disk write the job itself makes is free to tear.
    for n in 0..NODES {
        faults.arm(n);
    }
    let err = app
        .run()
        .expect_err("every append tears; the job cannot succeed");
    assert!(
        !matches!(err, EngineError::InvalidGraph(_) | EngineError::MasterGone),
        "expected a storage-rooted failure, got: {err}"
    );
    assert!(
        faults.counts().short_writes > 0,
        "no append ever tore — the scenario tested nothing"
    );
}

/// `FaultAction::DiskFault` is a first-class scheduled fault: armed at a
/// virtual time like any partition or crash, recorded in the trace, and
/// disarmed by `heal_all` so post-heal recovery reads a clean disk.
#[test]
fn scheduled_disk_fault_window_fires_and_heals() {
    let seed = scenario_seed(0x5C_ED);
    let cfg = SimConfig::reliable(seed);
    let sim = FaultSim::new_with_disk(2, 1, cfg, DiskFaultConfig::hostile());
    let disk = sim.disk.clone().expect("disk controller");

    sim.net.schedule(2_000, FaultAction::DiskFault(0));
    assert!(!disk.is_armed(0));
    sim.net.advance(3_000);
    assert!(disk.is_armed(0), "scheduled disk fault never armed");

    sim.net.heal_all();
    assert!(!disk.is_armed(0), "heal_all left the disk armed");
    let armed_in_trace = sim.net.trace().iter().any(|e| {
        matches!(
            e,
            hurricane_faultsim::net::TraceEvent::Fault {
                action: FaultAction::DiskFault(0),
                ..
            }
        )
    });
    assert!(armed_in_trace, "disk fault missing from the trace");
}

/// Keep `Arc<StorageCluster>` in scope for deploy signatures.
#[allow(dead_code)]
fn _types(_: Arc<StorageCluster>) {}
