//! Proptest-driven schedule exploration: arbitrary fault schedules
//! against the real port/prefetcher/coalescer stack. A failing case
//! prints its case seed and the generated inputs — that tuple is the
//! repro.

use std::time::Duration;

use hurricane_faultsim::net::{FaultAction, SimConfig, TraceEvent};
use hurricane_faultsim::scenario::{assert_exactly_once, chunk_of, drain_all, value_of, FaultSim};
use proptest::prelude::*;

/// `(at_us, action kind, node)` tuples decoded into a fault schedule.
fn apply_schedule(sim: &FaultSim, schedule: &[(u64, usize, usize)]) {
    for &(at_us, kind, node) in schedule {
        let action = match kind % 8 {
            0 => FaultAction::Partition(node),
            1 => FaultAction::Heal(node),
            2 => FaultAction::Crash(node),
            3 => FaultAction::Restart(node),
            4 => FaultAction::Fail(node),
            5 => FaultAction::Recover(node),
            6 => FaultAction::AddNode,
            _ => FaultAction::DrainNode(node),
        };
        sim.net.schedule(at_us, action);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary drop/duplicate/partition/crash schedules over an
    /// unreplicated cluster: whatever the wire does, no value is ever
    /// applied twice, every acknowledged insert survives, and nothing
    /// materializes that was never sent.
    #[test]
    fn faulty_schedule_preserves_exactly_once(
        seed in any::<u64>(),
        drop_pm in 0u32..200,
        dup_pm in 0u32..200,
        schedule in prop::collection::vec(
            (0u64..40_000, 0usize..8, 0usize..3),
            0..6,
        ),
    ) {
        const N: u64 = 50;
        let mut cfg = SimConfig::reliable(seed);
        cfg.timeout = Duration::from_millis(10);
        cfg.drop_per_mille = drop_pm;
        cfg.dup_per_mille = dup_pm;
        let sim = FaultSim::new(3, 1, cfg);
        apply_schedule(&sim, &schedule);

        let mut writer = sim.client(seed, 3);
        let mut attempted = Vec::new();
        let mut acked = Vec::new();
        for v in 0..N {
            attempted.push(v);
            if writer.insert(chunk_of(v)).is_ok() {
                acked.push(v);
            }
        }

        // Close the fault window before judging end state: what matters
        // is that the *surviving* state is consistent, not that every
        // insert went through mid-outage.
        sim.net.heal_all();
        let stored = sim.stored_values();
        for w in stored.windows(2) {
            prop_assert_ne!(w[0], w[1], "value double-inserted");
        }

        sim.seal();
        let mut reader = sim.client(seed ^ 7, 3);
        let drained = drain_all(&mut reader).unwrap();
        assert_exactly_once(&attempted, &acked, &drained);
    }

    /// Duplicated and delayed (but lossless) wire under replication 2:
    /// every insert acks, both replicas converge to exactly one copy per
    /// value, and a replicated drain still delivers exactly once.
    #[test]
    fn replicated_duplicates_converge(
        seed in any::<u64>(),
        dup_pm in 0u32..500,
    ) {
        const N: u64 = 40;
        let mut cfg = SimConfig::reliable(seed);
        cfg.dup_per_mille = dup_pm;
        let sim = FaultSim::new(3, 2, cfg);

        let mut writer = sim.client(seed, 1);
        for v in 0..N {
            writer.insert(chunk_of(v)).unwrap();
        }

        let stored = sim.stored_values();
        let mut expect: Vec<u64> = (0..N).flat_map(|v| [v, v]).collect();
        expect.sort_unstable();
        prop_assert_eq!(stored, expect, "replicas diverged under duplication");

        sim.seal();
        let mut reader = sim.client(seed ^ 9, 1);
        let drained = drain_all(&mut reader).unwrap();
        let attempted: Vec<u64> = (0..N).collect();
        assert_exactly_once(&attempted, &attempted, &drained);
        prop_assert_eq!(drained.len() as u64, N);
    }

    /// Determinism: the same seed, config, and schedule produce the same
    /// event trace, twice — the property the printed-seed repro workflow
    /// rests on.
    #[test]
    fn same_seed_schedules_replay_identically(
        seed in any::<u64>(),
        drop_pm in 0u32..150,
        dup_pm in 0u32..150,
        schedule in prop::collection::vec(
            (0u64..20_000, 0usize..8, 0usize..3),
            0..4,
        ),
    ) {
        let run = |_tag: u64| -> Vec<TraceEvent> {
            const N: u64 = 25;
            let mut cfg = SimConfig::reliable(seed);
            cfg.timeout = Duration::from_millis(10);
            cfg.drop_per_mille = drop_pm;
            cfg.dup_per_mille = dup_pm;
            let sim = FaultSim::new(3, 1, cfg);
            apply_schedule(&sim, &schedule);
            let mut writer = sim.client(seed, 2);
            for v in 0..N {
                let _ = writer.insert(chunk_of(v));
            }
            sim.net.heal_all();
            sim.seal();
            let mut reader = sim.client(seed ^ 11, 2);
            let _ = drain_all(&mut reader).unwrap();
            sim.net.trace()
        };
        let a = run(0);
        let b = run(1);
        prop_assert_eq!(a, b, "same-seed traces diverged");
    }
}

/// Non-prop sanity: the trace helper used by scenario assertions sees
/// wire faults when rates are maxed.
#[test]
fn trace_records_wire_faults() {
    let mut cfg = SimConfig::reliable(0xBEEF);
    cfg.drop_per_mille = 500;
    cfg.dup_per_mille = 500;
    cfg.timeout = Duration::from_millis(5);
    let sim = FaultSim::new(2, 1, cfg);
    let mut writer = sim.client(1, 2);
    for v in 0..30 {
        let _ = writer.insert(chunk_of(v));
    }
    let trace = sim.net.trace();
    assert!(trace
        .iter()
        .any(|e| matches!(e, TraceEvent::Dropped { .. })));
    assert!(trace
        .iter()
        .any(|e| matches!(e, TraceEvent::Duplicated { .. })));
    // Nothing double-applied even at 50% duplication.
    let stored = sim.stored_values();
    stored
        .windows(2)
        .for_each(|w| assert_ne!(w[0], w[1], "double insert"));
    let _ = value_of(&chunk_of(7));
}
