//! Scripted fault scenarios against the real RPC protocol stack.
//!
//! Every scenario prints its seed (`faultsim: seed = …`); rerun a
//! failure with `FAULTSIM_SEED=<seed> cargo test -p hurricane-faultsim
//! <name> -- --nocapture`.

use std::time::Duration;

use hurricane_common::DetRng;
use hurricane_faultsim::net::{FaultAction, SimConfig, SimNet, TraceEvent};
use hurricane_faultsim::scenario::{
    assert_exactly_once, chunk_of, drain_all, scenario_seed, sweep_seeds, value_of, FaultSim,
};
use hurricane_storage::bag::BatchRemoveResult;
use hurricane_storage::prefetch::Prefetcher;
use hurricane_storage::rpc::{NodeConnection, ServedKind, StorageRequest};
use hurricane_storage::StorageResponse;

/// Crash a storage node mid-replicated-insert-burst — after backups have
/// started acking but with primary writes still in flight — restart it a
/// few virtual ms later, and require that client retries carry every
/// insert across the outage with no loss and no double-apply on either
/// replica.
#[test]
fn crash_primary_mid_replicated_insert() {
    let seed = scenario_seed(0xC0A5);
    let trace = run_crash_scenario(seed);
    // Same seed, same script: the whole protocol interaction replays
    // bit-identically (the scenario is single-threaded).
    let replay = run_crash_scenario(seed);
    assert_eq!(trace, replay, "same-seed replay diverged");
}

fn run_crash_scenario(seed: u64) -> Vec<TraceEvent> {
    const N: u64 = 200;
    let mut cfg = SimConfig::reliable(seed);
    cfg.timeout = Duration::from_millis(10);
    let sim = FaultSim::new(3, 2, cfg);
    // The crash window opens mid-burst (the first few dozen inserts have
    // completed their replicated fan-out; more are in flight) and closes
    // well inside the retry budget of 8 × 10 ms.
    sim.net.schedule(2_000, FaultAction::Crash(1));
    sim.net.schedule(30_000, FaultAction::Restart(1));

    let mut writer = sim.client(seed, 8);
    let mut attempted = Vec::new();
    let mut acked = Vec::new();
    for v in 0..N {
        attempted.push(v);
        writer
            .insert(chunk_of(v))
            .unwrap_or_else(|e| panic!("insert {v} failed despite retries: {e:?}"));
        acked.push(v);
    }

    // The outage must actually have eaten messages; otherwise the
    // scenario silently stopped testing anything.
    let trace = sim.net.trace();
    let dropped = trace
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::DropUnreachable { node: 1, .. }
                    | TraceEvent::ReplyDropUnreachable { node: 1, .. }
            )
        })
        .count();
    assert!(dropped > 0, "crash window missed the insert burst");

    // Replica convergence: with replication 2 and every insert acked,
    // both copies of every value exist — a retried envelope that
    // double-applied would show up as a third copy here.
    sim.net.heal_all();
    let stored = sim.stored_values();
    let mut expect: Vec<u64> = (0..N).flat_map(|v| [v, v]).collect();
    expect.sort_unstable();
    assert_eq!(stored, expect, "replicas diverged after crash + retries");

    // Exactly-once drain through the protocol as well.
    sim.seal();
    let mut reader = sim.client(seed ^ 1, 8);
    let drained = drain_all(&mut reader).expect("drain");
    assert_exactly_once(&attempted, &acked, &drained);
    assert_eq!(drained.len() as u64, N);
    sim.net.trace()
}

/// Seal a populated bag, partition a node, and let the prefetcher
/// pipeline run dry on the reachable nodes; heal mid-prefetch and
/// require the pipeline to recover the partitioned node's chunks via
/// same-seq resubmission — every chunk delivered exactly once.
#[test]
fn partition_heals_mid_prefetch() {
    let seed = scenario_seed(0x9A47);
    const N: u64 = 180;
    let mut cfg = SimConfig::reliable(seed);
    cfg.timeout = Duration::from_millis(20);
    let sim = FaultSim::new(3, 1, cfg);

    let mut writer = sim.client(seed, 1);
    for v in 0..N {
        writer.insert(chunk_of(v)).expect("populate");
    }
    sim.seal();

    // Cyclic placement spreads 180 chunks 60/60/60, so the two
    // reachable nodes hold 120: consuming 100 keeps the heal genuinely
    // mid-prefetch.
    sim.net.apply(FaultAction::Partition(1));
    let mut prefetcher = Prefetcher::spawn(sim.client(seed ^ 2, 1), 4);
    let mut drained = Vec::new();
    while drained.len() < 100 {
        match prefetcher.recv().expect("prefetch recv") {
            Some(c) => drained.push(value_of(&c)),
            None => panic!("prefetcher drained early: partitioned data lost"),
        }
    }
    sim.net.apply(FaultAction::Heal(1));
    while let Some(c) = prefetcher.recv().expect("prefetch recv after heal") {
        drained.push(value_of(&c));
    }

    let attempted: Vec<u64> = (0..N).collect();
    assert_exactly_once(&attempted, &attempted, &drained);
    assert_eq!(drained.len() as u64, N);
    let dropped_on_partitioned = sim
        .net
        .trace()
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::DropUnreachable { node: 1, .. }
                    | TraceEvent::ReplyDropUnreachable { node: 1, .. }
            )
        })
        .count();
    assert!(
        dropped_on_partitioned > 0,
        "partition never intercepted a prefetch request"
    );
}

/// Duplicate every envelope on the wire (dup rate 1000‰) and require the
/// server-side dedup window to resolve each duplicate by replay — no
/// double-insert, no double-remove, and the trace proves duplicates
/// actually reached the server.
#[test]
fn duplicated_envelopes_are_suppressed() {
    let seed = scenario_seed(0xD0B1);
    const N: u64 = 100;
    let mut cfg = SimConfig::reliable(seed);
    cfg.dup_per_mille = 1000;
    let sim = FaultSim::new(2, 1, cfg);

    let mut writer = sim.client(seed, 1);
    for v in 0..N {
        writer.insert(chunk_of(v)).expect("insert");
    }

    // Every value stored exactly once despite every insert envelope
    // having been delivered twice.
    let stored = sim.stored_values();
    let expect: Vec<u64> = (0..N).collect();
    assert_eq!(stored, expect, "a duplicated envelope double-inserted");

    let trace = sim.net.trace();
    assert!(
        trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Duplicated { .. })),
        "wire never duplicated a request"
    );
    assert!(
        trace.iter().any(|e| matches!(
            e,
            TraceEvent::Delivered {
                served: ServedKind::Replayed | ServedKind::Suppressed,
                ..
            }
        )),
        "no duplicate was resolved by the dedup window"
    );

    sim.seal();
    let mut reader = sim.client(seed ^ 3, 1);
    let drained = drain_all(&mut reader).expect("drain");
    assert_exactly_once(&expect, &expect, &drained);
    assert_eq!(drained.len() as u64, N);
}

/// Satellite regression: a timed-out request's slot must be unusable by
/// its late reply. Long link delays force the first request to time out
/// and its slot to be reused by a second request with a distinguishable
/// answer; the late first reply must be discarded, not delivered to the
/// reused slot.
#[test]
fn late_reply_cannot_reach_a_reused_slot() {
    let seed = scenario_seed(0x1A7E);
    let mut cfg = SimConfig::reliable(seed);
    // One-way delay 30 ms against a 20 ms wait: every reply is late.
    cfg.delay_min_us = 30_000;
    cfg.delay_max_us = 30_000;
    let sim = FaultSim::new(1, 1, cfg);
    let node = sim.cluster.node(0);
    node.insert(sim.bag, chunk_of(111)).unwrap();
    node.insert(sim.bag, chunk_of(222)).unwrap();

    let net: &SimNet = &sim.net;
    let mut conn = NodeConnection::new(Box::new(net.transport(0)));
    let t1 = conn
        .submit(StorageRequest::ReadAt {
            bag: sim.bag,
            index: 0,
        })
        .unwrap();
    let err = conn.wait(t1, Duration::from_millis(20)).unwrap_err();
    assert!(matches!(err, hurricane_storage::StorageError::Timeout(_)));

    // The second request reuses the abandoned slot (single-slot slab
    // reuse is LIFO); its wait spans the delivery of BOTH replies.
    let t2 = conn
        .submit(StorageRequest::ReadAt {
            bag: sim.bag,
            index: 1,
        })
        .unwrap();
    let resp = conn.wait(t2, Duration::from_millis(200)).unwrap();
    let StorageResponse::ChunkAt(Some(c)) = resp else {
        panic!("expected chunk reply, got {resp:?}");
    };
    assert_eq!(
        value_of(&c),
        222,
        "late reply for the abandoned request leaked into the reused slot"
    );

    // Both replies really were delivered to the endpoint — the stale one
    // was discarded by the generation check, not lost by the wire.
    let delivered = sim
        .net
        .trace()
        .iter()
        .filter(|e| matches!(e, TraceEvent::ReplyDelivered { .. }))
        .count();
    assert_eq!(delivered, 2, "test setup no longer delivers a late reply");
}

/// Elasticity under the endpoint API (paper §3.4): a node joins
/// mid-insert ([`FaultAction::AddNode`]), an original node leaves by
/// draining ([`FaultAction::DrainNode`]), and the combined run still
/// delivers every value exactly once — with the joined node provably
/// carrying data and the draining node provably refusing it.
#[test]
fn membership_churn_add_and_drain_preserve_exactly_once() {
    let seed = scenario_seed(0xADD0);
    const BEFORE: u64 = 60;
    const AFTER: u64 = 120;
    const TOTAL: u64 = AFTER + 30;
    let cfg = SimConfig::reliable(seed);
    let sim = FaultSim::new(2, 1, cfg);

    let mut writer = sim.client(seed, 2);
    for v in 0..BEFORE {
        writer.insert(chunk_of(v)).expect("insert before join");
    }

    // A third node joins; the writer observes the epoch bump on refresh
    // (prefetching readers refresh automatically each iteration).
    sim.net.apply(FaultAction::AddNode);
    writer.refresh_membership();
    assert_eq!(
        sim.cluster.node(2).sample(sim.bag).unwrap().total_chunks,
        0,
        "joined node started non-empty"
    );
    for v in BEFORE..AFTER {
        writer.insert(chunk_of(v)).expect("insert after join");
    }
    let joined = sim.cluster.node(2).sample(sim.bag).unwrap().total_chunks;
    assert!(
        joined >= (AFTER - BEFORE) / 6,
        "joined node received no cyclic share: {joined} chunks"
    );

    // Node 0 leaves paper-style: it drains. New inserts reroute around
    // it without erroring...
    let frozen = sim.cluster.node(0).sample(sim.bag).unwrap().total_chunks;
    sim.net.apply(FaultAction::DrainNode(0));
    for v in AFTER..TOTAL {
        writer.insert(chunk_of(v)).expect("insert during drain");
    }
    assert_eq!(
        sim.cluster.node(0).sample(sim.bag).unwrap().total_chunks,
        frozen,
        "draining node accepted an insert"
    );

    // ...while its stored chunks still serve, so a full drain sees
    // everything exactly once and empties the leaving node.
    sim.seal();
    let mut reader = sim.client(seed ^ 1, 5);
    let drained = drain_all(&mut reader).expect("drain");
    let attempted: Vec<u64> = (0..TOTAL).collect();
    assert_exactly_once(&attempted, &attempted, &drained);
    assert_eq!(drained.len() as u64, TOTAL);
    assert!(
        sim.cluster.node(0).is_drained().unwrap(),
        "leaving node not drained to empty"
    );
}

/// Pin for the identity-based pointer-mirroring protocol: replica logs
/// that *diverged* during a partition (lost acks leave a value on the
/// backup but not the primary, shifting every later log index) must not
/// confuse consumed-pointer mirroring. Half the bag is consumed — each
/// remove mirrors the consumed chunk *identities*, not a count — then
/// a node fails and the drain completes through failover replicas with
/// no chunk served twice and no acknowledged chunk lost.
#[test]
fn mirror_identity_survives_divergent_replica_logs() {
    let seed = scenario_seed(0x3144);
    const N: u64 = 120;
    let mut cfg = SimConfig::reliable(seed);
    cfg.timeout = Duration::from_millis(5);
    let sim = FaultSim::new(3, 2, cfg);

    // Phase 1: insert through a partition window. For chunks whose
    // *primary* is the partitioned node, the backup write can land and
    // ack while the primary write is lost — the insert times out
    // (unacked) but one replica keeps the value: divergent logs.
    sim.net.schedule(1_000, FaultAction::Partition(1));
    let mut writer = sim.client(seed, 2);
    let mut attempted = Vec::new();
    let mut acked = Vec::new();
    for v in 0..N / 2 {
        attempted.push(v);
        if writer.insert(chunk_of(v)).is_ok() {
            acked.push(v);
        }
    }
    let intercepted = sim
        .net
        .trace()
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::DropUnreachable { node: 1, .. }
                    | TraceEvent::ReplyDropUnreachable { node: 1, .. }
            )
        })
        .count();
    assert!(intercepted > 0, "partition window missed the insert burst");

    // Phase 2: heal and stack ordinary inserts on the divergent prefix.
    sim.net.heal_all();
    for v in N / 2..N {
        attempted.push(v);
        if writer.insert(chunk_of(v)).is_ok() {
            acked.push(v);
        }
    }

    // Phase 3: consume half the bag. Every remove mirrors the consumed
    // identities to the surviving replicas.
    sim.seal();
    let mut reader = sim.client(seed ^ 1, 3);
    let mut drained = Vec::new();
    while drained.len() < (N as usize) / 2 {
        match reader.try_remove_batch(4).expect("remove") {
            BatchRemoveResult::Chunks(chunks) => drained.extend(chunks.iter().map(value_of)),
            BatchRemoveResult::Pending => {}
            BatchRemoveResult::Drained => break,
        }
    }

    // Phase 4: fail a node; failover serves its share from backups whose
    // read pointers advanced by identity. A count-based mirror would
    // re-serve (or skip) chunks around every divergence point.
    sim.net.apply(FaultAction::Fail(0));
    drained.extend(drain_all(&mut reader).expect("drain through failover"));
    assert_exactly_once(&attempted, &acked, &drained);
}

/// CI sweep: a crash landing *between* a backup's ack and the primary's
/// — the insert times out unacked while the only live copy sits in the
/// crashed node's segment logs — must never lose an acknowledged value
/// nor duplicate any value across restart recovery. The crash instant
/// and victim vary per seed; the window outlasts the retry budget, so
/// some inserts genuinely fail with their surviving copy marooned on a
/// node that has to recover it from its logs (and a replica whose
/// recovered log is shorter than its peer's must not mask that copy at
/// drain time).
#[test]
fn restart_recovers_unacked_inserts() {
    for seed in sweep_seeds(0x57A7_0000) {
        eprintln!("faultsim: seed = {seed} (override with FAULTSIM_SEED)");
        run_restart_recovery_run(seed);
    }
}

fn run_restart_recovery_run(seed: u64) {
    const N: u64 = 120;
    let mut cfg = SimConfig::reliable(seed);
    cfg.timeout = Duration::from_millis(5);
    let sim = FaultSim::new(3, 2, cfg);

    // The crash opens mid-burst and the restart lands beyond the retry
    // budget (2 × 5 ms), so inserts racing the window can ack on the
    // backup yet time out overall.
    let mut rng = DetRng::new(seed).fork(0x57);
    let victim = rng.gen_range(3) as usize;
    let at = rng.gen_range_in(500, 5_000);
    sim.net.schedule(at, FaultAction::Crash(victim));
    sim.net.schedule(at + 30_000, FaultAction::Restart(victim));

    let mut writer = sim.client(seed, 2);
    let mut attempted = Vec::new();
    let mut acked = Vec::new();
    for v in 0..N {
        attempted.push(v);
        if writer.insert(chunk_of(v)).is_ok() {
            acked.push(v);
        }
    }

    // heal_all restarts any still-crashed node through log-scan recovery.
    sim.net.heal_all();

    // Recovery must not manufacture copies: nothing may be stored more
    // than `replication` times, however the retries interleaved with the
    // crash.
    let stored = sim.stored_values();
    stored.windows(3).for_each(|w| {
        assert_ne!(
            w[0], w[2],
            "value {} stored {}+ times after recovery (seed {seed})",
            w[0], 3
        );
    });

    // And the drain sees every acknowledged value exactly once — even
    // ones whose only pre-restart copy lived on the crashed node.
    sim.seal();
    let mut reader = sim.client(seed ^ 7, 3);
    let drained = drain_all(&mut reader).expect("drain after restart");
    assert_exactly_once(&attempted, &acked, &drained);
}

/// CI sweep: N seeds (FAULTSIM_SWEEP, default 4) of a randomized
/// drop/dup/crash/partition run, each printing its seed before running
/// so a failing log names the exact repro.
#[test]
fn seed_sweep_random_faults_preserve_exactly_once() {
    for seed in sweep_seeds(0xFA57_0000) {
        eprintln!("faultsim: seed = {seed} (override with FAULTSIM_SEED)");
        run_random_fault_run(seed);
    }
}

fn run_random_fault_run(seed: u64) {
    const N: u64 = 80;
    let mut cfg = SimConfig::reliable(seed);
    cfg.timeout = Duration::from_millis(10);
    cfg.drop_per_mille = 80;
    cfg.dup_per_mille = 80;
    let sim = FaultSim::new(3, 1, cfg);

    // A short random schedule of reachability and availability faults.
    let mut rng = DetRng::new(seed).fork(0xFA);
    for _ in 0..4 {
        let at = rng.gen_range_in(500, 30_000);
        let node = rng.gen_range(3) as usize;
        let action = match rng.gen_range(8) {
            0 => FaultAction::Partition(node),
            1 => FaultAction::Heal(node),
            2 => FaultAction::Crash(node),
            3 => FaultAction::Restart(node),
            4 => FaultAction::Fail(node),
            5 => FaultAction::Recover(node),
            6 => FaultAction::AddNode,
            _ => FaultAction::DrainNode(node),
        };
        sim.net.schedule(at, action);
    }

    let mut writer = sim.client(seed, 3);
    let mut attempted = Vec::new();
    let mut acked = Vec::new();
    for v in 0..N {
        attempted.push(v);
        if writer.insert(chunk_of(v)).is_ok() {
            acked.push(v);
        }
    }

    sim.net.heal_all();

    // No value may exist twice in storage, acked or not: duplicate
    // suppression must hold for every retransmission path.
    let stored = sim.stored_values();
    stored.windows(2).for_each(|w| {
        assert_ne!(w[0], w[1], "value {} double-inserted (seed {seed})", w[0]);
    });

    sim.seal();
    let mut reader = sim.client(seed ^ 5, 3);
    let drained = drain_all(&mut reader).expect("drain");
    assert_exactly_once(&attempted, &acked, &drained);
}
