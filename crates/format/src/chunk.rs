//! The chunk: Hurricane's indivisible unit of data.
//!
//! Chunks are fixed-*capacity* blocks (the paper uses 4 MB); the final
//! chunk of a stream may be shorter because records never straddle
//! boundaries. Chunks are immutable once built and cheaply cloneable
//! (reference-counted), which lets the storage layer hand the same chunk to
//! replication and to a reader without copying.

use bytes::Bytes;

/// The paper's default chunk size: 4 MB (§4.5).
///
/// Chosen there to minimize remote-access overhead, reduce internal
/// fragmentation for small bags, and avoid random disk access. Tests and
/// laptop-scale examples configure much smaller chunks through the
/// writer-side chunk capacity (`ChunkWriter::new`).
pub const DEFAULT_CHUNK_SIZE: usize = 4 * 1024 * 1024;

/// An immutable block of serialized records.
#[derive(Clone, PartialEq, Eq)]
pub struct Chunk {
    data: Bytes,
}

impl Chunk {
    /// Wraps raw bytes as a chunk.
    pub fn from_bytes(data: Bytes) -> Self {
        Self { data }
    }

    /// Builds a chunk from a `Vec<u8>` without copying.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Self { data: data.into() }
    }

    /// Returns the chunk payload.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Returns the payload as shared `Bytes`, cloning only the refcount.
    pub fn shared(&self) -> Bytes {
        self.data.clone()
    }

    /// Returns the payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true for a zero-length chunk.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::fmt::Debug for Chunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Chunk({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Chunk {
    fn from(v: Vec<u8>) -> Self {
        Chunk::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_wraps_bytes() {
        let c = Chunk::from_vec(vec![1, 2, 3]);
        assert_eq!(c.bytes(), &[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let c = Chunk::from_vec(vec![0u8; 1024]);
        let d = c.clone();
        assert_eq!(c.shared().as_ptr(), d.shared().as_ptr());
    }

    #[test]
    fn empty_chunk() {
        let c = Chunk::from_vec(Vec::new());
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn debug_shows_size() {
        assert_eq!(
            format!("{:?}", Chunk::from_vec(vec![9; 5])),
            "Chunk(5 bytes)"
        );
    }
}
