//! Typed record codecs.
//!
//! The paper (§2.2): "Hurricane provides a number of typed iterators for
//! serializing and deserializing common formats (integers, floats, strings,
//! tuples, etc.), which can be combined to represent more complex data
//! types (e.g., nested tuples)." [`Record`] is that composition mechanism:
//! primitives implement it directly, and tuples / options / vectors compose
//! any implementors, so `(u64, Vec<(String, f64)>)` is a record type with
//! no extra code.
//!
//! Integers use LEB128 varints (zig-zag for signed) so the common case —
//! small ids and counts — stays compact; floats are fixed-width
//! little-endian IEEE-754.

use crate::varint;
use core::fmt;

/// Errors produced while encoding or decoding records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended in the middle of a record.
    Truncated,
    /// A varint was overlong or overflowed 64 bits.
    InvalidVarint,
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// A tag byte (bool / option discriminant) held an invalid value.
    InvalidTag(u8),
    /// A single encoded record exceeds the chunk capacity, so it can never
    /// be stored without crossing a chunk boundary.
    RecordTooLarge {
        /// Encoded size of the offending record.
        record: usize,
        /// Capacity of the chunks being written.
        chunk: usize,
    },
    /// A declared collection length does not fit in memory bounds.
    LengthOverflow,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated mid-record"),
            CodecError::InvalidVarint => write!(f, "invalid varint encoding"),
            CodecError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::InvalidTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            CodecError::RecordTooLarge { record, chunk } => write!(
                f,
                "record of {record} bytes cannot fit a {chunk}-byte chunk"
            ),
            CodecError::LengthOverflow => write!(f, "declared length exceeds input"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A value that can be serialized into / deserialized from a chunk.
///
/// Implementations must satisfy the roundtrip law: for every value `v`,
/// decoding the bytes produced by `encode` yields a value equal to `v` and
/// consumes exactly `encoded_len()` bytes. The chunk writer relies on
/// `encoded_len` to enforce the never-cross-a-chunk-boundary invariant
/// without double-encoding.
pub trait Record: Sized {
    /// Appends this record's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one record from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;

    /// Returns the exact number of bytes `encode` will append.
    fn encoded_len(&self) -> usize;
}

/// Maps a signed value onto an unsigned one with small absolute values
/// staying small (zig-zag).
const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`]. `pub(crate)` so the trusted view decoders can
/// share the mapping.
pub(crate) const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub(crate) fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if input.len() < n {
        return Err(CodecError::Truncated);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

impl Record for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(take(input, 1)?[0])
    }

    fn encoded_len(&self) -> usize {
        1
    }
}

macro_rules! varint_record {
    ($ty:ty) => {
        impl Record for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                varint::encode(*self as u64, out);
            }

            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                let v = varint::decode(input)?;
                <$ty>::try_from(v).map_err(|_| CodecError::InvalidVarint)
            }

            fn encoded_len(&self) -> usize {
                varint::encoded_len(*self as u64)
            }
        }
    };
}

varint_record!(u16);
varint_record!(u32);
varint_record!(u64);
varint_record!(usize);

macro_rules! zigzag_record {
    ($ty:ty) => {
        impl Record for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                varint::encode(zigzag(*self as i64), out);
            }

            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                let v = unzigzag(varint::decode(input)?);
                <$ty>::try_from(v).map_err(|_| CodecError::InvalidVarint)
            }

            fn encoded_len(&self) -> usize {
                varint::encoded_len(zigzag(*self as i64))
            }
        }
    };
}

zigzag_record!(i16);
zigzag_record!(i32);
zigzag_record!(i64);

impl Record for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let b = take(input, 4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn encoded_len(&self) -> usize {
        4
    }
}

impl Record for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let b = take(input, 8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(f64::from_le_bytes(arr))
    }

    fn encoded_len(&self) -> usize {
        8
    }
}

impl Record for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::InvalidTag(t)),
        }
    }

    fn encoded_len(&self) -> usize {
        1
    }
}

impl Record for String {
    fn encode(&self, out: &mut Vec<u8>) {
        varint::encode(self.len() as u64, out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = varint::decode(input)?;
        if len > input.len() as u64 {
            return Err(CodecError::Truncated);
        }
        let bytes = take(input, len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }

    fn encoded_len(&self) -> usize {
        varint::encoded_len(self.len() as u64) + self.len()
    }
}

/// An owned byte string with a length-prefixed wire form.
///
/// `Blob` is byte-for-byte wire-compatible with both `String` (minus the
/// UTF-8 requirement) and `Vec<u8>`: a varint length followed by the raw
/// payload. It exists so binary payloads get a borrowed view —
/// [`crate::view::RecordView::decode_view`] yields `&[u8]` pointing
/// straight into the chunk, where `Vec<u8>`'s element-wise view would
/// iterate bytes one at a time.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Blob(pub Vec<u8>);

impl Record for Blob {
    fn encode(&self, out: &mut Vec<u8>) {
        varint::encode(self.0.len() as u64, out);
        out.extend_from_slice(&self.0);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = varint::decode(input)?;
        if len > input.len() as u64 {
            return Err(CodecError::Truncated);
        }
        Ok(Blob(take(input, len as usize)?.to_vec()))
    }

    fn encoded_len(&self) -> usize {
        varint::encoded_len(self.0.len() as u64) + self.0.len()
    }
}

/// A `u32` with a fixed four-byte little-endian wire form.
///
/// The varint codecs optimize for *small* values; data whose values are
/// dense bit patterns (hash keys, bitset words, packed ids) pays 5–10
/// varint bytes per word *and* a data-dependent decode loop. The fixed
/// forms trade those bytes for a constant-size encoding, which is what
/// makes a sequence of them [`crate::view::FixedStride`]: random access
/// by offset multiplication and branch-free batch loops over chunk bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct FixedU32(pub u32);

/// A `u64` with a fixed eight-byte little-endian wire form.
///
/// See [`FixedU32`] for when to prefer the fixed forms over varints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct FixedU64(pub u64);

macro_rules! fixed_le_record {
    ($ty:ty, $inner:ty, $bytes:literal) => {
        impl Record for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.0.to_le_bytes());
            }

            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                let b = take(input, $bytes)?;
                let mut arr = [0u8; $bytes];
                arr.copy_from_slice(b);
                Ok(Self(<$inner>::from_le_bytes(arr)))
            }

            fn encoded_len(&self) -> usize {
                $bytes
            }
        }
    };
}

fixed_le_record!(FixedU32, u32, 4);
fixed_le_record!(FixedU64, u64, 8);

impl From<u32> for FixedU32 {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl From<u64> for FixedU64 {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

impl<T: Record> Record for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Record::encoded_len)
    }
}

impl<T: Record> Record for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        varint::encode(self.len() as u64, out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = varint::decode(input)?;
        // Each element consumes at least one byte, so a declared length
        // beyond the remaining input is corrupt, not just large.
        if len > input.len() as u64 {
            return Err(CodecError::LengthOverflow);
        }
        let mut items = Vec::with_capacity(len as usize);
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Ok(items)
    }

    fn encoded_len(&self) -> usize {
        varint::encoded_len(self.len() as u64) + self.iter().map(Record::encoded_len).sum::<usize>()
    }
}

macro_rules! tuple_record {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Record),+> Record for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }

            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                Ok(($($name::decode(input)?,)+))
            }

            fn encoded_len(&self) -> usize {
                0 $(+ self.$idx.encoded_len())+
            }
        }
    };
}

tuple_record!(A: 0);
tuple_record!(A: 0, B: 1);
tuple_record!(A: 0, B: 1, C: 2);
tuple_record!(A: 0, B: 1, C: 2, D: 3);
tuple_record!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_record!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl Record for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(())
    }

    fn encoded_len(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Record + PartialEq + fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.encoded_len(), "encoded_len law for {v:?}");
        let mut slice = buf.as_slice();
        let back = T::decode(&mut slice).unwrap();
        assert_eq!(back, v);
        assert!(slice.is_empty(), "decode must consume exactly the record");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(i16::MIN);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(-1i64);
        roundtrip(0.0f32);
        roundtrip(-1234.5f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let mut buf = Vec::new();
        f64::NAN.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = f64::decode(&mut slice).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn string_roundtrips() {
        roundtrip(String::new());
        roundtrip("hello".to_string());
        roundtrip("héllo wörld — ünïcodé ✓".to_string());
        roundtrip("x".repeat(10_000));
    }

    #[test]
    fn string_rejects_bad_utf8() {
        let mut buf = Vec::new();
        varint::encode(2, &mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut slice = buf.as_slice();
        assert_eq!(String::decode(&mut slice), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn blob_roundtrips_and_matches_string_wire_form() {
        roundtrip(Blob(Vec::new()));
        roundtrip(Blob(vec![0xff, 0x00, 0x80]));
        roundtrip(Blob(vec![7u8; 5_000]));
        // Blob("hi") and "hi".to_string() share a wire form.
        let mut a = Vec::new();
        Blob(b"hi".to_vec()).encode(&mut a);
        let mut b = Vec::new();
        "hi".to_string().encode(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_ints_roundtrip_at_constant_width() {
        roundtrip(FixedU32(0));
        roundtrip(FixedU32(u32::MAX));
        roundtrip(FixedU64(0));
        roundtrip(FixedU64(u64::MAX));
        // Unlike varints, width never depends on the value.
        assert_eq!(FixedU32(0).encoded_len(), 4);
        assert_eq!(FixedU32(u32::MAX).encoded_len(), 4);
        assert_eq!(FixedU64(1).encoded_len(), 8);
        assert_eq!(FixedU64(u64::MAX).encoded_len(), 8);
        roundtrip((FixedU32(7), FixedU64(1 << 60)));
        roundtrip(vec![FixedU64(3), FixedU64(u64::MAX), FixedU64(0)]);
        assert_eq!(FixedU64::from(9u64), FixedU64(9));
        assert_eq!(FixedU32::from(9u32), FixedU32(9));
    }

    #[test]
    fn composite_roundtrips() {
        roundtrip((42u64, "ip".to_string()));
        roundtrip((1u32, 2i64, 3.5f64));
        roundtrip(Some((7u64, vec![1u8, 2, 3])));
        roundtrip(None::<u64>);
        roundtrip(vec![(1u64, "a".to_string()), (2, "b".to_string())]);
        // Nested tuples, the paper's example of composition.
        roundtrip(((1u64, 2u64), ("k".to_string(), vec![9u32])));
        roundtrip((1u8, 2u16, 3u32, 4u64, 5i64, 6.0f64));
    }

    #[test]
    fn small_ints_encode_small() {
        assert_eq!(7u64.encoded_len(), 1);
        assert_eq!((-3i64).encoded_len(), 1);
        assert_eq!(300u64.encoded_len(), 2);
    }

    #[test]
    fn signed_range_check_on_decode() {
        // i64::MAX zig-zagged does not fit i16.
        let mut buf = Vec::new();
        i64::MAX.encode(&mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(i16::decode(&mut slice), Err(CodecError::InvalidVarint));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let mut buf = Vec::new();
        (12345u64, "abcdef".to_string(), 2.5f64).encode(&mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            let r = <(u64, String, f64)>::decode(&mut slice);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn vec_length_overflow_rejected() {
        let mut buf = Vec::new();
        varint::encode(u64::MAX, &mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(
            Vec::<u8>::decode(&mut slice),
            Err(CodecError::LengthOverflow)
        );
    }

    #[test]
    fn bool_rejects_bad_tag() {
        let mut slice: &[u8] = &[2];
        assert_eq!(bool::decode(&mut slice), Err(CodecError::InvalidTag(2)));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CodecError::RecordTooLarge {
            record: 100,
            chunk: 64,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("64"));
    }
}
