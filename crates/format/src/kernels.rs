//! Batch kernels over flat little-endian byte runs.
//!
//! The fixed-stride layout ([`crate::FixedStride`]) exists so that hot
//! loops can treat chunk payloads as flat arrays; these kernels are the
//! loops. Each one takes raw encoded bytes (a [`crate::SeqView`] payload
//! or a [`crate::StrideSlice`] byte run) and folds them whole: word-wise
//! OR, popcount, widening sums, an equality filter, and a strided column
//! gather.
//!
//! # The `simd` feature
//!
//! Every kernel has a scalar implementation that is always compiled and
//! is the default build. With the `simd` cargo feature enabled on
//! x86_64, each call dispatches at runtime: AVX2 when the CPU reports it
//! (`is_x86_feature_detected!`, cached by `std`), else SSE2 — the
//! x86_64 baseline, so it needs no detection. Stable `core::arch`
//! intrinsics only; no nightly `std::simd`. On other architectures the
//! feature compiles but dispatches to the scalar loops.
//!
//! Results are bit-identical across all paths (the operations are
//! word-wise OR, popcount, and *wrapping* integer addition — all exactly
//! associative), which `tests/props_format.rs` pins by property test.

/// ORs the little-endian `u64` words of `src` into `acc[..src.len()/8]`.
///
/// # Panics
///
/// Panics when `src.len()` is not a multiple of 8 or decodes to more
/// words than `acc` holds.
pub fn or_le64(acc: &mut [u64], src: &[u8]) {
    let n = checked_words(src, 8);
    assert!(n <= acc.len(), "OR source ({n} words) exceeds accumulator");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 was just detected; slice bounds hold.
            unsafe { x86::or_le64_avx2(&mut acc[..n], src) };
        } else {
            // SAFETY: SSE2 is the x86_64 baseline; slice bounds hold.
            unsafe { x86::or_le64_sse2(&mut acc[..n], src) };
        }
        return;
    }
    #[allow(unreachable_code)]
    or_le64_scalar(&mut acc[..n], src)
}

/// Counts the set bits across the little-endian `u64` words of `src`.
///
/// # Panics
///
/// Panics when `src.len()` is not a multiple of 8.
pub fn popcount_le64(src: &[u8]) -> u64 {
    checked_words(src, 8);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 was just detected.
            return unsafe { x86::popcount_avx2(src) };
        }
        if std::arch::is_x86_feature_detected!("popcnt") {
            // SAFETY: POPCNT was just detected.
            return unsafe { x86::popcount_popcnt(src) };
        }
    }
    popcount_scalar(src)
}

/// Wrapping sum of the little-endian `u64` words of `src`.
///
/// # Panics
///
/// Panics when `src.len()` is not a multiple of 8.
pub fn sum_le64(src: &[u8]) -> u64 {
    checked_words(src, 8);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 was just detected.
            return unsafe { x86::sum_le64_avx2(src) };
        }
        // SAFETY: SSE2 is the x86_64 baseline.
        return unsafe { x86::sum_le64_sse2(src) };
    }
    #[allow(unreachable_code)]
    sum_le64_scalar(src)
}

/// Wrapping sum of the little-endian `u32` words of `src`, each widened
/// to `u64` before adding (so up to 2^32 words cannot overflow).
///
/// # Panics
///
/// Panics when `src.len()` is not a multiple of 4.
pub fn sum_le32(src: &[u8]) -> u64 {
    checked_words(src, 4);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 was just detected.
            return unsafe { x86::sum_le32_avx2(src) };
        }
        // SAFETY: SSE2 is the x86_64 baseline.
        return unsafe { x86::sum_le32_sse2(src) };
    }
    #[allow(unreachable_code)]
    sum_le32_scalar(src)
}

/// Counts the little-endian `u32` words of `src` equal to `needle` —
/// the filter kernel (a selective scan's predicate evaluated 4–8 lanes
/// at a time).
///
/// # Panics
///
/// Panics when `src.len()` is not a multiple of 4.
pub fn count_eq_le32(src: &[u8], needle: u32) -> usize {
    checked_words(src, 4);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 was just detected.
            return unsafe { x86::count_eq_le32_avx2(src, needle) };
        }
        // SAFETY: SSE2 is the x86_64 baseline.
        return unsafe { x86::count_eq_le32_sse2(src, needle) };
    }
    #[allow(unreachable_code)]
    count_eq_le32_scalar(src, needle)
}

/// Gathers the leading little-endian `u32` of every `stride`-byte record
/// in `src`, appending `src.len() / stride` values to `out` — the column
/// extraction that turns an interleaved fixed-stride run into a dense
/// key vector (e.g. the probe keys of a join's 12-byte tuples).
///
/// # Panics
///
/// Panics when `stride < 4` or `src.len()` is not a multiple of
/// `stride`.
pub fn gather_stride_u32(src: &[u8], stride: usize, out: &mut Vec<u32>) {
    assert!(stride >= 4, "stride {stride} cannot hold a u32 prefix");
    let n = checked_words(src, stride);
    out.reserve(n);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        // The AVX2 gather indexes with i32 byte offsets; any realistic
        // chunk fits, but fall back rather than truncate if not.
        if src.len() <= i32::MAX as usize && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 was just detected; offsets stay in bounds
            // because every record holds at least 4 bytes.
            unsafe { x86::gather_stride_u32_avx2(src, stride, out) };
            return;
        }
    }
    gather_stride_u32_scalar(src, stride, out)
}

/// Asserts `src` divides into `width`-byte words and returns the count.
fn checked_words(src: &[u8], width: usize) -> usize {
    assert!(
        src.len().is_multiple_of(width),
        "kernel input of {} bytes is not a whole number of {width}-byte words",
        src.len()
    );
    src.len() / width
}

// ---------------------------------------------------------------------
// Scalar implementations — always compiled: they are the non-x86 and
// feature-off builds, and the references the SIMD paths are tested
// against.
// ---------------------------------------------------------------------

fn or_le64_scalar(acc: &mut [u64], src: &[u8]) {
    for (slot, w) in acc.iter_mut().zip(src.chunks_exact(8)) {
        *slot |= u64::from_le_bytes(w.try_into().expect("chunks_exact yields 8 bytes"));
    }
}

fn popcount_scalar(src: &[u8]) -> u64 {
    src.chunks_exact(8)
        .map(|w| {
            u64::from_le_bytes(w.try_into().expect("chunks_exact yields 8 bytes")).count_ones()
                as u64
        })
        .sum()
}

fn sum_le64_scalar(src: &[u8]) -> u64 {
    src.chunks_exact(8).fold(0u64, |acc, w| {
        acc.wrapping_add(u64::from_le_bytes(
            w.try_into().expect("chunks_exact yields 8 bytes"),
        ))
    })
}

fn sum_le32_scalar(src: &[u8]) -> u64 {
    src.chunks_exact(4).fold(0u64, |acc, w| {
        acc.wrapping_add(
            u32::from_le_bytes(w.try_into().expect("chunks_exact yields 4 bytes")) as u64,
        )
    })
}

fn count_eq_le32_scalar(src: &[u8], needle: u32) -> usize {
    src.chunks_exact(4)
        .filter(|w| {
            u32::from_le_bytes((*w).try_into().expect("chunks_exact yields 4 bytes")) == needle
        })
        .count()
}

fn gather_stride_u32_scalar(src: &[u8], stride: usize, out: &mut Vec<u32>) {
    out.extend(
        src.chunks_exact(stride).map(|rec| {
            u32::from_le_bytes(rec[..4].try_into().expect("stride is at least 4 bytes"))
        }),
    );
}

// ---------------------------------------------------------------------
// x86_64 SIMD implementations (feature `simd`): stable core::arch
// intrinsics. SSE2 functions carry no target_feature attribute needing
// detection beyond the x86_64 baseline; AVX2 (and POPCNT) functions are
// `#[target_feature]`-gated and only called after runtime detection.
// ---------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use core::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller detected AVX2; `src.len() == acc.len() * 8`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn or_le64_avx2(acc: &mut [u64], src: &[u8]) {
        let n = acc.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let a = acc.as_mut_ptr().add(i) as *mut __m256i;
            let s = src.as_ptr().add(i * 8) as *const __m256i;
            _mm256_storeu_si256(
                a,
                _mm256_or_si256(_mm256_loadu_si256(a), _mm256_loadu_si256(s)),
            );
            i += 4;
        }
        super::or_le64_scalar(&mut acc[i..], &src[i * 8..]);
    }

    /// # Safety
    ///
    /// `src.len() == acc.len() * 8` (SSE2 is the x86_64 baseline).
    pub unsafe fn or_le64_sse2(acc: &mut [u64], src: &[u8]) {
        let n = acc.len();
        let mut i = 0usize;
        while i + 2 <= n {
            let a = acc.as_mut_ptr().add(i) as *mut __m128i;
            let s = src.as_ptr().add(i * 8) as *const __m128i;
            _mm_storeu_si128(a, _mm_or_si128(_mm_loadu_si128(a), _mm_loadu_si128(s)));
            i += 2;
        }
        super::or_le64_scalar(&mut acc[i..], &src[i * 8..]);
    }

    /// Harley-Seal-style AVX2 popcount: per-byte counts via a nibble
    /// lookup (`pshufb`), horizontally reduced with `psadbw`.
    ///
    /// # Safety
    ///
    /// Caller detected AVX2; `src.len()` is a multiple of 8.
    #[target_feature(enable = "avx2")]
    pub unsafe fn popcount_avx2(src: &[u8]) -> u64 {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let mut total = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 32 <= src.len() {
            let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let lo = _mm256_and_si256(v, low_mask);
            let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
            let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
            total = _mm256_add_epi64(total, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
            i += 32;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, total);
        lanes.iter().sum::<u64>() + super::popcount_scalar(&src[i..])
    }

    /// # Safety
    ///
    /// Caller detected POPCNT; `src.len()` is a multiple of 8.
    #[target_feature(enable = "popcnt")]
    pub unsafe fn popcount_popcnt(src: &[u8]) -> u64 {
        // With the popcnt target feature, count_ones is one instruction.
        super::popcount_scalar(src)
    }

    /// # Safety
    ///
    /// Caller detected AVX2; `src.len()` is a multiple of 8.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_le64_avx2(src: &[u8]) -> u64 {
        let mut total = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 32 <= src.len() {
            let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            total = _mm256_add_epi64(total, v);
            i += 32;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, total);
        lanes
            .iter()
            .fold(super::sum_le64_scalar(&src[i..]), |a, &l| a.wrapping_add(l))
    }

    /// # Safety
    ///
    /// `src.len()` is a multiple of 8 (SSE2 is the x86_64 baseline).
    pub unsafe fn sum_le64_sse2(src: &[u8]) -> u64 {
        let mut total = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 16 <= src.len() {
            let v = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            total = _mm_add_epi64(total, v);
            i += 16;
        }
        let mut lanes = [0u64; 2];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, total);
        lanes
            .iter()
            .fold(super::sum_le64_scalar(&src[i..]), |a, &l| a.wrapping_add(l))
    }

    /// # Safety
    ///
    /// Caller detected AVX2; `src.len()` is a multiple of 4.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_le32_avx2(src: &[u8]) -> u64 {
        let mut total = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 16 <= src.len() {
            // Widen four u32 lanes to u64 before adding: exact sums.
            let v = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            total = _mm256_add_epi64(total, _mm256_cvtepu32_epi64(v));
            i += 16;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, total);
        lanes
            .iter()
            .fold(super::sum_le32_scalar(&src[i..]), |a, &l| a.wrapping_add(l))
    }

    /// # Safety
    ///
    /// `src.len()` is a multiple of 4 (SSE2 is the x86_64 baseline).
    pub unsafe fn sum_le32_sse2(src: &[u8]) -> u64 {
        let zero = _mm_setzero_si128();
        let mut total = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 16 <= src.len() {
            let v = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            // Interleave with zero to widen each u32 half to u64 lanes.
            total = _mm_add_epi64(total, _mm_unpacklo_epi32(v, zero));
            total = _mm_add_epi64(total, _mm_unpackhi_epi32(v, zero));
            i += 16;
        }
        let mut lanes = [0u64; 2];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, total);
        lanes
            .iter()
            .fold(super::sum_le32_scalar(&src[i..]), |a, &l| a.wrapping_add(l))
    }

    /// # Safety
    ///
    /// Caller detected AVX2; `src.len()` is a multiple of 4.
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_eq_le32_avx2(src: &[u8], needle: u32) -> usize {
        let pat = _mm256_set1_epi32(needle as i32);
        let mut hits = 0usize;
        let mut i = 0usize;
        while i + 32 <= src.len() {
            let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let eq = _mm256_cmpeq_epi32(v, pat);
            hits += _mm256_movemask_ps(_mm256_castsi256_ps(eq)).count_ones() as usize;
            i += 32;
        }
        hits + super::count_eq_le32_scalar(&src[i..], needle)
    }

    /// # Safety
    ///
    /// `src.len()` is a multiple of 4 (SSE2 is the x86_64 baseline).
    pub unsafe fn count_eq_le32_sse2(src: &[u8], needle: u32) -> usize {
        let pat = _mm_set1_epi32(needle as i32);
        let mut hits = 0usize;
        let mut i = 0usize;
        while i + 16 <= src.len() {
            let v = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let eq = _mm_cmpeq_epi32(v, pat);
            hits += _mm_movemask_ps(_mm_castsi128_ps(eq)).count_ones() as usize;
            i += 16;
        }
        hits + super::count_eq_le32_scalar(&src[i..], needle)
    }

    /// # Safety
    ///
    /// Caller detected AVX2; `stride >= 4`, `src.len()` is a multiple of
    /// `stride` and at most `i32::MAX`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_stride_u32_avx2(src: &[u8], stride: usize, out: &mut Vec<u32>) {
        let n = src.len() / stride;
        // Eight per-lane byte offsets 0, s, 2s, …, 7s (scale 1): each
        // lane reads the 4-byte prefix of one record.
        let offs = _mm256_setr_epi32(
            0,
            stride as i32,
            (2 * stride) as i32,
            (3 * stride) as i32,
            (4 * stride) as i32,
            (5 * stride) as i32,
            (6 * stride) as i32,
            (7 * stride) as i32,
        );
        let mut i = 0usize;
        let mut lanes = [0u32; 8];
        while i + 8 <= n {
            let base = src.as_ptr().add(i * stride) as *const i32;
            let v = _mm256_i32gather_epi32::<1>(base, offs);
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
            out.extend_from_slice(&lanes);
            i += 8;
        }
        super::gather_stride_u32_scalar(&src[i * stride..], stride, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize) -> Vec<u8> {
        (0..n as u64)
            .flat_map(|i| hurricane_mix(i).to_le_bytes().into_iter())
            .collect()
    }

    fn hurricane_mix(mut x: u64) -> u64 {
        // SplitMix64 finalizer, inlined to keep this crate dependency-free.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    #[test]
    fn or_matches_scalar_reference() {
        // Lengths straddle every vector width boundary (0, partial
        // vector, whole vectors plus tail).
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 100] {
            let src = words(n);
            let mut acc: Vec<u64> = (0..n as u64).map(|i| hurricane_mix(i ^ 0xA5A5)).collect();
            let mut want = acc.clone();
            or_le64_scalar(&mut want, &src);
            or_le64(&mut acc, &src);
            assert_eq!(acc, want, "n = {n}");
        }
    }

    #[test]
    fn or_accepts_shorter_source() {
        let src = words(3);
        let mut acc = vec![!0u64; 5];
        or_le64(&mut acc, &src);
        assert_eq!(&acc[3..], &[!0, !0], "words past the source untouched");
    }

    #[test]
    fn popcount_and_sums_match_scalar_reference() {
        for n in [0usize, 1, 2, 3, 4, 5, 8, 15, 33, 64, 127] {
            let src = words(n);
            assert_eq!(popcount_le64(&src), popcount_scalar(&src), "n = {n}");
            assert_eq!(sum_le64(&src), sum_le64_scalar(&src), "n = {n}");
            assert_eq!(sum_le32(&src), sum_le32_scalar(&src), "n = {n}");
        }
    }

    #[test]
    fn count_eq_finds_planted_needles() {
        let mut src = words(50);
        let needle = 0xDEAD_BEEFu32;
        for at in [0usize, 13, 49, 70, 99] {
            src[at * 4..at * 4 + 4].copy_from_slice(&needle.to_le_bytes());
        }
        // `words` values are pseudorandom, so accidental hits are
        // vanishingly unlikely; assert against the scalar reference.
        assert_eq!(
            count_eq_le32(&src, needle),
            count_eq_le32_scalar(&src, needle)
        );
        assert_eq!(count_eq_le32(&src, needle), 5);
    }

    #[test]
    fn gather_extracts_stride_prefixes() {
        for (stride, n) in [(4usize, 9usize), (12, 20), (17, 5), (8, 0)] {
            let src: Vec<u8> = (0..stride * n)
                .map(|i| hurricane_mix(i as u64) as u8)
                .collect();
            let mut got = vec![0xFFFF_FFFFu32]; // pre-existing content kept
            let mut want = got.clone();
            gather_stride_u32_scalar(&src, stride, &mut want);
            gather_stride_u32(&src, stride, &mut got);
            assert_eq!(got, want, "stride {stride}, n {n}");
            assert_eq!(got.len(), n + 1);
        }
    }

    #[test]
    #[should_panic(expected = "not a whole number")]
    fn ragged_input_panics() {
        popcount_le64(&[0u8; 7]);
    }

    #[test]
    #[should_panic(expected = "exceeds accumulator")]
    fn oversized_or_source_panics() {
        or_le64(&mut [0u64; 1], &[0u8; 16]);
    }
}
