//! Chunked serialization for Hurricane.
//!
//! Hurricane stores all input and intermediate data in *bags* of fixed-size
//! *chunks* (paper §2.2). A chunk is the indivisible unit of data transfer:
//! workers remove whole chunks from bags, deserialize them into records,
//! compute, and insert whole chunks of output. Because clones of a task may
//! process any subset of a bag's chunks, the serialization layer guarantees
//! that **no record ever crosses a chunk boundary** — each chunk is
//! independently decodable.
//!
//! This crate provides:
//!
//! * [`chunk::Chunk`] — an immutable, cheaply-cloneable block of bytes.
//! * [`codec::Record`] — the typed-record trait, with implementations for
//!   integers, floats, booleans, strings, byte blobs, options, vectors, and
//!   tuples (nested composition gives "nested tuples" as in the paper).
//! * [`view::RecordView`] — the borrowed half of the codec: decode a
//!   record as a view whose `&str`/`&[u8]` fields point straight into the
//!   chunk, for allocation-free hot loops. Spans validated once re-read
//!   through the trusted decoder (no second round of checks), and
//!   [`view::FixedStride`] types ([`codec::FixedU32`]/[`codec::FixedU64`],
//!   floats, tuples of them) get O(1) random access into sequences and
//!   whole chunks ([`view::StrideSlice`]). See the [`view`] module docs
//!   for when to use `Record` vs `RecordView`.
//! * [`kernels`] — batch kernels (word OR, popcount, widening sums,
//!   equality filter, strided column gather) over the flat byte runs
//!   fixed-stride sequences expose, with runtime-dispatched SSE2/AVX2
//!   implementations behind the `simd` cargo feature and scalar
//!   fallbacks as the default build. Surfaced as methods on
//!   [`view::SeqView`] / [`view::StrideSlice`].
//! * [`stream::ChunkWriter`] / [`stream::ChunkReader`] — the typed
//!   iterators that serialize a record stream into boundary-respecting
//!   chunks (single-pass encoding, with [`stream::ChunkWriter::push_encoded`]
//!   for pre-serialized fan-out) and back. The reader's
//!   [`stream::ChunkReader::for_each`] / [`stream::ChunkReader::fold`]
//!   drivers stream borrowed views without materializing a `Vec`.
//!
//! # Examples
//!
//! ```
//! use hurricane_format::{ChunkWriter, decode_all};
//!
//! let mut writer = ChunkWriter::<(u64, String)>::new(64);
//! let mut chunks = Vec::new();
//! for i in 0..100u64 {
//!     chunks.extend(writer.push(&(i, format!("record-{i}"))).unwrap());
//! }
//! chunks.extend(writer.finish());
//!
//! // Every chunk decodes independently; concatenation restores the stream.
//! let records: Vec<(u64, String)> = chunks
//!     .iter()
//!     .flat_map(|c| decode_all::<(u64, String)>(c).unwrap())
//!     .collect();
//! assert_eq!(records.len(), 100);
//! assert_eq!(records[7], (7, "record-7".to_string()));
//! ```

pub mod chunk;
pub mod codec;
pub mod kernels;
pub mod stream;
pub mod varint;
pub mod view;

pub use chunk::{Chunk, DEFAULT_CHUNK_SIZE};
pub use codec::{Blob, CodecError, FixedU32, FixedU64, Record};
pub use stream::{
    decode_all, encode_all, fold_views, for_each_view, stride_records, try_for_each_view, ChunkBuf,
    ChunkReader, ChunkWriter,
};
pub use view::{FixedStride, RecordView, SeqChunks, SeqIter, SeqView, StrideIter, StrideSlice};
