//! Chunk-boundary-respecting record streams.
//!
//! [`ChunkWriter`] packs a stream of records into chunks of at most
//! `chunk_size` bytes, closing a chunk whenever the next record would not
//! fit. [`ChunkReader`] iterates the records of one chunk. Together they
//! uphold the invariant from paper §2.2: *records never cross chunk
//! boundaries*, so any subset of a bag's chunks — the subset a task clone
//! happens to remove — decodes independently.

use crate::chunk::Chunk;
use crate::codec::{CodecError, Record};
use crate::view::{FixedStride, RecordView, StrideSlice};
use core::marker::PhantomData;

/// Serializes records into fixed-capacity chunks.
///
/// # Examples
///
/// ```
/// use hurricane_format::ChunkWriter;
///
/// let mut w = ChunkWriter::<u64>::new(16);
/// let mut chunks = Vec::new();
/// for i in 0..100u64 {
///     chunks.extend(w.push(&i).unwrap());
/// }
/// chunks.extend(w.finish());
/// assert!(chunks.iter().all(|c| c.len() <= 16));
/// ```
pub struct ChunkWriter<T: Record> {
    body: ChunkBuf,
    records_in_buf: u64,
    records_total: u64,
    chunks_emitted: u64,
    _marker: PhantomData<fn(&T)>,
}

/// The type-free core of single-pass chunk building: a byte buffer plus
/// the never-cross-a-chunk-boundary protocol.
///
/// Both [`ChunkWriter`] (typed, this crate) and `hurricane-core`'s
/// `BagWriter` build chunks the same way — serialize one record's bytes
/// into the buffer, then enforce the boundary invariant — so the
/// protocol lives here once: the encode-headroom capacity policy, the
/// carry-the-overflowing-record-into-the-next-buffer seal, and the
/// truncate rollback (with capacity release) for oversized records.
///
/// Usage per record: append exactly one record's encoding to
/// [`ChunkBuf::encode_buf`], then call [`ChunkBuf::commit`] with the
/// pre-append length. A returned `Ok(Some(payload))` is a completed
/// chunk's bytes.
#[derive(Debug)]
pub struct ChunkBuf {
    chunk_size: usize,
    buf: Vec<u8>,
}

impl ChunkBuf {
    /// Headroom reserved beyond the chunk capacity so that single-pass
    /// encoding of the record that overflows a chunk (its bytes land in
    /// the buffer *before* the boundary check) does not reallocate the
    /// nearly-full buffer. Records up to this size never trigger a
    /// mid-encode realloc; capped at `chunk_size` so tiny test chunks
    /// don't over-allocate.
    const ENCODE_HEADROOM: usize = 4096;

    fn normal_capacity(chunk_size: usize) -> usize {
        chunk_size + Self::ENCODE_HEADROOM.min(chunk_size)
    }

    fn fresh(chunk_size: usize) -> Vec<u8> {
        Vec::with_capacity(Self::normal_capacity(chunk_size))
    }

    /// Creates an empty buffer for chunks of at most `chunk_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            chunk_size,
            buf: Self::fresh(chunk_size),
        }
    }

    /// The configured chunk capacity.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns true when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The raw buffer to serialize one record into. Callers must append
    /// exactly one record's encoding and then [`ChunkBuf::commit`] it.
    #[inline]
    pub fn encode_buf(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Enforces the boundary invariant for the record appended since
    /// `start` (the buffer length before the append). Returns the sealed
    /// previous contents if the record overflowed the capacity and was
    /// carried into a fresh buffer, or [`CodecError::RecordTooLarge`]
    /// (rolled back; the buffer stays usable) if the record alone can
    /// never fit a chunk.
    #[inline]
    pub fn commit(&mut self, start: usize) -> Result<Option<Vec<u8>>, CodecError> {
        // One branch on the hot path: an in-capacity append needs no
        // other bookkeeping. Overflow (once per chunk) and the oversized-
        // record error share the cold path.
        if self.buf.len() > self.chunk_size {
            return self.overflow(start);
        }
        Ok(None)
    }

    /// Cold: runs once per sealed chunk (or on an oversized record),
    /// keeping `commit`'s hot body small enough to inline into record
    /// loops.
    #[cold]
    fn overflow(&mut self, start: usize) -> Result<Option<Vec<u8>>, CodecError> {
        let len = self.buf.len() - start;
        if len > self.chunk_size {
            self.buf.truncate(start);
            // The oversized encode may have grown the buffer well past
            // its normal capacity; release that transient spike rather
            // than carrying it until the next seal.
            self.buf.shrink_to(Self::normal_capacity(self.chunk_size));
            return Err(CodecError::RecordTooLarge {
                record: len,
                chunk: self.chunk_size,
            });
        }
        let mut next = Self::fresh(self.chunk_size);
        next.extend_from_slice(&self.buf[start..]);
        self.buf.truncate(start);
        debug_assert!(!self.buf.is_empty(), "overflow implies a non-empty prefix");
        Ok(Some(std::mem::replace(&mut self.buf, next)))
    }

    /// Appends one pre-serialized record, sealing first if it would not
    /// fit — the fan-out primitive's byte layer.
    #[inline]
    pub fn append_encoded(&mut self, bytes: &[u8]) -> Result<Option<Vec<u8>>, CodecError> {
        if bytes.len() > self.chunk_size {
            return Err(CodecError::RecordTooLarge {
                record: bytes.len(),
                chunk: self.chunk_size,
            });
        }
        let mut completed = None;
        if self.buf.len() + bytes.len() > self.chunk_size {
            completed = self.take();
        }
        self.buf.extend_from_slice(bytes);
        Ok(completed)
    }

    /// Takes the buffered payload as a completed (possibly short) chunk
    /// body, leaving a fresh buffer; `None` when nothing is buffered.
    pub fn take(&mut self) -> Option<Vec<u8>> {
        if self.buf.is_empty() {
            return None;
        }
        Some(std::mem::replace(
            &mut self.buf,
            Self::fresh(self.chunk_size),
        ))
    }
}

impl<T: Record> ChunkWriter<T> {
    /// Creates a writer emitting chunks of at most `chunk_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(chunk_size: usize) -> Self {
        Self {
            body: ChunkBuf::new(chunk_size),
            records_in_buf: 0,
            records_total: 0,
            chunks_emitted: 0,
            _marker: PhantomData,
        }
    }

    /// Appends one record; returns a completed chunk if this record closed
    /// one.
    ///
    /// Encoding is single-pass: the record is serialized directly into the
    /// chunk buffer (no `encoded_len` pre-measurement traversal). If that
    /// overflows the capacity, the freshly written bytes are moved into
    /// the next chunk's buffer and the previous contents are sealed.
    ///
    /// Returns [`CodecError::RecordTooLarge`] if the record alone exceeds
    /// the chunk capacity — such a record could never be stored without
    /// crossing a boundary. The oversized bytes are rolled back with
    /// `truncate`, so the writer stays usable (note the record is fully
    /// serialized before rejection; the rollback also releases the
    /// transient capacity the encode forced).
    #[inline]
    pub fn push(&mut self, record: &T) -> Result<Option<Chunk>, CodecError> {
        let start = self.body.len();
        record.encode(self.body.encode_buf());
        let completed = self.body.commit(start)?.map(|data| self.sealed(data));
        self.records_in_buf += 1;
        self.records_total += 1;
        Ok(completed)
    }

    /// Appends one pre-serialized record. The bytes must be exactly one
    /// record's encoding; the boundary invariant is enforced the same way
    /// as [`ChunkWriter::push`]. This is the fan-out primitive: encode a
    /// record once, then feed the same bytes to many writers.
    #[inline]
    pub fn push_encoded(&mut self, bytes: &[u8]) -> Result<Option<Chunk>, CodecError> {
        let completed = self
            .body
            .append_encoded(bytes)?
            .map(|data| self.sealed(data));
        self.records_in_buf += 1;
        self.records_total += 1;
        Ok(completed)
    }

    /// Counts a sealed payload and wraps it as a chunk.
    fn sealed(&mut self, data: Vec<u8>) -> Chunk {
        self.records_in_buf = 0;
        self.chunks_emitted += 1;
        Chunk::from_vec(data)
    }

    /// Flushes any buffered records into a final (possibly short) chunk.
    pub fn finish(mut self) -> Option<Chunk> {
        self.seal()
    }

    /// Flushes buffered records without consuming the writer.
    pub fn flush(&mut self) -> Option<Chunk> {
        self.seal()
    }

    fn seal(&mut self) -> Option<Chunk> {
        let data = self.body.take()?;
        Some(self.sealed(data))
    }

    /// Number of records accepted so far.
    pub fn records_written(&self) -> u64 {
        self.records_total
    }

    /// Number of chunks sealed so far (not counting the buffered tail).
    pub fn chunks_emitted(&self) -> u64 {
        self.chunks_emitted
    }

    /// Number of records buffered but not yet sealed into a chunk.
    pub fn buffered_records(&self) -> u64 {
        self.records_in_buf
    }
}

/// Iterates the records of one chunk.
///
/// Yields `Err` once (and then `None`) if the chunk is corrupt; well-formed
/// chunks produced by [`ChunkWriter`] always decode cleanly.
pub struct ChunkReader<'a, T: Record> {
    rest: &'a [u8],
    failed: bool,
    _marker: PhantomData<fn() -> T>,
}

impl<'a, T: Record> ChunkReader<'a, T> {
    /// Creates a reader over `chunk`.
    pub fn new(chunk: &'a Chunk) -> Self {
        Self {
            rest: chunk.bytes(),
            failed: false,
            _marker: PhantomData,
        }
    }

    /// Bytes not yet decoded.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }
}

impl<'a, T: Record> Iterator for ChunkReader<'a, T> {
    type Item = Result<T, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.rest.is_empty() {
            return None;
        }
        match T::decode(&mut self.rest) {
            Ok(v) => Some(Ok(v)),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

impl<'a, T: RecordView> ChunkReader<'a, T> {
    /// Drives `f` over every record of the chunk as a borrowed view —
    /// no `Vec`, no owned values, no per-record allocation. Returns the
    /// record count.
    ///
    /// This is the steady-state read loop: where `decode_all` pays an
    /// owned `String`/`Vec` per record plus the collecting `Vec`, the
    /// view path hands `f` data that points straight into the chunk.
    pub fn for_each(mut self, mut f: impl FnMut(T::View<'a>)) -> Result<u64, CodecError> {
        let mut n = 0;
        while !self.rest.is_empty() {
            f(T::decode_view(&mut self.rest)?);
            n += 1;
        }
        Ok(n)
    }

    /// Like [`ChunkReader::for_each`] but the closure is fallible; the
    /// first error aborts the iteration. `E` absorbs decode errors too,
    /// so task loops can mix decoding and writing under one error type.
    pub fn try_for_each<E: From<CodecError>>(
        mut self,
        mut f: impl FnMut(T::View<'a>) -> Result<(), E>,
    ) -> Result<u64, E> {
        let mut n = 0;
        while !self.rest.is_empty() {
            f(T::decode_view(&mut self.rest)?)?;
            n += 1;
        }
        Ok(n)
    }

    /// Folds the chunk's record views into an accumulator.
    pub fn fold<Acc>(
        mut self,
        init: Acc,
        mut f: impl FnMut(Acc, T::View<'a>) -> Acc,
    ) -> Result<Acc, CodecError> {
        let mut acc = init;
        while !self.rest.is_empty() {
            acc = f(acc, T::decode_view(&mut self.rest)?);
        }
        Ok(acc)
    }
}

/// Decodes every record in `chunk`, failing on any corruption.
pub fn decode_all<T: Record>(chunk: &Chunk) -> Result<Vec<T>, CodecError> {
    ChunkReader::<T>::new(chunk).collect()
}

/// Drives `f` over every record view in `chunk`. Free-function sugar for
/// [`ChunkReader::for_each`].
pub fn for_each_view<T, F>(chunk: &Chunk, f: F) -> Result<u64, CodecError>
where
    T: RecordView,
    F: for<'a> FnMut(T::View<'a>),
{
    ChunkReader::<T>::new(chunk).for_each(f)
}

/// Fallible-closure variant of [`for_each_view`].
pub fn try_for_each_view<T, E, F>(chunk: &Chunk, f: F) -> Result<u64, E>
where
    T: RecordView,
    E: From<CodecError>,
    F: for<'a> FnMut(T::View<'a>) -> Result<(), E>,
{
    ChunkReader::<T>::new(chunk).try_for_each(f)
}

/// Folds every record view in `chunk` into an accumulator. Free-function
/// sugar for [`ChunkReader::fold`].
pub fn fold_views<T, Acc, F>(chunk: &Chunk, init: Acc, f: F) -> Result<Acc, CodecError>
where
    T: RecordView,
    F: for<'a> FnMut(Acc, T::View<'a>) -> Acc,
{
    ChunkReader::<T>::new(chunk).fold(init, f)
}

/// Types `chunk` as a run of fixed-stride records with O(1) random
/// access — no validating decode pass at all.
///
/// Because records never cross chunk boundaries and a [`FixedStride`]
/// type's every value occupies exactly `STRIDE` bytes, a chunk of such
/// records is well-formed iff its length divides evenly; the returned
/// [`StrideSlice`] then reads any record by offset arithmetic. This is
/// the batch-loop entry point for int-tuple chunks (e.g. a hash join's
/// partitioned `(key, payload)` pairs).
pub fn stride_records<T: FixedStride>(chunk: &Chunk) -> Result<StrideSlice<'_, T>, CodecError> {
    StrideSlice::new(chunk.bytes())
}

/// Encodes `records` into a sequence of chunks of at most `chunk_size`
/// bytes. Convenience for workload generators and tests.
pub fn encode_all<T: Record>(
    records: impl IntoIterator<Item = T>,
    chunk_size: usize,
) -> Result<Vec<Chunk>, CodecError> {
    let mut w = ChunkWriter::new(chunk_size);
    let mut chunks = Vec::new();
    for r in records {
        if let Some(c) = w.push(&r)? {
            chunks.push(c);
        }
    }
    chunks.extend(w.finish());
    Ok(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_respect_capacity_and_roundtrip() {
        let records: Vec<(u64, String)> = (0..500).map(|i| (i, format!("value-{i}"))).collect();
        let chunks = encode_all(records.clone(), 64).unwrap();
        assert!(chunks.len() > 1, "should have split into several chunks");
        for c in &chunks {
            assert!(c.len() <= 64, "chunk overflow: {} bytes", c.len());
            assert!(!c.is_empty());
        }
        let back: Vec<(u64, String)> = chunks
            .iter()
            .flat_map(|c| decode_all::<(u64, String)>(c).unwrap())
            .collect();
        assert_eq!(back, records);
    }

    #[test]
    fn every_chunk_decodes_independently() {
        let chunks = encode_all((0..1000u64).map(|i| (i, i * 2)), 37).unwrap();
        let mut total = 0usize;
        for c in &chunks {
            // Decoding each chunk in isolation must succeed: that is the
            // property that lets clones process disjoint chunk subsets.
            total += decode_all::<(u64, u64)>(c).unwrap().len();
        }
        assert_eq!(total, 1000);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut w = ChunkWriter::<String>::new(8);
        let err = w.push(&"this is far too long".to_string()).unwrap_err();
        assert!(matches!(err, CodecError::RecordTooLarge { .. }));
        // The writer stays usable for records that fit.
        assert!(w.push(&"ok".to_string()).unwrap().is_none());
        assert_eq!(w.records_written(), 1);
    }

    #[test]
    fn record_exactly_chunk_size_fits() {
        // "abcdef" encodes as 1 length byte + 6 payload bytes = 7.
        let mut w = ChunkWriter::<String>::new(7);
        assert!(w.push(&"abcdef".to_string()).unwrap().is_none());
        let c = w.finish().unwrap();
        assert_eq!(c.len(), 7);
        assert_eq!(decode_all::<String>(&c).unwrap(), vec!["abcdef"]);
    }

    #[test]
    fn finish_on_empty_writer_is_none() {
        let w = ChunkWriter::<u64>::new(16);
        assert!(w.finish().is_none());
    }

    #[test]
    fn flush_resets_buffer() {
        let mut w = ChunkWriter::<u64>::new(1024);
        w.push(&1).unwrap();
        w.push(&2).unwrap();
        assert_eq!(w.buffered_records(), 2);
        let c = w.flush().unwrap();
        assert_eq!(decode_all::<u64>(&c).unwrap(), vec![1, 2]);
        assert_eq!(w.buffered_records(), 0);
        assert!(w.flush().is_none());
        assert_eq!(w.chunks_emitted(), 1);
    }

    #[test]
    fn reader_reports_corruption_once() {
        let c = Chunk::from_vec(vec![0x80, 0x80]); // Truncated varint.
        let mut r = ChunkReader::<u64>::new(&c);
        assert!(matches!(r.next(), Some(Err(CodecError::Truncated))));
        assert!(r.next().is_none());
    }

    #[test]
    fn empty_chunk_yields_nothing() {
        let c = Chunk::from_vec(Vec::new());
        assert_eq!(decode_all::<u64>(&c).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn push_encoded_matches_push() {
        // The same stream through push and push_encoded produces the
        // same chunk boundaries and the same bytes.
        let records: Vec<(u64, String)> = (0..300).map(|i| (i, format!("r{i}"))).collect();
        let mut by_push = ChunkWriter::<(u64, String)>::new(48);
        let mut by_bytes = ChunkWriter::<(u64, String)>::new(48);
        let mut chunks_a = Vec::new();
        let mut chunks_b = Vec::new();
        let mut scratch = Vec::new();
        for r in &records {
            chunks_a.extend(by_push.push(r).unwrap());
            scratch.clear();
            r.encode(&mut scratch);
            chunks_b.extend(by_bytes.push_encoded(&scratch).unwrap());
        }
        chunks_a.extend(by_push.finish());
        chunks_b.extend(by_bytes.finish());
        assert_eq!(chunks_a.len(), chunks_b.len());
        for (a, b) in chunks_a.iter().zip(&chunks_b) {
            assert_eq!(a.bytes(), b.bytes());
        }
    }

    #[test]
    fn oversized_record_rollback_releases_capacity() {
        // An oversized record is fully serialized before rejection; the
        // rollback must release the transient buffer growth rather than
        // carrying a record-sized capacity until the next seal.
        let mut w = ChunkWriter::<Vec<u8>>::new(64);
        let baseline_cap = 64 + 64; // chunk_size + capped headroom
        let err = w.push(&vec![0u8; 1 << 20]).unwrap_err();
        assert!(matches!(err, CodecError::RecordTooLarge { .. }));
        assert!(
            w.body.encode_buf().capacity() <= baseline_cap,
            "rollback must shed the 1 MB transient: capacity {}",
            w.body.encode_buf().capacity()
        );
        // Writer still fully usable afterwards.
        assert!(w.push(&vec![1, 2, 3]).unwrap().is_none());
        assert_eq!(
            decode_all::<Vec<u8>>(&w.finish().unwrap()).unwrap(),
            vec![vec![1, 2, 3]]
        );
    }

    #[test]
    fn push_encoded_rejects_oversized() {
        let mut w = ChunkWriter::<u64>::new(4);
        let err = w.push_encoded(&[0u8; 9]).unwrap_err();
        assert!(matches!(err, CodecError::RecordTooLarge { record: 9, .. }));
        // Writer still usable.
        assert!(w.push_encoded(&[1, 2]).unwrap().is_none());
        assert_eq!(w.records_written(), 1);
    }

    #[test]
    fn single_pass_overflow_carries_the_record() {
        // Capacity 8: three 3-byte records overflow on the third; the
        // sealed chunk holds two records and the third starts the next.
        let mut w = ChunkWriter::<String>::new(8);
        assert!(w.push(&"ab".to_string()).unwrap().is_none());
        assert!(w.push(&"cd".to_string()).unwrap().is_none());
        let sealed = w.push(&"ef".to_string()).unwrap().unwrap();
        assert_eq!(decode_all::<String>(&sealed).unwrap(), vec!["ab", "cd"]);
        assert_eq!(w.buffered_records(), 1);
        let tail = w.finish().unwrap();
        assert_eq!(decode_all::<String>(&tail).unwrap(), vec!["ef"]);
    }

    #[test]
    fn for_each_streams_views_without_vec() {
        let chunks = encode_all((0..500u64).map(|i| (i, format!("s{i}"))), 64).unwrap();
        let mut n = 0u64;
        let mut name_bytes = 0usize;
        for c in &chunks {
            n += ChunkReader::<(u64, String)>::new(c)
                .for_each(|(_, s)| name_bytes += s.len())
                .unwrap();
        }
        assert_eq!(n, 500);
        assert_eq!(
            name_bytes,
            (0..500).map(|i| format!("s{i}").len()).sum::<usize>()
        );
    }

    #[test]
    fn fold_accumulates_views() {
        let chunks = encode_all(0..100u64, 32).unwrap();
        let total: u64 = chunks
            .iter()
            .map(|c| fold_views::<u64, u64, _>(c, 0, |acc, v| acc + v).unwrap())
            .sum();
        assert_eq!(total, 99 * 100 / 2);
    }

    #[test]
    fn try_for_each_surfaces_closure_errors() {
        #[derive(Debug, PartialEq)]
        enum E {
            Codec(CodecError),
            App,
        }
        impl From<CodecError> for E {
            fn from(e: CodecError) -> Self {
                E::Codec(e)
            }
        }
        let chunks = encode_all(0..10u64, 1024).unwrap();
        let r =
            try_for_each_view::<u64, E, _>(
                &chunks[0],
                |v| {
                    if v == 3 {
                        Err(E::App)
                    } else {
                        Ok(())
                    }
                },
            );
        assert_eq!(r, Err(E::App));
        // And decode errors surface through the same type.
        let corrupt = Chunk::from_vec(vec![0x80, 0x80]);
        let r = try_for_each_view::<u64, E, _>(&corrupt, |_| Ok(()));
        assert_eq!(r, Err(E::Codec(CodecError::Truncated)));
    }

    #[test]
    fn view_drivers_report_corruption() {
        let corrupt = Chunk::from_vec(vec![0x80, 0x80]);
        assert!(for_each_view::<u64, _>(&corrupt, |_| ()).is_err());
        assert!(fold_views::<u64, u64, _>(&corrupt, 0, |a, v| a + v).is_err());
    }

    #[test]
    fn writer_counts_match() {
        let mut w = ChunkWriter::<u64>::new(4);
        let mut chunks = 0;
        for i in 0..100u64 {
            if w.push(&i).unwrap().is_some() {
                chunks += 1;
            }
        }
        assert_eq!(w.records_written(), 100);
        assert_eq!(w.chunks_emitted(), chunks);
    }
}
