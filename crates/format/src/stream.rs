//! Chunk-boundary-respecting record streams.
//!
//! [`ChunkWriter`] packs a stream of records into chunks of at most
//! `chunk_size` bytes, closing a chunk whenever the next record would not
//! fit. [`ChunkReader`] iterates the records of one chunk. Together they
//! uphold the invariant from paper §2.2: *records never cross chunk
//! boundaries*, so any subset of a bag's chunks — the subset a task clone
//! happens to remove — decodes independently.

use crate::chunk::Chunk;
use crate::codec::{CodecError, Record};
use core::marker::PhantomData;

/// Serializes records into fixed-capacity chunks.
///
/// # Examples
///
/// ```
/// use hurricane_format::ChunkWriter;
///
/// let mut w = ChunkWriter::<u64>::new(16);
/// let mut chunks = Vec::new();
/// for i in 0..100u64 {
///     chunks.extend(w.push(&i).unwrap());
/// }
/// chunks.extend(w.finish());
/// assert!(chunks.iter().all(|c| c.len() <= 16));
/// ```
pub struct ChunkWriter<T: Record> {
    chunk_size: usize,
    buf: Vec<u8>,
    records_in_buf: u64,
    records_total: u64,
    chunks_emitted: u64,
    _marker: PhantomData<fn(&T)>,
}

impl<T: Record> ChunkWriter<T> {
    /// Creates a writer emitting chunks of at most `chunk_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            chunk_size,
            buf: Vec::with_capacity(chunk_size),
            records_in_buf: 0,
            records_total: 0,
            chunks_emitted: 0,
            _marker: PhantomData,
        }
    }

    /// Appends one record; returns a completed chunk if this record closed
    /// one.
    ///
    /// Returns [`CodecError::RecordTooLarge`] if the record alone exceeds
    /// the chunk capacity — such a record could never be stored without
    /// crossing a boundary.
    pub fn push(&mut self, record: &T) -> Result<Option<Chunk>, CodecError> {
        let len = record.encoded_len();
        if len > self.chunk_size {
            return Err(CodecError::RecordTooLarge {
                record: len,
                chunk: self.chunk_size,
            });
        }
        let mut completed = None;
        if self.buf.len() + len > self.chunk_size {
            completed = self.seal();
        }
        record.encode(&mut self.buf);
        self.records_in_buf += 1;
        self.records_total += 1;
        Ok(completed)
    }

    /// Flushes any buffered records into a final (possibly short) chunk.
    pub fn finish(mut self) -> Option<Chunk> {
        self.seal()
    }

    /// Flushes buffered records without consuming the writer.
    pub fn flush(&mut self) -> Option<Chunk> {
        self.seal()
    }

    fn seal(&mut self) -> Option<Chunk> {
        if self.buf.is_empty() {
            return None;
        }
        let data = std::mem::replace(&mut self.buf, Vec::with_capacity(self.chunk_size));
        self.records_in_buf = 0;
        self.chunks_emitted += 1;
        Some(Chunk::from_vec(data))
    }

    /// Number of records accepted so far.
    pub fn records_written(&self) -> u64 {
        self.records_total
    }

    /// Number of chunks sealed so far (not counting the buffered tail).
    pub fn chunks_emitted(&self) -> u64 {
        self.chunks_emitted
    }

    /// Number of records buffered but not yet sealed into a chunk.
    pub fn buffered_records(&self) -> u64 {
        self.records_in_buf
    }
}

/// Iterates the records of one chunk.
///
/// Yields `Err` once (and then `None`) if the chunk is corrupt; well-formed
/// chunks produced by [`ChunkWriter`] always decode cleanly.
pub struct ChunkReader<'a, T: Record> {
    rest: &'a [u8],
    failed: bool,
    _marker: PhantomData<fn() -> T>,
}

impl<'a, T: Record> ChunkReader<'a, T> {
    /// Creates a reader over `chunk`.
    pub fn new(chunk: &'a Chunk) -> Self {
        Self {
            rest: chunk.bytes(),
            failed: false,
            _marker: PhantomData,
        }
    }

    /// Bytes not yet decoded.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }
}

impl<'a, T: Record> Iterator for ChunkReader<'a, T> {
    type Item = Result<T, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.rest.is_empty() {
            return None;
        }
        match T::decode(&mut self.rest) {
            Ok(v) => Some(Ok(v)),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Decodes every record in `chunk`, failing on any corruption.
pub fn decode_all<T: Record>(chunk: &Chunk) -> Result<Vec<T>, CodecError> {
    ChunkReader::<T>::new(chunk).collect()
}

/// Encodes `records` into a sequence of chunks of at most `chunk_size`
/// bytes. Convenience for workload generators and tests.
pub fn encode_all<T: Record>(
    records: impl IntoIterator<Item = T>,
    chunk_size: usize,
) -> Result<Vec<Chunk>, CodecError> {
    let mut w = ChunkWriter::new(chunk_size);
    let mut chunks = Vec::new();
    for r in records {
        if let Some(c) = w.push(&r)? {
            chunks.push(c);
        }
    }
    chunks.extend(w.finish());
    Ok(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_respect_capacity_and_roundtrip() {
        let records: Vec<(u64, String)> = (0..500).map(|i| (i, format!("value-{i}"))).collect();
        let chunks = encode_all(records.clone(), 64).unwrap();
        assert!(chunks.len() > 1, "should have split into several chunks");
        for c in &chunks {
            assert!(c.len() <= 64, "chunk overflow: {} bytes", c.len());
            assert!(!c.is_empty());
        }
        let back: Vec<(u64, String)> = chunks
            .iter()
            .flat_map(|c| decode_all::<(u64, String)>(c).unwrap())
            .collect();
        assert_eq!(back, records);
    }

    #[test]
    fn every_chunk_decodes_independently() {
        let chunks = encode_all((0..1000u64).map(|i| (i, i * 2)), 37).unwrap();
        let mut total = 0usize;
        for c in &chunks {
            // Decoding each chunk in isolation must succeed: that is the
            // property that lets clones process disjoint chunk subsets.
            total += decode_all::<(u64, u64)>(c).unwrap().len();
        }
        assert_eq!(total, 1000);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut w = ChunkWriter::<String>::new(8);
        let err = w.push(&"this is far too long".to_string()).unwrap_err();
        assert!(matches!(err, CodecError::RecordTooLarge { .. }));
        // The writer stays usable for records that fit.
        assert!(w.push(&"ok".to_string()).unwrap().is_none());
        assert_eq!(w.records_written(), 1);
    }

    #[test]
    fn record_exactly_chunk_size_fits() {
        // "abcdef" encodes as 1 length byte + 6 payload bytes = 7.
        let mut w = ChunkWriter::<String>::new(7);
        assert!(w.push(&"abcdef".to_string()).unwrap().is_none());
        let c = w.finish().unwrap();
        assert_eq!(c.len(), 7);
        assert_eq!(decode_all::<String>(&c).unwrap(), vec!["abcdef"]);
    }

    #[test]
    fn finish_on_empty_writer_is_none() {
        let w = ChunkWriter::<u64>::new(16);
        assert!(w.finish().is_none());
    }

    #[test]
    fn flush_resets_buffer() {
        let mut w = ChunkWriter::<u64>::new(1024);
        w.push(&1).unwrap();
        w.push(&2).unwrap();
        assert_eq!(w.buffered_records(), 2);
        let c = w.flush().unwrap();
        assert_eq!(decode_all::<u64>(&c).unwrap(), vec![1, 2]);
        assert_eq!(w.buffered_records(), 0);
        assert!(w.flush().is_none());
        assert_eq!(w.chunks_emitted(), 1);
    }

    #[test]
    fn reader_reports_corruption_once() {
        let c = Chunk::from_vec(vec![0x80, 0x80]); // Truncated varint.
        let mut r = ChunkReader::<u64>::new(&c);
        assert!(matches!(r.next(), Some(Err(CodecError::Truncated))));
        assert!(r.next().is_none());
    }

    #[test]
    fn empty_chunk_yields_nothing() {
        let c = Chunk::from_vec(Vec::new());
        assert_eq!(decode_all::<u64>(&c).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn writer_counts_match() {
        let mut w = ChunkWriter::<u64>::new(4);
        let mut chunks = 0;
        for i in 0..100u64 {
            if w.push(&i).unwrap().is_some() {
                chunks += 1;
            }
        }
        assert_eq!(w.records_written(), 100);
        assert_eq!(w.chunks_emitted(), chunks);
    }
}
