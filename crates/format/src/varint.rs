//! LEB128 variable-length integer encoding.
//!
//! Used for string/blob/vector length prefixes so that short records stay
//! short. Encoding is the standard unsigned LEB128: seven payload bits per
//! byte, continuation bit in the MSB.
//!
//! # SWAR trusted decode
//!
//! [`decode_trusted`] is not a per-byte loop: it loads eight bytes at
//! once, finds the terminator (first byte with a clear MSB) in the loaded
//! word via `!word & 0x8080…`, and compacts all seven-bit payload lanes
//! into the result with three masked shift-merge steps — one load and a
//! handful of ALU ops instead of up to eight dependent byte iterations.
//! Encodings of nine or ten bytes take the same SWAR word for their low
//! 56 payload bits and finish the remaining one or two bytes scalar.
//!
//! Two invariants govern the fast path:
//!
//! * **Trusted-bytes contract** — the input must begin with a varint a
//!   validating decode ([`decode`] or the view-plane equivalent) already
//!   accepted at this exact position. Every bounds/overflow check the
//!   fast path omits is a check that first pass performed. The 8-byte
//!   load can therefore assume a terminator exists in bounds.
//! * **Tail-guard rule** — an 8-byte load is only issued when the slice
//!   holds at least eight bytes. Within eight bytes of the slice end the
//!   decoder falls back to the scalar per-byte loop, so the SWAR path
//!   never reads past the validated slice (not even speculatively —
//!   reads beyond the slice would be UB regardless of the values read).

use crate::codec::CodecError;

/// All continuation bits of an 8-byte word (bit 7 of every byte).
const CONT_BITS: u64 = 0x8080_8080_8080_8080;

/// All payload bits of an 8-byte word (low seven bits of every byte).
const PAYLOAD_BITS: u64 = 0x7f7f_7f7f_7f7f_7f7f;

/// Maximum encoded size of a `u64` varint (10 bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
pub fn encode(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Returns the encoded length of `value` without encoding it.
pub fn encoded_len(value: u64) -> usize {
    // 64-bit values need ceil(bits/7) bytes; zero needs one byte.
    let bits = 64 - value.leading_zeros() as usize;
    core::cmp::max(1, bits.div_ceil(7))
}

/// Decodes a LEB128 value whose bytes were already validated by
/// [`decode`] — no truncation, length, or overflow checks.
///
/// This is the trusted-bytes half of the varint codec: sequence views
/// ([`crate::SeqView`]) validate a whole span once at construction and
/// then re-read it on iteration, where every check [`decode`] performs is
/// a branch the first pass already took.
///
/// # Safety
///
/// `input` must start with a complete varint that a previous call to
/// [`decode`] accepted (same bytes, same position). In particular the
/// terminating byte (MSB clear) must occur within the slice and within
/// [`MAX_VARINT_LEN`] bytes.
#[inline]
pub unsafe fn decode_trusted(input: &mut &[u8]) -> u64 {
    // SAFETY: the caller guarantees a validated varint starts here, so
    // byte 0 exists and the terminator lands in bounds.
    let b0 = *input.get_unchecked(0);
    if b0 < 0x80 {
        *input = input.get_unchecked(1..);
        return b0 as u64;
    }
    if input.len() >= 8 {
        // SWAR fast path (see the module docs): one load covers every
        // encoding of up to eight bytes. The tail guard above keeps the
        // load inside the slice.
        let word = u64::from_le_bytes(input.get_unchecked(..8).try_into().unwrap_unchecked());
        let term = !word & CONT_BITS;
        let payload = word & PAYLOAD_BITS;
        if term != 0 {
            // Terminator inside the loaded word: the encoding spans
            // `n` bytes (2..=8 — a 1-byte encoding returned above).
            let n = (term.trailing_zeros() >> 3) as usize + 1;
            *input = input.get_unchecked(n..);
            return compact7(payload & (u64::MAX >> (64 - 8 * n)));
        }
        // All eight loaded bytes carry continuation bits: a 9- or
        // 10-byte encoding (the validating pass bounded it at
        // MAX_VARINT_LEN). SWAR supplies the low 56 payload bits; the
        // final one or two bytes finish scalar.
        let mut value = compact7(payload);
        let mut shift = 56u32;
        let mut i = 8usize;
        loop {
            let byte = *input.get_unchecked(i);
            value |= ((byte & 0x7f) as u64) << shift;
            i += 1;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        *input = input.get_unchecked(i..);
        return value;
    }
    decode_trusted_scalar(input, b0)
}

/// Compacts the eight 7-bit payload lanes of `x` (one per byte,
/// continuation bits already cleared) into the low 56 bits: three
/// masked shift-merge steps take 8×7-bit lanes to 4×14, 2×28, 1×56.
#[inline]
const fn compact7(x: u64) -> u64 {
    let x = (x & 0x007f_007f_007f_007f) | ((x & 0x7f00_7f00_7f00_7f00) >> 1);
    let x = (x & 0x0000_3fff_0000_3fff) | ((x & 0x3fff_0000_3fff_0000) >> 2);
    (x & 0x0000_0000_0fff_ffff) | ((x & 0x0fff_ffff_0000_0000) >> 4)
}

/// The per-byte trusted loop: the tail-guard fallback for varints that
/// start within eight bytes of the slice end. `b0` is the (continuation)
/// first byte the caller already read.
///
/// # Safety
///
/// Same contract as [`decode_trusted`].
#[inline]
unsafe fn decode_trusted_scalar(input: &mut &[u8], b0: u8) -> u64 {
    let mut value = (b0 & 0x7f) as u64;
    let mut shift = 7u32;
    let mut i = 1usize;
    loop {
        let byte = *input.get_unchecked(i);
        value |= ((byte & 0x7f) as u64) << shift;
        i += 1;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    *input = input.get_unchecked(i..);
    value
}

/// Decodes a LEB128 value from the front of `input`, advancing it.
///
/// Rejects encodings longer than [`MAX_VARINT_LEN`] and encodings whose
/// final byte overflows 64 bits, so every `u64` has exactly one accepted
/// canonical-length ceiling.
pub fn decode(input: &mut &[u8]) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(CodecError::InvalidVarint);
        }
        let payload = (byte & 0x7f) as u64;
        if shift == 63 && payload > 1 {
            return Err(CodecError::InvalidVarint);
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            *input = &input[i + 1..];
            return Ok(value);
        }
        shift += 7;
    }
    Err(CodecError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        encode(v, &mut buf);
        assert_eq!(buf.len(), encoded_len(v), "length mismatch for {v}");
        let mut slice = buf.as_slice();
        assert_eq!(decode(&mut slice).unwrap(), v);
        assert!(slice.is_empty(), "decode must consume exactly the varint");
    }

    #[test]
    fn roundtrips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip(v);
        }
    }

    #[test]
    fn trusted_decode_agrees_with_validating_decode() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode(v, &mut buf);
            buf.extend_from_slice(&[0xAA, 0xBB]); // Trailing bytes untouched.
            let mut checked = buf.as_slice();
            let want = decode(&mut checked).unwrap();
            let mut trusted = buf.as_slice();
            // SAFETY: the same bytes were just accepted by `decode`.
            let got = unsafe { decode_trusted(&mut trusted) };
            assert_eq!(got, want);
            assert_eq!(trusted, checked, "must consume identical bytes for {v}");
        }
    }

    #[test]
    fn decode_leaves_trailing_bytes() {
        let mut buf = Vec::new();
        encode(300, &mut buf);
        buf.extend_from_slice(&[0xAA, 0xBB]);
        let mut slice = buf.as_slice();
        assert_eq!(decode(&mut slice).unwrap(), 300);
        assert_eq!(slice, &[0xAA, 0xBB]);
    }

    #[test]
    fn truncated_input_errors() {
        let mut slice: &[u8] = &[0x80, 0x80];
        assert_eq!(decode(&mut slice), Err(CodecError::Truncated));
        let mut empty: &[u8] = &[];
        assert_eq!(decode(&mut empty), Err(CodecError::Truncated));
    }

    #[test]
    fn overlong_encoding_rejected() {
        // Eleven continuation bytes can never be a valid u64.
        let mut slice: &[u8] = &[0x80; 11];
        assert_eq!(decode(&mut slice), Err(CodecError::InvalidVarint));
        // A 10th byte with payload > 1 overflows 64 bits.
        let mut overflow: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert_eq!(decode(&mut overflow), Err(CodecError::InvalidVarint));
    }

    /// A value whose canonical encoding is exactly `len` bytes.
    fn value_of_encoded_len(len: usize) -> u64 {
        match len {
            1 => 0x5a,
            10 => u64::MAX,
            _ => 1u64 << (7 * (len - 1)),
        }
    }

    #[test]
    fn swar_covers_every_length_and_tail_distance() {
        // Every encoded length exercises both the SWAR path (plenty of
        // slack after the varint) and the tail-guard scalar path (the
        // varint ends within eight bytes of the slice end).
        for len in 1..=MAX_VARINT_LEN {
            let v = value_of_encoded_len(len);
            let mut buf = Vec::new();
            encode(v, &mut buf);
            assert_eq!(buf.len(), len);
            for pad in 0..=16usize {
                let mut padded = buf.clone();
                padded.extend(std::iter::repeat_n(0xEEu8, pad));
                let mut checked = padded.as_slice();
                let want = decode(&mut checked).unwrap();
                let mut trusted = padded.as_slice();
                // SAFETY: `decode` just accepted these bytes.
                let got = unsafe { decode_trusted(&mut trusted) };
                assert_eq!(got, want, "len {len}, pad {pad}");
                assert_eq!(trusted.len(), checked.len(), "len {len}, pad {pad}");
            }
        }
    }

    #[test]
    fn swar_handles_non_canonical_encodings() {
        // The validating decoder accepts overlong-but-in-range encodings
        // (e.g. 1 encoded with redundant continuation bytes); the trusted
        // decoder must agree on them byte for byte.
        let cases: &[&[u8]] = &[
            &[0x81, 0x00],                                           // 1 in 2 bytes
            &[0xff, 0x80, 0x80, 0x00],                               // 0x7f in 4 bytes
            &[0x80, 0x80, 0x80, 0x80, 0x80, 0x00],                   // 0 in 6 bytes
            &[0x85, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00], // 5 in 9 bytes
        ];
        for bytes in cases {
            let mut checked = *bytes;
            let want = decode(&mut checked).unwrap();
            let mut trusted = *bytes;
            // SAFETY: `decode` just accepted these bytes.
            let got = unsafe { decode_trusted(&mut trusted) };
            assert_eq!(got, want, "bytes {bytes:?}");
            assert_eq!(trusted.len(), checked.len(), "bytes {bytes:?}");
        }
    }

    #[test]
    fn compact7_packs_payload_lanes() {
        assert_eq!(compact7(0), 0);
        assert_eq!(compact7(0x7f), 0x7f);
        // Lane i contributes its 7 bits at bit 7*i.
        assert_eq!(compact7(0x0100), 1 << 7);
        assert_eq!(compact7(0x7f7f_7f7f_7f7f_7f7f), (1u64 << 56) - 1);
    }

    #[test]
    fn max_u64_is_ten_bytes() {
        assert_eq!(encoded_len(u64::MAX), 10);
        assert_eq!(encoded_len(0), 1);
        assert_eq!(encoded_len(127), 1);
        assert_eq!(encoded_len(128), 2);
    }
}
