//! LEB128 variable-length integer encoding.
//!
//! Used for string/blob/vector length prefixes so that short records stay
//! short. Encoding is the standard unsigned LEB128: seven payload bits per
//! byte, continuation bit in the MSB.

use crate::codec::CodecError;

/// Maximum encoded size of a `u64` varint (10 bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
pub fn encode(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Returns the encoded length of `value` without encoding it.
pub fn encoded_len(value: u64) -> usize {
    // 64-bit values need ceil(bits/7) bytes; zero needs one byte.
    let bits = 64 - value.leading_zeros() as usize;
    core::cmp::max(1, bits.div_ceil(7))
}

/// Decodes a LEB128 value whose bytes were already validated by
/// [`decode`] — no truncation, length, or overflow checks.
///
/// This is the trusted-bytes half of the varint codec: sequence views
/// ([`crate::SeqView`]) validate a whole span once at construction and
/// then re-read it on iteration, where every check [`decode`] performs is
/// a branch the first pass already took.
///
/// # Safety
///
/// `input` must start with a complete varint that a previous call to
/// [`decode`] accepted (same bytes, same position). In particular the
/// terminating byte (MSB clear) must occur within the slice and within
/// [`MAX_VARINT_LEN`] bytes.
#[inline]
pub unsafe fn decode_trusted(input: &mut &[u8]) -> u64 {
    // SAFETY: the caller guarantees a validated varint starts here, so
    // byte 0 exists and the terminator lands in bounds.
    let b0 = *input.get_unchecked(0);
    if b0 < 0x80 {
        *input = input.get_unchecked(1..);
        return b0 as u64;
    }
    let mut value = (b0 & 0x7f) as u64;
    let mut shift = 7u32;
    let mut i = 1usize;
    loop {
        let byte = *input.get_unchecked(i);
        value |= ((byte & 0x7f) as u64) << shift;
        i += 1;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    *input = input.get_unchecked(i..);
    value
}

/// Decodes a LEB128 value from the front of `input`, advancing it.
///
/// Rejects encodings longer than [`MAX_VARINT_LEN`] and encodings whose
/// final byte overflows 64 bits, so every `u64` has exactly one accepted
/// canonical-length ceiling.
pub fn decode(input: &mut &[u8]) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(CodecError::InvalidVarint);
        }
        let payload = (byte & 0x7f) as u64;
        if shift == 63 && payload > 1 {
            return Err(CodecError::InvalidVarint);
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            *input = &input[i + 1..];
            return Ok(value);
        }
        shift += 7;
    }
    Err(CodecError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        encode(v, &mut buf);
        assert_eq!(buf.len(), encoded_len(v), "length mismatch for {v}");
        let mut slice = buf.as_slice();
        assert_eq!(decode(&mut slice).unwrap(), v);
        assert!(slice.is_empty(), "decode must consume exactly the varint");
    }

    #[test]
    fn roundtrips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip(v);
        }
    }

    #[test]
    fn trusted_decode_agrees_with_validating_decode() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode(v, &mut buf);
            buf.extend_from_slice(&[0xAA, 0xBB]); // Trailing bytes untouched.
            let mut checked = buf.as_slice();
            let want = decode(&mut checked).unwrap();
            let mut trusted = buf.as_slice();
            // SAFETY: the same bytes were just accepted by `decode`.
            let got = unsafe { decode_trusted(&mut trusted) };
            assert_eq!(got, want);
            assert_eq!(trusted, checked, "must consume identical bytes for {v}");
        }
    }

    #[test]
    fn decode_leaves_trailing_bytes() {
        let mut buf = Vec::new();
        encode(300, &mut buf);
        buf.extend_from_slice(&[0xAA, 0xBB]);
        let mut slice = buf.as_slice();
        assert_eq!(decode(&mut slice).unwrap(), 300);
        assert_eq!(slice, &[0xAA, 0xBB]);
    }

    #[test]
    fn truncated_input_errors() {
        let mut slice: &[u8] = &[0x80, 0x80];
        assert_eq!(decode(&mut slice), Err(CodecError::Truncated));
        let mut empty: &[u8] = &[];
        assert_eq!(decode(&mut empty), Err(CodecError::Truncated));
    }

    #[test]
    fn overlong_encoding_rejected() {
        // Eleven continuation bytes can never be a valid u64.
        let mut slice: &[u8] = &[0x80; 11];
        assert_eq!(decode(&mut slice), Err(CodecError::InvalidVarint));
        // A 10th byte with payload > 1 overflows 64 bits.
        let mut overflow: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert_eq!(decode(&mut overflow), Err(CodecError::InvalidVarint));
    }

    #[test]
    fn max_u64_is_ten_bytes() {
        assert_eq!(encoded_len(u64::MAX), 10);
        assert_eq!(encoded_len(0), 1);
        assert_eq!(encoded_len(127), 1);
        assert_eq!(encoded_len(128), 2);
    }
}
