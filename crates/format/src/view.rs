//! Borrowed record decoding: views straight out of chunk bytes.
//!
//! [`crate::Record::decode`] materializes an *owned* value per record —
//! for a `(u64, String)` that is a heap allocation per record, and for
//! the steady-state task loop (decode → inspect → maybe re-emit) the
//! allocation usually outlives a single closure call by nanoseconds. The
//! paper's typed-iterator framing (§2.2) never requires ownership: a task
//! iterating a chunk only needs to *look at* each record, and a chunk is
//! immutable for as long as any reader holds it.
//!
//! [`RecordView`] is the borrowed half of the codec plane. For a record
//! type `T`, `T::View<'a>` is the zero-copy shape of one decoded record
//! whose string/byte fields point directly into the chunk:
//!
//! | owned type       | `View<'a>`                 |
//! |------------------|----------------------------|
//! | integers, floats, `bool`, `()` | the value itself (`Copy`) |
//! | `String`         | `&'a str`                  |
//! | [`Blob`]         | `&'a [u8]`                 |
//! | `Option<T>`      | `Option<T::View<'a>>`      |
//! | tuples           | tuple of field views       |
//! | `Vec<T>`         | [`SeqView<'a, T>`] (lazy)  |
//!
//! # When to use `Record` vs `RecordView`
//!
//! * Use **`Record`** (owned decode) when the record must outlive the
//!   chunk it came from: buffering into a hash table, a snapshot the task
//!   keeps across chunks, a merge accumulator.
//! * Use **`RecordView`** (borrowed decode) for the per-record hot loop:
//!   scan, filter, aggregate into pre-sized arrays, or re-emit. The view
//!   borrows the chunk, so nothing is allocated per record and string
//!   payloads are never copied.
//!
//! The two decoders are two readings of one wire format. Every
//! implementation must uphold the **view law**: for any well-formed
//! input, `decode_view` consumes exactly the same bytes as
//! [`Record::decode`], and [`RecordView::view_to_owned`] of the view
//! equals the owned decode. `tests/props_format.rs` pins this down by
//! property test across arbitrary chunk boundaries.
//!
//! # Lifetimes: borrowing from the chunk
//!
//! A [`crate::Chunk`] is refcounted and immutable, so a `T::View<'a>`
//! borrows the chunk's payload for `'a` — the chunk (or the buffer it
//! wraps) must stay alive while views of it are in scope. The drivers in
//! [`crate::stream`] ([`crate::ChunkReader::for_each`] and friends) keep
//! that containment structural: the closure receives each view in turn
//! and nothing borrowed can escape the iteration.
//!
//! # Examples
//!
//! ```
//! use hurricane_format::{encode_all, ChunkReader};
//!
//! let chunks = encode_all(
//!     (0..100u64).map(|i| (i, format!("name-{i}"))),
//!     1 << 16,
//! )
//! .unwrap();
//! // Count records whose name ends in "7" without allocating a single
//! // String: the `&str` view points into the chunk.
//! let mut hits = 0u64;
//! for chunk in &chunks {
//!     ChunkReader::<(u64, String)>::new(chunk)
//!         .for_each(|(_, name)| {
//!             if name.ends_with('7') {
//!                 hits += 1;
//!             }
//!         })
//!         .unwrap();
//! }
//! assert_eq!(hits, 10);
//! ```

use crate::codec::{take, Blob, CodecError, Record};
use crate::varint;
use core::marker::PhantomData;

/// A record type with a borrowed decoded form.
///
/// The supertrait bound keeps the two planes coherent: every viewable
/// type also has an owned codec, and the pair must satisfy the view law
/// (see the [module docs](self)) — `decode_view` advances the input by
/// exactly the bytes [`Record::decode`] would consume, and
/// `view_to_owned(decode_view(b)) == Record::decode(b)`.
pub trait RecordView: Record {
    /// The borrowed form of one decoded record, valid while the source
    /// bytes (typically a [`crate::Chunk`]) are alive.
    type View<'a>: Copy;

    /// Decodes one record from the front of `input` as a borrowed view,
    /// advancing the input exactly as [`Record::decode`] would.
    fn decode_view<'a>(input: &mut &'a [u8]) -> Result<Self::View<'a>, CodecError>;

    /// Rebuilds the owned record from a view. The bridge back to the
    /// owned plane — and the instrument the view-law property tests use.
    fn view_to_owned(view: Self::View<'_>) -> Self;
}

macro_rules! self_view {
    ($($ty:ty),+) => {$(
        impl RecordView for $ty {
            type View<'a> = $ty;

            fn decode_view(input: &mut &[u8]) -> Result<$ty, CodecError> {
                <$ty as Record>::decode(input)
            }

            fn view_to_owned(view: $ty) -> $ty {
                view
            }
        }
    )+};
}

self_view!(u8, u16, u32, u64, usize, i16, i32, i64, f32, f64, bool, ());

impl RecordView for String {
    type View<'a> = &'a str;

    fn decode_view<'a>(input: &mut &'a [u8]) -> Result<&'a str, CodecError> {
        let len = varint::decode(input)?;
        if len > input.len() as u64 {
            return Err(CodecError::Truncated);
        }
        let bytes = take(input, len as usize)?;
        core::str::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)
    }

    fn view_to_owned(view: &str) -> String {
        view.to_string()
    }
}

impl RecordView for Blob {
    type View<'a> = &'a [u8];

    fn decode_view<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], CodecError> {
        let len = varint::decode(input)?;
        if len > input.len() as u64 {
            return Err(CodecError::Truncated);
        }
        take(input, len as usize)
    }

    fn view_to_owned(view: &[u8]) -> Blob {
        Blob(view.to_vec())
    }
}

impl<T: RecordView> RecordView for Option<T> {
    type View<'a> = Option<T::View<'a>>;

    fn decode_view<'a>(input: &mut &'a [u8]) -> Result<Self::View<'a>, CodecError> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode_view(input)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }

    fn view_to_owned(view: Self::View<'_>) -> Self {
        view.map(T::view_to_owned)
    }
}

/// A lazily decoded sequence view — the borrowed form of `Vec<T>`.
///
/// `decode_view` walks the elements once to validate them and find the
/// sequence's end (no allocation); [`SeqView::iter`] then re-decodes each
/// element on demand. Iteration is infallible because the bytes were
/// validated at view-construction time. The trade is a second decode pass
/// *if* the caller iterates — still allocation-free, and strictly cheaper
/// than the owned path (which also decodes every element, into a fresh
/// `Vec`) whenever any element holds a string or nested vector.
pub struct SeqView<'a, T: RecordView> {
    /// The validated payload: exactly `len` back-to-back encoded records.
    bytes: &'a [u8],
    len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: RecordView> core::fmt::Debug for SeqView<'_, T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SeqView({} elems, {} bytes)", self.len, self.bytes.len())
    }
}

impl<T: RecordView> Clone for SeqView<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: RecordView> Copy for SeqView<'_, T> {}

impl<'a, T: RecordView> SeqView<'a, T> {
    /// Number of elements in the sequence.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true for an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw encoded payload (without the length prefix).
    pub fn payload(&self) -> &'a [u8] {
        self.bytes
    }

    /// Iterates the element views.
    pub fn iter(&self) -> SeqIter<'a, T> {
        SeqIter {
            rest: self.bytes,
            remaining: self.len,
            _marker: PhantomData,
        }
    }

    /// Collects the elements into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().map(T::view_to_owned).collect()
    }
}

impl<'a, T: RecordView> IntoIterator for SeqView<'a, T> {
    type Item = T::View<'a>;
    type IntoIter = SeqIter<'a, T>;

    fn into_iter(self) -> SeqIter<'a, T> {
        self.iter()
    }
}

/// Iterator over a [`SeqView`]'s element views.
pub struct SeqIter<'a, T: RecordView> {
    rest: &'a [u8],
    remaining: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<'a, T: RecordView> Iterator for SeqIter<'a, T> {
    type Item = T::View<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // The bytes were fully decoded once when the SeqView was built,
        // so re-decoding the identical input cannot fail.
        Some(T::decode_view(&mut self.rest).expect("SeqView bytes validated at construction"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<T: RecordView> ExactSizeIterator for SeqIter<'_, T> {}

impl<T: RecordView> RecordView for Vec<T> {
    type View<'a> = SeqView<'a, T>;

    fn decode_view<'a>(input: &mut &'a [u8]) -> Result<Self::View<'a>, CodecError> {
        let len = varint::decode(input)?;
        // Mirrors the owned decoder: each element consumes at least one
        // byte, so a longer declared length is corrupt.
        if len > input.len() as u64 {
            return Err(CodecError::LengthOverflow);
        }
        let start = *input;
        for _ in 0..len {
            T::decode_view(input)?;
        }
        let consumed = start.len() - input.len();
        Ok(SeqView {
            bytes: &start[..consumed],
            len: len as usize,
            _marker: PhantomData,
        })
    }

    fn view_to_owned(view: Self::View<'_>) -> Self {
        view.to_vec()
    }
}

macro_rules! tuple_view {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: RecordView),+> RecordView for ($($name,)+) {
            type View<'a> = ($($name::View<'a>,)+);

            fn decode_view<'a>(input: &mut &'a [u8]) -> Result<Self::View<'a>, CodecError> {
                Ok(($($name::decode_view(input)?,)+))
            }

            fn view_to_owned(view: Self::View<'_>) -> Self {
                ($($name::view_to_owned(view.$idx),)+)
            }
        }
    };
}

tuple_view!(A: 0);
tuple_view!(A: 0, B: 1);
tuple_view!(A: 0, B: 1, C: 2);
tuple_view!(A: 0, B: 1, C: 2, D: 3);
tuple_view!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_view!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;
    use core::fmt;

    /// Asserts the view law on one value: same bytes consumed, equal
    /// owned reconstruction.
    fn view_law<T: RecordView + PartialEq + fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut owned_slice = buf.as_slice();
        let owned = T::decode(&mut owned_slice).unwrap();
        let mut view_slice = buf.as_slice();
        let view = T::decode_view(&mut view_slice).unwrap();
        assert_eq!(
            owned_slice.len(),
            view_slice.len(),
            "decode_view must consume exactly decode's bytes for {v:?}"
        );
        assert_eq!(T::view_to_owned(view), owned);
        assert_eq!(owned, v);
    }

    #[test]
    fn primitive_views_obey_the_law() {
        view_law(0u8);
        view_law(u64::MAX);
        view_law(-42i64);
        view_law(3.5f64);
        view_law(true);
        view_law(());
    }

    #[test]
    fn string_view_borrows_in_place() {
        let mut buf = Vec::new();
        "hurricane".to_string().encode(&mut buf);
        let mut slice = buf.as_slice();
        let view = String::decode_view(&mut slice).unwrap();
        assert_eq!(view, "hurricane");
        // The view points into the encoded buffer: zero copies.
        assert_eq!(view.as_ptr(), buf[1..].as_ptr());
        view_law("héllo ✓".to_string());
        view_law(String::new());
    }

    #[test]
    fn blob_view_borrows_in_place() {
        let payload = vec![0xde, 0xad, 0xbe, 0xef];
        let mut buf = Vec::new();
        Blob(payload.clone()).encode(&mut buf);
        let mut slice = buf.as_slice();
        let view = Blob::decode_view(&mut slice).unwrap();
        assert_eq!(view, &payload[..]);
        assert_eq!(view.as_ptr(), buf[1..].as_ptr());
    }

    #[test]
    fn nested_views_obey_the_law() {
        view_law((7u64, "key".to_string()));
        view_law(Some((1u32, "x".to_string())));
        view_law(None::<String>);
        view_law(vec!["a".to_string(), String::new(), "ccc".to_string()]);
        view_law(((1u64, 2u64), ("k".to_string(), vec![9u32, 10])));
        view_law((1u8, 2u16, 3u32, 4u64, 5i64, 6.0f64));
        view_law(vec![vec![1u64, 2], vec![], vec![3]]);
    }

    #[test]
    fn seq_view_iterates_lazily_and_exactly() {
        let v = vec![(1u64, "one".to_string()), (2, "two".to_string())];
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<(u64, String)>::decode_view(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(seq.len(), 2);
        assert!(!seq.is_empty());
        let items: Vec<(u64, &str)> = seq.iter().collect();
        assert_eq!(items, vec![(1, "one"), (2, "two")]);
        // Copy semantics: iterating twice works on the same view.
        assert_eq!(seq.iter().count(), 2);
        assert_eq!(seq.to_vec(), v);
        assert_eq!(seq.iter().size_hint(), (2, Some(2)));
    }

    #[test]
    fn view_decode_detects_corruption() {
        // Truncated string payload.
        let mut buf = Vec::new();
        varint::encode(10, &mut buf);
        buf.extend_from_slice(b"abc");
        let mut slice = buf.as_slice();
        assert_eq!(String::decode_view(&mut slice), Err(CodecError::Truncated));
        // Overlong vector length.
        let mut buf = Vec::new();
        varint::encode(u64::MAX, &mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(
            Vec::<u64>::decode_view(&mut slice).unwrap_err(),
            CodecError::LengthOverflow
        );
        // Bad option tag.
        let mut slice: &[u8] = &[9];
        assert_eq!(
            Option::<u64>::decode_view(&mut slice),
            Err(CodecError::InvalidTag(9))
        );
        // Invalid UTF-8 stays an error on the borrowed path too.
        let mut buf = Vec::new();
        varint::encode(2, &mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut slice = buf.as_slice();
        assert_eq!(
            String::decode_view(&mut slice),
            Err(CodecError::InvalidUtf8)
        );
    }

    #[test]
    fn truncation_detected_everywhere_on_view_path() {
        let mut buf = Vec::new();
        (12345u64, "abcdef".to_string(), 2.5f64).encode(&mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            let r = <(u64, String, f64)>::decode_view(&mut slice);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }
}
