//! Borrowed record decoding: views straight out of chunk bytes.
//!
//! [`crate::Record::decode`] materializes an *owned* value per record —
//! for a `(u64, String)` that is a heap allocation per record, and for
//! the steady-state task loop (decode → inspect → maybe re-emit) the
//! allocation usually outlives a single closure call by nanoseconds. The
//! paper's typed-iterator framing (§2.2) never requires ownership: a task
//! iterating a chunk only needs to *look at* each record, and a chunk is
//! immutable for as long as any reader holds it.
//!
//! [`RecordView`] is the borrowed half of the codec plane. For a record
//! type `T`, `T::View<'a>` is the zero-copy shape of one decoded record
//! whose string/byte fields point directly into the chunk:
//!
//! | owned type       | `View<'a>`                 |
//! |------------------|----------------------------|
//! | integers, floats, `bool`, `()` | the value itself (`Copy`) |
//! | [`FixedU32`], [`FixedU64`] | the value itself (`Copy`) |
//! | `String`         | `&'a str`                  |
//! | [`Blob`]         | `&'a [u8]`                 |
//! | `Option<T>`      | `Option<T::View<'a>>`      |
//! | tuples           | tuple of field views       |
//! | `Vec<T>`         | [`SeqView<'a, T>`] (lazy)  |
//!
//! # When to use `Record` vs `RecordView`
//!
//! * Use **`Record`** (owned decode) when the record must outlive the
//!   chunk it came from: buffering into a hash table, a snapshot the task
//!   keeps across chunks, a merge accumulator.
//! * Use **`RecordView`** (borrowed decode) for the per-record hot loop:
//!   scan, filter, aggregate into pre-sized arrays, or re-emit. The view
//!   borrows the chunk, so nothing is allocated per record and string
//!   payloads are never copied.
//!
//! The two decoders are two readings of one wire format. Every
//! implementation must uphold the **view law**: for any well-formed
//! input, `decode_view` consumes exactly the same bytes as
//! [`Record::decode`], and [`RecordView::view_to_owned`] of the view
//! equals the owned decode. `tests/props_format.rs` pins this down by
//! property test across arbitrary chunk boundaries.
//!
//! # Trusted bytes: decoding a span twice without validating it twice
//!
//! `decode_view` validates as it goes, because chunk bytes arrive from
//! storage and may be corrupt. But some spans are decoded *twice*: a
//! [`SeqView`] walks its elements once at construction (to validate them
//! and find the sequence's end) and again on [`SeqView::iter`]. The
//! second pass re-ran every truncation/overflow/UTF-8 check the first
//! pass already passed. [`RecordView::decode_view_trusted`] is the
//! second reading: an `unsafe` decoder whose contract is that the input
//! starts with bytes a previous `decode_view` accepted, letting it use
//! unchecked varint reads, unchecked slicing, and
//! `str::from_utf8_unchecked`. [`SeqIter`] uses it, which is what makes
//! `Vec`-heavy records (bitset words, adjacency lists) cheap to re-read.
//!
//! # Fixed stride: random access without decoding
//!
//! Varint encodings are value-dependent, so element `i` of a sequence is
//! only reachable by decoding elements `0..i`. Types whose encoding is a
//! compile-time constant size — floats, [`FixedU32`]/[`FixedU64`], and
//! tuples of such — implement [`FixedStride`], and their sequences gain
//! O(1) random access ([`SeqView::get`]), [`SeqView::split_at`] /
//! [`SeqView::chunks_exact`] for batch loops, and whole-chunk access via
//! [`StrideSlice`] (every record in a chunk of fixed-stride records sits
//! at a known offset). The layout is flat little-endian bytes, which is
//! the shape SIMD-friendly loops want.
//!
//! # Lifetimes: borrowing from the chunk
//!
//! A [`crate::Chunk`] is refcounted and immutable, so a `T::View<'a>`
//! borrows the chunk's payload for `'a` — the chunk (or the buffer it
//! wraps) must stay alive while views of it are in scope. The drivers in
//! [`crate::stream`] ([`crate::ChunkReader::for_each`] and friends) keep
//! that containment structural: the closure receives each view in turn
//! and nothing borrowed can escape the iteration.
//!
//! # Examples
//!
//! ```
//! use hurricane_format::{encode_all, ChunkReader};
//!
//! let chunks = encode_all(
//!     (0..100u64).map(|i| (i, format!("name-{i}"))),
//!     1 << 16,
//! )
//! .unwrap();
//! // Count records whose name ends in "7" without allocating a single
//! // String: the `&str` view points into the chunk.
//! let mut hits = 0u64;
//! for chunk in &chunks {
//!     ChunkReader::<(u64, String)>::new(chunk)
//!         .for_each(|(_, name)| {
//!             if name.ends_with('7') {
//!                 hits += 1;
//!             }
//!         })
//!         .unwrap();
//! }
//! assert_eq!(hits, 10);
//! ```

use crate::codec::{take, unzigzag, Blob, CodecError, FixedU32, FixedU64, Record};
use crate::{kernels, varint};
use core::marker::PhantomData;

/// Views a `FixedU64` run as plain words for the in-place kernels.
fn fixed_words_mut(acc: &mut [FixedU64]) -> &mut [u64] {
    // SAFETY: `FixedU64` is `#[repr(transparent)]` over `u64`, so the
    // slices have identical layout.
    unsafe { core::slice::from_raw_parts_mut(acc.as_mut_ptr().cast::<u64>(), acc.len()) }
}

/// Advances `input` past its first `n` bytes without a bounds check.
///
/// # Safety
///
/// `input` must hold at least `n` bytes.
#[inline]
unsafe fn take_trusted<'a>(input: &mut &'a [u8], n: usize) -> &'a [u8] {
    debug_assert!(input.len() >= n);
    let head = input.get_unchecked(..n);
    *input = input.get_unchecked(n..);
    head
}

/// Reads `N` little-endian bytes without a bounds check.
///
/// # Safety
///
/// `input` must hold at least `N` bytes.
#[inline]
unsafe fn read_array_trusted<const N: usize>(input: &mut &[u8]) -> [u8; N] {
    let bytes = take_trusted(input, N);
    // SAFETY: `bytes` has exactly N elements.
    bytes.try_into().unwrap_unchecked()
}

/// A record type with a borrowed decoded form.
///
/// The supertrait bound keeps the two planes coherent: every viewable
/// type also has an owned codec, and the pair must satisfy the view law
/// (see the [module docs](self)) — `decode_view` advances the input by
/// exactly the bytes [`Record::decode`] would consume, and
/// `view_to_owned(decode_view(b)) == Record::decode(b)`.
pub trait RecordView: Record {
    /// The borrowed form of one decoded record, valid while the source
    /// bytes (typically a [`crate::Chunk`]) are alive.
    type View<'a>: Copy;

    /// Decodes one record from the front of `input` as a borrowed view,
    /// advancing the input exactly as [`Record::decode`] would.
    fn decode_view<'a>(input: &mut &'a [u8]) -> Result<Self::View<'a>, CodecError>;

    /// Decodes one record from bytes that a previous
    /// [`RecordView::decode_view`] call already accepted, skipping the
    /// validation that pass performed (bounds, varint canonicality,
    /// UTF-8). Must consume exactly the bytes `decode_view` consumed and
    /// produce an equal view.
    ///
    /// The default implementation simply re-validates; the in-crate
    /// types override it with genuinely unchecked reads. This is what
    /// [`SeqIter`] drives, so a sequence validated once at view
    /// construction pays no second round of checks on iteration.
    ///
    /// # Safety
    ///
    /// `input` must start with a byte span (same bytes, same position)
    /// that `decode_view` previously returned `Ok` for.
    unsafe fn decode_view_trusted<'a>(input: &mut &'a [u8]) -> Self::View<'a> {
        Self::decode_view(input).expect("trusted bytes were previously validated")
    }

    /// Rebuilds the owned record from a view. The bridge back to the
    /// owned plane — and the instrument the view-law property tests use.
    fn view_to_owned(view: Self::View<'_>) -> Self;
}

/// Marker for record types whose encoding is a compile-time constant
/// number of bytes — the precondition for random access into sequences
/// and chunks of them.
///
/// # Safety
///
/// Implementations assert two properties that unsafe code (notably
/// [`StrideSlice`] and [`SeqView::get`]) relies on:
///
/// * **Constant size**: every value encodes to exactly `STRIDE` bytes
///   (`STRIDE > 0`), and both decoders consume exactly `STRIDE` bytes.
/// * **Totality**: *every* `STRIDE`-byte pattern is a valid encoding —
///   `decode`/`decode_view` on any `STRIDE` bytes succeeds. (This is why
///   `bool` — whose decoder rejects tag bytes other than 0/1 — does not
///   implement `FixedStride` even though its encoding is one byte.)
///
/// Together they make offset arithmetic a substitute for sequential
/// validation: any `k * STRIDE`-byte span can be read as `k` records
/// with the trusted decoder, no per-element checks.
pub unsafe trait FixedStride: RecordView {
    /// Exact encoded size of every value, in bytes. Always positive.
    const STRIDE: usize;
}

macro_rules! self_view {
    ($($ty:ty => |$input:ident| $trusted:expr),+ $(,)?) => {$(
        impl RecordView for $ty {
            type View<'a> = $ty;

            fn decode_view(input: &mut &[u8]) -> Result<$ty, CodecError> {
                <$ty as Record>::decode(input)
            }

            #[inline]
            unsafe fn decode_view_trusted($input: &mut &[u8]) -> $ty {
                $trusted
            }

            fn view_to_owned(view: $ty) -> $ty {
                view
            }
        }
    )+};
}

// SAFETY of the trusted bodies: per the decode_view_trusted contract the
// input starts with bytes the validating decoder accepted, so every
// unchecked read stays in bounds and every value-range check (varint
// canonicality, integer width, bool tag) already passed.
self_view! {
    u8 => |input| take_trusted(input, 1)[0],
    u16 => |input| varint::decode_trusted(input) as u16,
    u32 => |input| varint::decode_trusted(input) as u32,
    u64 => |input| varint::decode_trusted(input),
    usize => |input| varint::decode_trusted(input) as usize,
    i16 => |input| unzigzag(varint::decode_trusted(input)) as i16,
    i32 => |input| unzigzag(varint::decode_trusted(input)) as i32,
    i64 => |input| unzigzag(varint::decode_trusted(input)),
    f32 => |input| f32::from_le_bytes(read_array_trusted(input)),
    f64 => |input| f64::from_le_bytes(read_array_trusted(input)),
    bool => |input| take_trusted(input, 1)[0] == 1,
    () => |_input| (),
    FixedU32 => |input| FixedU32(u32::from_le_bytes(read_array_trusted(input))),
    FixedU64 => |input| FixedU64(u64::from_le_bytes(read_array_trusted(input))),
}

// SAFETY: one byte always, and `u8::decode` accepts any byte (total).
unsafe impl FixedStride for u8 {
    const STRIDE: usize = 1;
}

// SAFETY: fixed-width little-endian floats; every bit pattern is a valid
// IEEE-754 value (including NaNs), so the decoders are total.
unsafe impl FixedStride for f32 {
    const STRIDE: usize = 4;
}

// SAFETY: as for `f32`.
unsafe impl FixedStride for f64 {
    const STRIDE: usize = 8;
}

// SAFETY: fixed four-byte little-endian; any bit pattern is a valid u32.
unsafe impl FixedStride for FixedU32 {
    const STRIDE: usize = 4;
}

// SAFETY: fixed eight-byte little-endian; any bit pattern is a valid u64.
unsafe impl FixedStride for FixedU64 {
    const STRIDE: usize = 8;
}

impl RecordView for String {
    type View<'a> = &'a str;

    fn decode_view<'a>(input: &mut &'a [u8]) -> Result<&'a str, CodecError> {
        let len = varint::decode(input)?;
        if len > input.len() as u64 {
            return Err(CodecError::Truncated);
        }
        let bytes = take(input, len as usize)?;
        core::str::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)
    }

    #[inline]
    unsafe fn decode_view_trusted<'a>(input: &mut &'a [u8]) -> &'a str {
        // SAFETY (both ops): the validating pass accepted this span, so
        // the declared length is in bounds and the payload is UTF-8.
        let len = varint::decode_trusted(input) as usize;
        core::str::from_utf8_unchecked(take_trusted(input, len))
    }

    fn view_to_owned(view: &str) -> String {
        view.to_string()
    }
}

impl RecordView for Blob {
    type View<'a> = &'a [u8];

    fn decode_view<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], CodecError> {
        let len = varint::decode(input)?;
        if len > input.len() as u64 {
            return Err(CodecError::Truncated);
        }
        take(input, len as usize)
    }

    #[inline]
    unsafe fn decode_view_trusted<'a>(input: &mut &'a [u8]) -> &'a [u8] {
        // SAFETY: length validated in bounds by the accepting pass.
        let len = varint::decode_trusted(input) as usize;
        take_trusted(input, len)
    }

    fn view_to_owned(view: &[u8]) -> Blob {
        Blob(view.to_vec())
    }
}

impl<T: RecordView> RecordView for Option<T> {
    type View<'a> = Option<T::View<'a>>;

    fn decode_view<'a>(input: &mut &'a [u8]) -> Result<Self::View<'a>, CodecError> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode_view(input)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }

    #[inline]
    unsafe fn decode_view_trusted<'a>(input: &mut &'a [u8]) -> Self::View<'a> {
        // SAFETY: tag byte exists and is 0 or 1 (validated), and a Some
        // payload was validated right after it.
        match take_trusted(input, 1)[0] {
            0 => None,
            _ => Some(T::decode_view_trusted(input)),
        }
    }

    fn view_to_owned(view: Self::View<'_>) -> Self {
        view.map(T::view_to_owned)
    }
}

/// A lazily decoded sequence view — the borrowed form of `Vec<T>`.
///
/// `decode_view` walks the elements once to validate them and find the
/// sequence's end (no allocation); [`SeqView::iter`] then re-reads each
/// element on demand **with the trusted decoder** — unchecked varint and
/// fixed-width reads, no re-validation — so the second pass costs raw
/// byte decoding only. Iteration is infallible because the bytes were
/// validated at view-construction time.
///
/// For element types with a [`FixedStride`] encoding the view is also
/// randomly accessible: [`SeqView::get`], [`SeqView::split_at`] and
/// [`SeqView::chunks_exact`] index by offset arithmetic instead of
/// sequential decoding.
pub struct SeqView<'a, T: RecordView> {
    /// The validated payload: exactly `len` back-to-back encoded records.
    bytes: &'a [u8],
    len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: RecordView> core::fmt::Debug for SeqView<'_, T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SeqView({} elems, {} bytes)", self.len, self.bytes.len())
    }
}

impl<T: RecordView> Clone for SeqView<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: RecordView> Copy for SeqView<'_, T> {}

impl<'a, T: RecordView> SeqView<'a, T> {
    /// Number of elements in the sequence.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true for an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw encoded payload (without the length prefix).
    pub fn payload(&self) -> &'a [u8] {
        self.bytes
    }

    /// Iterates the element views. Infallible and unchecked: the span
    /// was validated when this view was constructed, so each element is
    /// re-read with [`RecordView::decode_view_trusted`].
    pub fn iter(&self) -> SeqIter<'a, T> {
        SeqIter {
            rest: self.bytes,
            remaining: self.len,
            _marker: PhantomData,
        }
    }

    /// Collects the elements into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().map(T::view_to_owned).collect()
    }
}

impl<'a, T: FixedStride> SeqView<'a, T> {
    /// Returns element `i` in O(1) by offset arithmetic — no sequential
    /// decode of the preceding elements.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> T::View<'a> {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        debug_assert_eq!(self.bytes.len(), self.len * T::STRIDE);
        let mut at = &self.bytes[i * T::STRIDE..];
        // SAFETY: the span was validated at construction and fixed
        // stride places element i at exactly i * STRIDE.
        unsafe { T::decode_view_trusted(&mut at) }
    }

    /// Splits into the first `mid` elements and the rest, both still
    /// zero-copy views over the same chunk bytes.
    ///
    /// # Panics
    ///
    /// Panics if `mid > self.len()`.
    pub fn split_at(&self, mid: usize) -> (Self, Self) {
        assert!(
            mid <= self.len,
            "mid {mid} out of bounds (len {})",
            self.len
        );
        let at = mid * T::STRIDE;
        (
            SeqView {
                bytes: &self.bytes[..at],
                len: mid,
                _marker: PhantomData,
            },
            SeqView {
                bytes: &self.bytes[at..],
                len: self.len - mid,
                _marker: PhantomData,
            },
        )
    }

    /// Iterates `chunk_len`-element sub-views (the `chunks_exact` shape):
    /// every yielded view has exactly `chunk_len` elements; the tail that
    /// doesn't fill a whole sub-view is available from
    /// [`SeqChunks::remainder`].
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn chunks_exact(&self, chunk_len: usize) -> SeqChunks<'a, T> {
        assert!(chunk_len > 0, "chunk_len must be positive");
        // The tail is fixed at construction (std `ChunksExact`
        // semantics): `remainder` answers the same view whether the
        // iterator has been driven or not.
        let (full, tail) = self.split_at(self.len - self.len % chunk_len);
        SeqChunks {
            rest: full,
            chunk_len,
            tail,
        }
    }
}

impl SeqView<'_, FixedU64> {
    /// ORs this word sequence into `acc` (growing it to cover every
    /// word) via the batch kernels ([`crate::kernels::or_le64`]): the
    /// bitset-merge fold, run 2–4 words per instruction under the
    /// `simd` feature.
    pub fn or_into(&self, acc: &mut Vec<FixedU64>) {
        if self.len > acc.len() {
            acc.resize(self.len, FixedU64(0));
        }
        kernels::or_le64(fixed_words_mut(acc), self.bytes);
    }

    /// Counts the set bits across all words
    /// ([`crate::kernels::popcount_le64`]).
    pub fn popcount(&self) -> u64 {
        kernels::popcount_le64(self.bytes)
    }

    /// Wrapping sum of all words ([`crate::kernels::sum_le64`]).
    pub fn wrapping_sum(&self) -> u64 {
        kernels::sum_le64(self.bytes)
    }
}

impl SeqView<'_, FixedU32> {
    /// Sum of all words, each widened to `u64` before adding
    /// ([`crate::kernels::sum_le32`]).
    pub fn wrapping_sum(&self) -> u64 {
        kernels::sum_le32(self.bytes)
    }

    /// Counts the words equal to `needle` — the filter kernel
    /// ([`crate::kernels::count_eq_le32`]).
    pub fn count_eq(&self, needle: FixedU32) -> usize {
        kernels::count_eq_le32(self.bytes, needle.0)
    }
}

impl<'a, T: RecordView> IntoIterator for SeqView<'a, T> {
    type Item = T::View<'a>;
    type IntoIter = SeqIter<'a, T>;

    fn into_iter(self) -> SeqIter<'a, T> {
        self.iter()
    }
}

/// Iterator over a [`SeqView`]'s element views.
pub struct SeqIter<'a, T: RecordView> {
    rest: &'a [u8],
    remaining: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<'a, T: RecordView> Iterator for SeqIter<'a, T> {
    type Item = T::View<'a>;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // SAFETY: the bytes were fully decoded once when the SeqView was
        // built, so the trusted re-read stays within the validated span.
        Some(unsafe { T::decode_view_trusted(&mut self.rest) })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<T: RecordView> ExactSizeIterator for SeqIter<'_, T> {}

/// Iterator of fixed-length [`SeqView`] windows — see
/// [`SeqView::chunks_exact`].
pub struct SeqChunks<'a, T: FixedStride> {
    rest: SeqView<'a, T>,
    chunk_len: usize,
    tail: SeqView<'a, T>,
}

impl<'a, T: FixedStride> SeqChunks<'a, T> {
    /// The trailing elements (fewer than `chunk_len`) that do not fill a
    /// whole window. Fixed at construction, like
    /// `slice::ChunksExact::remainder`: the answer is the same whether
    /// or not the iterator has been driven.
    pub fn remainder(&self) -> SeqView<'a, T> {
        self.tail
    }
}

impl<'a, T: FixedStride> Iterator for SeqChunks<'a, T> {
    type Item = SeqView<'a, T>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.len() < self.chunk_len {
            return None;
        }
        let (head, tail) = self.rest.split_at(self.chunk_len);
        self.rest = tail;
        Some(head)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.rest.len() / self.chunk_len;
        (n, Some(n))
    }
}

impl<T: RecordView> RecordView for Vec<T> {
    type View<'a> = SeqView<'a, T>;

    fn decode_view<'a>(input: &mut &'a [u8]) -> Result<Self::View<'a>, CodecError> {
        let len = varint::decode(input)?;
        // Mirrors the owned decoder: each element consumes at least one
        // byte, so a longer declared length is corrupt.
        if len > input.len() as u64 {
            return Err(CodecError::LengthOverflow);
        }
        let start = *input;
        for _ in 0..len {
            T::decode_view(input)?;
        }
        let consumed = start.len() - input.len();
        Ok(SeqView {
            bytes: &start[..consumed],
            len: len as usize,
            _marker: PhantomData,
        })
    }

    #[inline]
    unsafe fn decode_view_trusted<'a>(input: &mut &'a [u8]) -> Self::View<'a> {
        // The walk to find the sequence's end is unavoidable for
        // variable-size elements, but it runs entirely on trusted reads.
        // SAFETY: the accepting pass validated the length prefix and all
        // `len` elements in place.
        let len = varint::decode_trusted(input) as usize;
        let start = *input;
        for _ in 0..len {
            T::decode_view_trusted(input);
        }
        let consumed = start.len() - input.len();
        SeqView {
            bytes: start.get_unchecked(..consumed),
            len,
            _marker: PhantomData,
        }
    }

    fn view_to_owned(view: Self::View<'_>) -> Self {
        view.to_vec()
    }
}

macro_rules! tuple_view {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: RecordView),+> RecordView for ($($name,)+) {
            type View<'a> = ($($name::View<'a>,)+);

            fn decode_view<'a>(input: &mut &'a [u8]) -> Result<Self::View<'a>, CodecError> {
                Ok(($($name::decode_view(input)?,)+))
            }

            #[inline]
            unsafe fn decode_view_trusted<'a>(input: &mut &'a [u8]) -> Self::View<'a> {
                // SAFETY: fields were validated in this exact order.
                ($($name::decode_view_trusted(input),)+)
            }

            fn view_to_owned(view: Self::View<'_>) -> Self {
                ($($name::view_to_owned(view.$idx),)+)
            }
        }

        // SAFETY: a tuple of constant-size total encodings is itself a
        // constant-size total encoding (fields concatenate; each field
        // accepts any bytes of its width).
        unsafe impl<$($name: FixedStride),+> FixedStride for ($($name,)+) {
            const STRIDE: usize = 0 $(+ $name::STRIDE)+;
        }
    };
}

tuple_view!(A: 0);
tuple_view!(A: 0, B: 1);
tuple_view!(A: 0, B: 1, C: 2);
tuple_view!(A: 0, B: 1, C: 2, D: 3);
tuple_view!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_view!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A typed fixed-stride window over raw encoded bytes: `k` back-to-back
/// records of a [`FixedStride`] type, randomly accessible without any
/// prior validating decode.
///
/// Where [`SeqView`] is the borrowed form of a `Vec<T>` *record* (length
/// prefix on the wire, validated at view construction), a `StrideSlice`
/// types a *bare* byte run — most usefully a whole chunk whose records
/// are all fixed-stride, where the only well-formedness condition is
/// that the length divides evenly (the `FixedStride` contract makes
/// every such slice valid). This is the random-access path for int-tuple
/// chunks: `get(i)` is offset arithmetic, `iter` is branch-free trusted
/// reads.
pub struct StrideSlice<'a, T: FixedStride> {
    bytes: &'a [u8],
    len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: FixedStride> core::fmt::Debug for StrideSlice<'_, T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "StrideSlice({} elems x {} bytes)", self.len, T::STRIDE)
    }
}

impl<T: FixedStride> Clone for StrideSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: FixedStride> Copy for StrideSlice<'_, T> {}

impl<'a, T: FixedStride> StrideSlice<'a, T> {
    /// Types `bytes` as a run of fixed-stride records. Fails with
    /// [`CodecError::Truncated`] when the length is not a multiple of
    /// the stride (a partial trailing record).
    pub fn new(bytes: &'a [u8]) -> Result<Self, CodecError> {
        debug_assert!(T::STRIDE > 0, "FixedStride::STRIDE must be positive");
        if !bytes.len().is_multiple_of(T::STRIDE) {
            return Err(CodecError::Truncated);
        }
        Ok(Self {
            bytes,
            len: bytes.len() / T::STRIDE,
            _marker: PhantomData,
        })
    }

    /// Number of records in the slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true when the slice holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying encoded bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Returns record `i` in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> T::View<'a> {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let mut at = &self.bytes[i * T::STRIDE..];
        // SAFETY: `FixedStride` totality — any STRIDE bytes decode, and
        // construction guaranteed i * STRIDE + STRIDE <= bytes.len().
        unsafe { T::decode_view_trusted(&mut at) }
    }

    /// Iterates the record views with trusted (branch-free) reads.
    pub fn iter(&self) -> StrideIter<'a, T> {
        StrideIter {
            rest: self.bytes,
            remaining: self.len,
            _marker: PhantomData,
        }
    }

    /// Gathers the leading little-endian `u32` of every record into
    /// `out` ([`crate::kernels::gather_stride_u32`]) — the column
    /// extraction for key-first fixed tuples, e.g. densifying a join's
    /// probe keys out of interleaved 12-byte records.
    ///
    /// # Panics
    ///
    /// Panics when `T::STRIDE < 4` (the record cannot start with a
    /// 4-byte key).
    pub fn gather_prefix_u32_into(&self, out: &mut Vec<u32>) {
        kernels::gather_stride_u32(self.bytes, T::STRIDE, out);
    }
}

impl StrideSlice<'_, FixedU64> {
    /// Counts the set bits across all records
    /// ([`crate::kernels::popcount_le64`]).
    pub fn popcount(&self) -> u64 {
        kernels::popcount_le64(self.bytes)
    }

    /// Wrapping sum of all records ([`crate::kernels::sum_le64`]).
    pub fn wrapping_sum(&self) -> u64 {
        kernels::sum_le64(self.bytes)
    }
}

impl StrideSlice<'_, FixedU32> {
    /// Sum of all records, each widened to `u64` before adding
    /// ([`crate::kernels::sum_le32`]).
    pub fn wrapping_sum(&self) -> u64 {
        kernels::sum_le32(self.bytes)
    }

    /// Counts the records equal to `needle` — the filter kernel
    /// ([`crate::kernels::count_eq_le32`]).
    pub fn count_eq(&self, needle: FixedU32) -> usize {
        kernels::count_eq_le32(self.bytes, needle.0)
    }
}

impl<'a, T: FixedStride> IntoIterator for StrideSlice<'a, T> {
    type Item = T::View<'a>;
    type IntoIter = StrideIter<'a, T>;

    fn into_iter(self) -> StrideIter<'a, T> {
        self.iter()
    }
}

/// Iterator over a [`StrideSlice`]'s record views.
pub struct StrideIter<'a, T: FixedStride> {
    rest: &'a [u8],
    remaining: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<'a, T: FixedStride> Iterator for StrideIter<'a, T> {
    type Item = T::View<'a>;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // SAFETY: construction sized `rest` to remaining * STRIDE bytes
        // and FixedStride totality makes every stride decodable.
        Some(unsafe { T::decode_view_trusted(&mut self.rest) })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<T: FixedStride> ExactSizeIterator for StrideIter<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use core::fmt;

    /// Asserts the view law on one value: same bytes consumed, equal
    /// owned reconstruction — on both the validating and trusted paths.
    fn view_law<T: RecordView + PartialEq + fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut owned_slice = buf.as_slice();
        let owned = T::decode(&mut owned_slice).unwrap();
        let mut view_slice = buf.as_slice();
        let view = T::decode_view(&mut view_slice).unwrap();
        assert_eq!(
            owned_slice.len(),
            view_slice.len(),
            "decode_view must consume exactly decode's bytes for {v:?}"
        );
        assert_eq!(T::view_to_owned(view), owned);
        assert_eq!(owned, v);
        // SAFETY: decode_view just accepted these exact bytes.
        let mut trusted_slice = buf.as_slice();
        let trusted = unsafe { T::decode_view_trusted(&mut trusted_slice) };
        assert_eq!(
            trusted_slice.len(),
            view_slice.len(),
            "trusted decode must consume exactly decode_view's bytes for {v:?}"
        );
        assert_eq!(T::view_to_owned(trusted), v);
    }

    #[test]
    fn primitive_views_obey_the_law() {
        view_law(0u8);
        view_law(u64::MAX);
        view_law(-42i64);
        view_law(3.5f64);
        view_law(true);
        view_law(());
        view_law(FixedU32(u32::MAX));
        view_law(FixedU64(0x0123_4567_89ab_cdef));
    }

    #[test]
    fn string_view_borrows_in_place() {
        let mut buf = Vec::new();
        "hurricane".to_string().encode(&mut buf);
        let mut slice = buf.as_slice();
        let view = String::decode_view(&mut slice).unwrap();
        assert_eq!(view, "hurricane");
        // The view points into the encoded buffer: zero copies.
        assert_eq!(view.as_ptr(), buf[1..].as_ptr());
        view_law("héllo ✓".to_string());
        view_law(String::new());
    }

    #[test]
    fn blob_view_borrows_in_place() {
        let payload = vec![0xde, 0xad, 0xbe, 0xef];
        let mut buf = Vec::new();
        Blob(payload.clone()).encode(&mut buf);
        let mut slice = buf.as_slice();
        let view = Blob::decode_view(&mut slice).unwrap();
        assert_eq!(view, &payload[..]);
        assert_eq!(view.as_ptr(), buf[1..].as_ptr());
    }

    #[test]
    fn nested_views_obey_the_law() {
        view_law((7u64, "key".to_string()));
        view_law(Some((1u32, "x".to_string())));
        view_law(None::<String>);
        view_law(vec!["a".to_string(), String::new(), "ccc".to_string()]);
        view_law(((1u64, 2u64), ("k".to_string(), vec![9u32, 10])));
        view_law((1u8, 2u16, 3u32, 4u64, 5i64, 6.0f64));
        view_law(vec![vec![1u64, 2], vec![], vec![3]]);
        view_law(vec![FixedU64(u64::MAX), FixedU64(0), FixedU64(42)]);
        view_law((FixedU32(1), FixedU64(2), "s".to_string()));
    }

    #[test]
    fn seq_view_iterates_lazily_and_exactly() {
        let v = vec![(1u64, "one".to_string()), (2, "two".to_string())];
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<(u64, String)>::decode_view(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(seq.len(), 2);
        assert!(!seq.is_empty());
        let items: Vec<(u64, &str)> = seq.iter().collect();
        assert_eq!(items, vec![(1, "one"), (2, "two")]);
        // Copy semantics: iterating twice works on the same view.
        assert_eq!(seq.iter().count(), 2);
        assert_eq!(seq.to_vec(), v);
        assert_eq!(seq.iter().size_hint(), (2, Some(2)));
    }

    #[test]
    fn trusted_iteration_matches_validating_decode() {
        // The double-decode elimination target: iterating a SeqView must
        // yield exactly what owned decoding yields, for varint, string,
        // and fixed-width element types.
        let words: Vec<u64> = (0..200u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut buf = Vec::new();
        words.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<u64>::decode_view(&mut slice).unwrap();
        let got: Vec<u64> = seq.iter().collect();
        assert_eq!(got, words);

        let names: Vec<String> = (0..50).map(|i| format!("name-{i}")).collect();
        let mut buf = Vec::new();
        names.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<String>::decode_view(&mut slice).unwrap();
        let got: Vec<String> = seq.iter().map(str::to_string).collect();
        assert_eq!(got, names);
    }

    #[test]
    fn fixed_stride_constants_compose() {
        assert_eq!(u8::STRIDE, 1);
        assert_eq!(f32::STRIDE, 4);
        assert_eq!(f64::STRIDE, 8);
        assert_eq!(FixedU32::STRIDE, 4);
        assert_eq!(FixedU64::STRIDE, 8);
        assert_eq!(<(FixedU32, FixedU64)>::STRIDE, 12);
        assert_eq!(<(f64, f64, u8)>::STRIDE, 17);
    }

    #[test]
    fn seq_view_random_access_matches_iteration() {
        let words: Vec<FixedU64> = (0..100u64).map(|i| FixedU64(i * 3)).collect();
        let mut buf = Vec::new();
        words.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<FixedU64>::decode_view(&mut slice).unwrap();
        for (i, w) in seq.iter().enumerate() {
            assert_eq!(seq.get(i), w);
        }
        assert_eq!(seq.get(99), FixedU64(297));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn seq_view_get_out_of_bounds_panics() {
        let words = vec![FixedU64(1)];
        let mut buf = Vec::new();
        words.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<FixedU64>::decode_view(&mut slice).unwrap();
        let _ = seq.get(1);
    }

    #[test]
    fn seq_view_split_and_chunks() {
        let words: Vec<FixedU32> = (0..10u32).map(FixedU32).collect();
        let mut buf = Vec::new();
        words.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<FixedU32>::decode_view(&mut slice).unwrap();
        let (a, b) = seq.split_at(3);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 7);
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![FixedU32(0), FixedU32(1), FixedU32(2)]
        );
        assert_eq!(b.get(0), FixedU32(3));
        // chunks_exact: 3 full windows of 3, remainder of 1 — and the
        // remainder is the same before, during, and after iteration
        // (std `ChunksExact` semantics).
        let mut chunks = seq.chunks_exact(3);
        assert_eq!(chunks.remainder().len(), 1);
        assert_eq!(chunks.remainder().get(0), FixedU32(9));
        let mut seen = Vec::new();
        for w in chunks.by_ref() {
            assert_eq!(w.len(), 3);
            seen.extend(w.iter());
        }
        assert_eq!(seen.len(), 9);
        assert_eq!(chunks.remainder().len(), 1);
        assert_eq!(chunks.remainder().get(0), FixedU32(9));
        // Degenerate splits.
        let (empty, all) = seq.split_at(0);
        assert!(empty.is_empty());
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn stride_slice_types_raw_bytes() {
        type Rec = (FixedU32, FixedU64);
        let mut buf = Vec::new();
        for i in 0..20u32 {
            (FixedU32(i), FixedU64(i as u64 * 7)).encode(&mut buf);
        }
        let s = StrideSlice::<Rec>::new(&buf).unwrap();
        assert_eq!(s.len(), 20);
        assert!(!s.is_empty());
        assert_eq!(s.get(5), (FixedU32(5), FixedU64(35)));
        let all: Vec<(FixedU32, FixedU64)> = s.iter().collect();
        assert_eq!(all.len(), 20);
        assert_eq!(all[19], (FixedU32(19), FixedU64(133)));
        assert_eq!(s.bytes(), &buf[..]);
        assert_eq!(s.iter().size_hint(), (20, Some(20)));
        // A partial trailing record is rejected.
        assert!(StrideSlice::<Rec>::new(&buf[..buf.len() - 1]).is_err());
        // Empty is fine.
        assert!(StrideSlice::<Rec>::new(&[]).unwrap().is_empty());
    }

    #[test]
    fn seq_view_kernels_match_iteration() {
        let words: Vec<FixedU64> = (0..37u64)
            .map(|i| FixedU64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        let mut buf = Vec::new();
        words.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<FixedU64>::decode_view(&mut slice).unwrap();
        assert_eq!(
            seq.popcount(),
            words.iter().map(|w| w.0.count_ones() as u64).sum::<u64>()
        );
        assert_eq!(
            seq.wrapping_sum(),
            words.iter().fold(0u64, |a, w| a.wrapping_add(w.0))
        );
        let mut acc = vec![FixedU64(0xF0F0); 10];
        seq.or_into(&mut acc);
        assert_eq!(acc.len(), 37, "accumulator grows to the view");
        for (i, slot) in acc.iter().enumerate() {
            let seed = if i < 10 { 0xF0F0 } else { 0 };
            assert_eq!(slot.0, seed | words[i].0);
        }

        let keys: Vec<FixedU32> = (0..23u32).map(|i| FixedU32(i % 5)).collect();
        let mut buf = Vec::new();
        keys.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<FixedU32>::decode_view(&mut slice).unwrap();
        assert_eq!(seq.wrapping_sum(), keys.iter().map(|k| k.0 as u64).sum());
        assert_eq!(seq.count_eq(FixedU32(3)), 4);
        assert_eq!(seq.count_eq(FixedU32(99)), 0);
    }

    #[test]
    fn stride_slice_kernels_and_gather() {
        type Rec = (FixedU32, FixedU64);
        let mut buf = Vec::new();
        for i in 0..21u32 {
            (FixedU32(i * 3), FixedU64(1u64 << (i % 64))).encode(&mut buf);
        }
        let s = StrideSlice::<Rec>::new(&buf).unwrap();
        let mut keys = Vec::new();
        s.gather_prefix_u32_into(&mut keys);
        assert_eq!(keys, (0..21u32).map(|i| i * 3).collect::<Vec<_>>());

        let words: Vec<u8> = (0..16u64).flat_map(|i| i.to_le_bytes()).collect();
        let w = StrideSlice::<FixedU64>::new(&words).unwrap();
        assert_eq!(w.wrapping_sum(), (0..16u64).sum::<u64>());
        assert_eq!(
            w.popcount(),
            (0..16u64).map(|i| i.count_ones() as u64).sum::<u64>()
        );
        let keys: Vec<u8> = [7u32, 8, 7, 9]
            .iter()
            .flat_map(|k| k.to_le_bytes())
            .collect();
        let k = StrideSlice::<FixedU32>::new(&keys).unwrap();
        assert_eq!(k.count_eq(FixedU32(7)), 2);
        assert_eq!(k.wrapping_sum(), 31);
    }

    #[test]
    fn view_decode_detects_corruption() {
        // Truncated string payload.
        let mut buf = Vec::new();
        varint::encode(10, &mut buf);
        buf.extend_from_slice(b"abc");
        let mut slice = buf.as_slice();
        assert_eq!(String::decode_view(&mut slice), Err(CodecError::Truncated));
        // Overlong vector length.
        let mut buf = Vec::new();
        varint::encode(u64::MAX, &mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(
            Vec::<u64>::decode_view(&mut slice).unwrap_err(),
            CodecError::LengthOverflow
        );
        // Bad option tag.
        let mut slice: &[u8] = &[9];
        assert_eq!(
            Option::<u64>::decode_view(&mut slice),
            Err(CodecError::InvalidTag(9))
        );
        // Invalid UTF-8 stays an error on the borrowed path too.
        let mut buf = Vec::new();
        varint::encode(2, &mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut slice = buf.as_slice();
        assert_eq!(
            String::decode_view(&mut slice),
            Err(CodecError::InvalidUtf8)
        );
        // Truncated fixed-width int.
        let mut slice: &[u8] = &[1, 2, 3];
        assert_eq!(
            FixedU32::decode_view(&mut slice),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn truncation_detected_everywhere_on_view_path() {
        let mut buf = Vec::new();
        (12345u64, "abcdef".to_string(), 2.5f64).encode(&mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            let r = <(u64, String, f64)>::decode_view(&mut slice);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }
}
