//! `hurricane-node` — a standalone storage node process.
//!
//! Serves one [`StorageNode`] over the TCP RPC plane (`WIRE.md`). Two
//! ways to start:
//!
//! * **Static member**: `hurricane-node --listen 127.0.0.1:4100 --id 2`
//!   serves node 2; the driver lists this address at the matching
//!   position of [`StorageEndpoint::tcp`]'s address list.
//! * **Elastic join**: `hurricane-node --listen 127.0.0.1:0 --join
//!   127.0.0.1:4000` binds the data listener first, announces its bound
//!   address to the driver's join listener
//!   ([`StorageEndpoint::serve_joins`]), and serves under the node id
//!   the driver assigns. Live clients pick the node up on their next
//!   membership refresh.
//!
//! Once serving, the process prints one machine-readable line to stdout:
//!
//! ```text
//! LISTENING <data-addr> NODE <id>
//! ```
//!
//! and then runs until stopped. Storage is in-memory by default (the
//! paper's nodes are, too — bags live for one job); pass `--data-dir DIR`
//! to journal every bag into append-only segment logs under `DIR`
//! (`SEGMENT.md`) instead. A durable node recovers its full bag contents
//! — chunks, consumed pointers, seal state — by log scan on startup, so
//! restarting a killed process from the same `--data-dir` resumes where
//! the logs end. `--spill-threshold BYTES` bounds resident memory: cold
//! bags spill back to their logs and re-read on demand.
//!
//! The other memory bound — `merge_memory_budget`, which makes keyed
//! merges spill their accumulator tables into scratch bags on these
//! nodes — is a *driver*-process knob: merges run in the engine's task
//! managers, not here. Drivers set it through
//! `HurricaneConfig::with_merge_memory_budget`, the
//! `--merge-memory-budget` flag on engine binaries (`real_engine`), or
//! the `HURRICANE_MERGE_MEMORY_BUDGET` environment override; a storage
//! node only sees the resulting scratch-bag traffic (`SEGMENT.md`,
//! "Error handling").
//!
//! On `SIGTERM` the process shuts down gracefully: open segment logs are
//! flushed and fsynced, and the process exits 0. `SIGKILL` skips the
//! flush; recovery then replays whatever reached the logs (every *acked*
//! write has).
//!
//! [`StorageNode`]: hurricane_storage::StorageNode
//! [`StorageEndpoint::tcp`]: hurricane_storage::StorageEndpoint::tcp
//! [`StorageEndpoint::serve_joins`]: hurricane_storage::StorageEndpoint::serve_joins

use hurricane_common::StorageNodeId;
use hurricane_storage::{join_cluster, SegmentStore, StorageNode, TcpNodeServer};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
usage: hurricane-node [--listen ADDR] (--id N | --join DRIVER_ADDR)
                      [--data-dir DIR] [--spill-threshold BYTES]

  --listen ADDR          data-plane listen address (default 127.0.0.1:0)
  --id N                 serve as statically-configured node N
  --join ADDR            dial the driver's join listener at ADDR, announce
                         the bound data address, and serve under the
                         assigned id
  --data-dir DIR         journal bags into segment logs under DIR and
                         recover them on startup (default: in-memory only)
  --spill-threshold BYTES
                         resident-memory budget; cold bags spill to their
                         segment logs past this (needs --data-dir;
                         default: unbounded)
";

struct Args {
    listen: String,
    id: Option<u32>,
    join: Option<String>,
    data_dir: Option<String>,
    spill_threshold: u64,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        id: None,
        join: None,
        data_dir: None,
        spill_threshold: u64::MAX,
    };
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--id" => {
                let v = value("--id")?;
                args.id = Some(v.parse().map_err(|_| format!("bad --id {v:?}"))?);
            }
            "--join" => args.join = Some(value("--join")?),
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--spill-threshold" => {
                let v = value("--spill-threshold")?;
                args.spill_threshold = v
                    .parse()
                    .map_err(|_| format!("bad --spill-threshold {v:?}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.data_dir.is_none() && args.spill_threshold != u64::MAX {
        return Err("--spill-threshold needs --data-dir".into());
    }
    match (&args.id, &args.join) {
        (Some(_), Some(_)) => Err("--id and --join are mutually exclusive".into()),
        (None, None) => Err("one of --id or --join is required".into()),
        _ => Ok(args),
    }
}

/// Set by the `SIGTERM` handler; the serve loop polls it.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Installs `on_term` as the `SIGTERM` handler via the libc `signal`
/// symbol (always present in the C runtime Rust links on unix); the
/// handler only stores to an atomic, which is async-signal-safe.
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
    }
}

fn run(args: Args) -> Result<(), String> {
    // Bind before anything else: the address we announce (join flow) or
    // that the operator configured (static flow) is reserved from here on.
    let listener =
        TcpListener::bind(&args.listen).map_err(|e| format!("bind {}: {e}", args.listen))?;
    let data_addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;

    let id = match (&args.id, &args.join) {
        (Some(id), None) => StorageNodeId(*id),
        (None, Some(driver)) => join_cluster(driver, &data_addr.to_string())
            .map_err(|e| format!("join via {driver}: {e}"))?,
        _ => unreachable!("validated by parse_args"),
    };

    // Recover-on-start happens inside `StorageNode::durable`: the node
    // scans every segment log under the data dir before serving a byte.
    let node = Arc::new(match &args.data_dir {
        None => StorageNode::new(id),
        Some(dir) => {
            let store = SegmentStore::disk(dir).map_err(|e| format!("open {dir}: {e}"))?;
            StorageNode::durable(id, store, args.spill_threshold)
                .map_err(|e| format!("recover from {dir}: {e}"))?
        }
    });

    install_sigterm_handler();

    let server = TcpNodeServer::serve_on(node.clone(), listener)
        .map_err(|e| format!("serve {data_addr}: {e}"))?;

    // The one line drivers and test harnesses scrape; flushed so a piped
    // stdout delivers it immediately.
    println!("LISTENING {} NODE {}", server.local_addr(), id.0);
    use std::io::Write;
    let _ = std::io::stdout().flush();

    // Serve until stopped: the accept loop and service threads do the
    // work; this thread polls for SIGTERM so a graceful stop can flush
    // the segment logs before exiting.
    while !TERM.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    node.sync_all().map_err(|e| format!("final sync: {e}"))?;
    // Stdout may be a pipe whose reader is long gone (harnesses scrape
    // only the banner) — a failed farewell must not fail the shutdown.
    let _ = writeln!(std::io::stdout(), "TERMINATED NODE {}", id.0);
    Ok(())
}

fn main() -> ExitCode {
    match parse_args(std::env::args()) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("hurricane-node: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if !e.is_empty() {
                eprintln!("hurricane-node: {e}\n");
            }
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
