//! `hurricane-node` — a standalone storage node process.
//!
//! Serves one [`StorageNode`] over the TCP RPC plane (`WIRE.md`). Two
//! ways to start:
//!
//! * **Static member**: `hurricane-node --listen 127.0.0.1:4100 --id 2`
//!   serves node 2; the driver lists this address at the matching
//!   position of [`StorageEndpoint::tcp`]'s address list.
//! * **Elastic join**: `hurricane-node --listen 127.0.0.1:0 --join
//!   127.0.0.1:4000` binds the data listener first, announces its bound
//!   address to the driver's join listener
//!   ([`StorageEndpoint::serve_joins`]), and serves under the node id
//!   the driver assigns. Live clients pick the node up on their next
//!   membership refresh.
//!
//! Once serving, the process prints one machine-readable line to stdout:
//!
//! ```text
//! LISTENING <data-addr> NODE <id>
//! ```
//!
//! and then runs until killed. Storage is in-memory (the paper's nodes
//! are, too — bags live for one job); a killed node's acked data
//! survives via replication, not disk.
//!
//! [`StorageNode`]: hurricane_storage::StorageNode
//! [`StorageEndpoint::tcp`]: hurricane_storage::StorageEndpoint::tcp
//! [`StorageEndpoint::serve_joins`]: hurricane_storage::StorageEndpoint::serve_joins

use hurricane_common::StorageNodeId;
use hurricane_storage::{join_cluster, StorageNode, TcpNodeServer};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
usage: hurricane-node [--listen ADDR] (--id N | --join DRIVER_ADDR)

  --listen ADDR   data-plane listen address (default 127.0.0.1:0)
  --id N          serve as statically-configured node N
  --join ADDR     dial the driver's join listener at ADDR, announce the
                  bound data address, and serve under the assigned id
";

struct Args {
    listen: String,
    id: Option<u32>,
    join: Option<String>,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        id: None,
        join: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--id" => {
                let v = value("--id")?;
                args.id = Some(v.parse().map_err(|_| format!("bad --id {v:?}"))?);
            }
            "--join" => args.join = Some(value("--join")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    match (&args.id, &args.join) {
        (Some(_), Some(_)) => Err("--id and --join are mutually exclusive".into()),
        (None, None) => Err("one of --id or --join is required".into()),
        _ => Ok(args),
    }
}

fn run(args: Args) -> Result<(), String> {
    // Bind before anything else: the address we announce (join flow) or
    // that the operator configured (static flow) is reserved from here on.
    let listener =
        TcpListener::bind(&args.listen).map_err(|e| format!("bind {}: {e}", args.listen))?;
    let data_addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;

    let id = match (&args.id, &args.join) {
        (Some(id), None) => StorageNodeId(*id),
        (None, Some(driver)) => join_cluster(driver, &data_addr.to_string())
            .map_err(|e| format!("join via {driver}: {e}"))?,
        _ => unreachable!("validated by parse_args"),
    };

    let node = Arc::new(StorageNode::new(id));
    let server =
        TcpNodeServer::serve_on(node, listener).map_err(|e| format!("serve {data_addr}: {e}"))?;

    // The one line drivers and test harnesses scrape; flushed so a piped
    // stdout delivers it immediately.
    println!("LISTENING {} NODE {}", server.local_addr(), id.0);
    use std::io::Write;
    let _ = std::io::stdout().flush();

    // Serve until killed: the accept loop and service threads do the
    // work; this thread only keeps the server handle alive.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args()) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("hurricane-node: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if !e.is_empty() {
                eprintln!("hurricane-node: {e}\n");
            }
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
