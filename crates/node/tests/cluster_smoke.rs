//! The multi-process cluster smoke test (mirrored by the CI
//! `cluster-smoke` job): three durable `hurricane-node` processes plus a
//! driver on localhost run a ClickLog insert/drain job over real TCP,
//! one node is SIGKILLed mid-job (replica failover across process
//! boundaries), a fourth node joins mid-job through the driver's join
//! listener and receives placements, the killed node is restarted from
//! its `--data-dir` and serves its recovered placements into the drain,
//! and the drained result is exactly-once with byte-perfect payloads.
//! A second test covers the graceful path: SIGTERM flushes the segment
//! logs, exits 0, and a restart recovers every chunk.

use hurricane_common::StorageNodeId;
use hurricane_format::Chunk;
use hurricane_storage::bag::BatchRemoveResult;
use hurricane_storage::rpc::{RequestEnvelope, RetryPolicy, StorageRequest, StorageResponse};
use hurricane_storage::{ClusterConfig, StorageEndpoint, TcpTransport, Transport};
use hurricane_workloads::clicklog::{region_of, ClickLogGen, ClickLogSpec};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Kills every spawned node process on drop, so a failing assertion
/// doesn't strand orphans holding the test harness's output pipes open.
struct Reaper(Vec<Option<Child>>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in self.0.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns one `hurricane-node` with `args` and scrapes the
/// `LISTENING <addr> NODE <id>` line it prints once serving.
fn spawn_node(args: &[&str]) -> (Child, String, u32) {
    // A restart reclaiming a just-killed node's address can briefly lose
    // the bind race against the kernel reaping the old sockets.
    for _ in 0..20 {
        match try_spawn_node(args) {
            Some(spawned) => return spawned,
            None => std::thread::sleep(Duration::from_millis(250)),
        }
    }
    panic!("hurricane-node {args:?} failed to start");
}

fn try_spawn_node(args: &[&str]) -> Option<(Child, String, u32)> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hurricane-node"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn hurricane-node");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTENING line");
    let mut words = line.split_whitespace();
    if words.next() != Some("LISTENING") {
        let _ = child.kill();
        let _ = child.wait();
        return None;
    }
    let addr = words.next().expect("data addr").to_string();
    assert_eq!(words.next(), Some("NODE"), "unexpected banner: {line:?}");
    let id: u32 = words.next().expect("node id").parse().expect("numeric id");
    Some((child, addr, id))
}

/// A fresh per-test data dir for one node, as a CLI-ready string.
fn temp_data_dir(name: &str) -> String {
    let path =
        std::env::temp_dir().join(format!("hurricane-smoke-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&path).ok();
    path.to_str().expect("utf-8 temp path").to_string()
}

/// Asks a node directly over its own socket how many chunks of `bag` it
/// holds — proof of placements landing (or having been recovered) there.
fn probe_chunks(addr: &str, node: u32, bag: hurricane_common::BagId) -> u64 {
    let mut probe = TcpTransport::dial(addr, Some(StorageNodeId(node))).expect("dial probe");
    probe
        .send(RequestEnvelope {
            id: 1,
            client: 990 + node as u64,
            seq: 1,
            request: StorageRequest::Sample { bag },
        })
        .expect("probe send");
    let reply = probe
        .recv_timeout(Duration::from_secs(5))
        .expect("probe reply");
    match reply.result {
        Ok(StorageResponse::Sampled(s)) => s.total_chunks,
        other => panic!("unexpected probe reply: {other:?}"),
    }
}

/// One test chunk: `[seq: u64 le][n: u32 le][ip: u32 le]*n`. The seq is
/// the exactly-once identity; the ips are the ClickLog payload.
fn chunk_of(seq: u64, ips: &[u32]) -> Chunk {
    let mut bytes = Vec::with_capacity(12 + ips.len() * 4);
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&(ips.len() as u32).to_le_bytes());
    for ip in ips {
        bytes.extend_from_slice(&ip.to_le_bytes());
    }
    Chunk::from_vec(bytes)
}

fn decode_chunk(c: &Chunk) -> (u64, Vec<u32>) {
    let b = c.bytes();
    let seq = u64::from_le_bytes(b[..8].try_into().unwrap());
    let n = u32::from_le_bytes(b[8..12].try_into().unwrap()) as usize;
    let ips = (0..n)
        .map(|i| u32::from_le_bytes(b[12 + i * 4..16 + i * 4].try_into().unwrap()))
        .collect();
    (seq, ips)
}

/// Counts distinct ips per region — the ClickLog answer (paper §5.1).
fn region_counts(batches: &BTreeMap<u64, Vec<u32>>, spec: &ClickLogSpec) -> BTreeMap<u32, usize> {
    let mut per_region: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for ips in batches.values() {
        for &ip in ips {
            per_region
                .entry(region_of(ip, spec.num_ips, spec.regions))
                .or_default()
                .insert(ip);
        }
    }
    per_region.into_iter().map(|(r, s)| (r, s.len())).collect()
}

#[test]
fn three_process_clicklog_survives_kill_restart_and_join() {
    // --- boot: three durable static nodes + the TCP endpoint ----------
    let mut children = Reaper(Vec::new());
    let mut addrs = Vec::new();
    let dirs: Vec<String> = (0..3).map(|i| temp_data_dir(&format!("node{i}"))).collect();
    for i in 0..3u32 {
        let id = i.to_string();
        let (child, addr, got) = spawn_node(&[
            "--listen",
            "127.0.0.1:0",
            "--id",
            &id,
            "--data-dir",
            &dirs[i as usize],
        ]);
        assert_eq!(got, i);
        children.0.push(Some(child));
        addrs.push(addr);
    }

    let endpoint = StorageEndpoint::tcp(addrs.clone(), ClusterConfig { replication: 2 })
        .with_request_timeout(Duration::from_secs(2))
        .with_retry_policy(RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(10),
        });
    let bag = endpoint.cluster().create_bag();
    let mut writer = endpoint.client(bag, 1);

    // --- the ClickLog input, chunked 50 records at a time -------------
    let spec = ClickLogSpec {
        num_ips: 4096,
        regions: 16,
        skew: 1.0,
        records: 3_000,
        seed: 0x51_0C,
    };
    let ips: Vec<u32> = ClickLogGen::new(spec.clone()).collect();
    let batches: Vec<(u64, &[u32])> = ips
        .chunks(50)
        .enumerate()
        .map(|(i, b)| (i as u64, b))
        .collect();
    let third = batches.len() / 3;

    let mut attempted = BTreeSet::new();
    let mut acked = BTreeSet::new();
    let mut insert = |writer: &mut hurricane_storage::BagClient, span: &[(u64, &[u32])]| {
        for &(seq, ips) in span {
            attempted.insert(seq);
            if writer.insert(chunk_of(seq, ips)).is_ok() {
                acked.insert(seq);
            }
        }
    };

    // Phase 1: healthy cluster.
    insert(&mut writer, &batches[..third]);

    // Phase 2: SIGKILL node 1 mid-job. Replication 2 means every acked
    // chunk has a live replica; inserts reroute around the dead process.
    let mut victim = children.0[1].take().unwrap();
    victim.kill().expect("SIGKILL node 1");
    victim.wait().expect("reap node 1");
    insert(&mut writer, &batches[third..2 * third]);

    // Phase 3: a fourth process joins through the driver's join
    // listener, mid-job, and starts taking placements.
    let join_addr = endpoint.serve_joins("127.0.0.1:0").expect("join listener");
    let (child3, addr3, id3) =
        spawn_node(&["--listen", "127.0.0.1:0", "--join", &join_addr.to_string()]);
    children.0.push(Some(child3));
    assert_eq!(id3, 3, "driver assigned the next node id");
    assert_eq!(endpoint.cluster().num_nodes(), 4, "join grew the cluster");
    writer.refresh_membership();
    insert(&mut writer, &batches[2 * third..]);

    // The joined process really received placements: ask it directly
    // over its own socket.
    assert!(
        probe_chunks(&addr3, 3, bag) > 0,
        "joined node never received a placement"
    );

    // Phase 4: restart the killed node from its --data-dir at its
    // original (advertised) address. `StorageNode::durable` replays the
    // segment logs before serving, so every placement it acked before
    // the SIGKILL is back — recovered from disk, not from replicas.
    let (child1, addr1, got) =
        spawn_node(&["--listen", &addrs[1], "--id", "1", "--data-dir", &dirs[1]]);
    children.0.push(Some(child1));
    assert_eq!(got, 1);
    assert_eq!(
        addr1, addrs[1],
        "restart must reclaim the advertised address"
    );
    assert!(
        probe_chunks(&addr1, 1, bag) > 0,
        "restarted node recovered no placements from its data dir"
    );

    // --- drain and judge ----------------------------------------------
    // A fresh reader dials every member anew, so the drain routes
    // through the restarted process too: its recovered chunks must
    // serve, and a replica whose log ran ahead during the outage must
    // not be masked by the restarted primary's shorter one.
    endpoint.cluster().seal_bag(bag).expect("seal");
    let mut reader = endpoint.client(bag, 2);
    let mut drained: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    let mut pending_budget = 10_000u32;
    loop {
        match reader.try_remove_batch(8).expect("remove") {
            BatchRemoveResult::Chunks(chunks) => {
                pending_budget = 10_000;
                for c in &chunks {
                    let (seq, ips) = decode_chunk(c);
                    assert!(
                        drained.insert(seq, ips).is_none(),
                        "chunk {seq} drained twice"
                    );
                }
            }
            BatchRemoveResult::Pending => {
                pending_budget -= 1;
                assert!(pending_budget > 0, "sealed bag stayed pending: data lost?");
                std::thread::sleep(Duration::from_millis(1));
            }
            BatchRemoveResult::Drained => break,
        }
    }

    // Exactly-once: every acked chunk survived the kill, nothing
    // materialized that was never sent, nothing came out twice (the
    // BTreeMap insert above), and payloads crossed the wire intact.
    for seq in &acked {
        assert!(drained.contains_key(seq), "acked chunk {seq} was lost");
    }
    for (seq, got) in &drained {
        assert!(attempted.contains(seq), "chunk {seq} never inserted");
        let want = &batches[*seq as usize];
        assert_eq!(got, want.1, "chunk {seq} payload corrupted in flight");
    }

    // And the job's actual answer: distinct ips per region over the
    // drained records matches the generator's ground truth for the same
    // chunk set.
    let expected: BTreeMap<u64, Vec<u32>> = drained
        .keys()
        .map(|&seq| (seq, batches[seq as usize].1.to_vec()))
        .collect();
    assert_eq!(
        region_counts(&drained, &spec),
        region_counts(&expected, &spec),
        "ClickLog region histogram diverged"
    );

    endpoint.shutdown();
    drop(children);
    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn sigterm_flushes_segment_logs_and_restart_recovers() {
    let dir = temp_data_dir("sigterm");
    let (child, addr, _) =
        spawn_node(&["--listen", "127.0.0.1:0", "--id", "0", "--data-dir", &dir]);
    let mut children = Reaper(vec![Some(child)]);

    let endpoint = StorageEndpoint::tcp([addr], ClusterConfig::default())
        .with_request_timeout(Duration::from_secs(2));
    let bag = endpoint.cluster().create_bag();
    let mut writer = endpoint.client(bag, 1);
    const N: u64 = 20;
    for seq in 0..N {
        writer
            .insert(chunk_of(seq, &[seq as u32]))
            .expect("insert to single durable node");
    }
    endpoint.shutdown();

    // Graceful shutdown: SIGTERM makes the node flush and fsync its open
    // segment logs and exit 0 (a SIGKILL would skip both).
    let mut child = children.0[0].take().unwrap();
    let sent = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(sent.success(), "kill -TERM failed");
    let exit = child.wait().expect("reap node");
    assert!(exit.success(), "SIGTERM exit was {exit:?}, want 0");

    // Restart from the same data dir: every insert is back.
    let (child2, addr2, _) =
        spawn_node(&["--listen", "127.0.0.1:0", "--id", "0", "--data-dir", &dir]);
    children.0.push(Some(child2));
    assert_eq!(
        probe_chunks(&addr2, 0, bag),
        N,
        "restart after graceful shutdown lost chunks"
    );

    drop(children);
    std::fs::remove_dir_all(&dir).ok();
}
