//! The multi-process cluster smoke test (mirrored by the CI
//! `cluster-smoke` job): three `hurricane-node` processes plus a driver
//! on localhost run a ClickLog insert/drain job over real TCP, one node
//! is SIGKILLed mid-job (replica failover across process boundaries), a
//! fourth node joins mid-job through the driver's join listener and
//! receives placements, and the drained result is exactly-once with
//! byte-perfect payloads.

use hurricane_common::StorageNodeId;
use hurricane_format::Chunk;
use hurricane_storage::bag::BatchRemoveResult;
use hurricane_storage::rpc::{RequestEnvelope, RetryPolicy, StorageRequest, StorageResponse};
use hurricane_storage::{ClusterConfig, StorageEndpoint, TcpTransport, Transport};
use hurricane_workloads::clicklog::{region_of, ClickLogGen, ClickLogSpec};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Kills every spawned node process on drop, so a failing assertion
/// doesn't strand orphans holding the test harness's output pipes open.
struct Reaper(Vec<Option<Child>>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in self.0.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns one `hurricane-node` with `args` and scrapes the
/// `LISTENING <addr> NODE <id>` line it prints once serving.
fn spawn_node(args: &[&str]) -> (Child, String, u32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hurricane-node"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn hurricane-node");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTENING line");
    let mut words = line.split_whitespace();
    assert_eq!(
        words.next(),
        Some("LISTENING"),
        "unexpected banner: {line:?}"
    );
    let addr = words.next().expect("data addr").to_string();
    assert_eq!(words.next(), Some("NODE"), "unexpected banner: {line:?}");
    let id: u32 = words.next().expect("node id").parse().expect("numeric id");
    (child, addr, id)
}

/// One test chunk: `[seq: u64 le][n: u32 le][ip: u32 le]*n`. The seq is
/// the exactly-once identity; the ips are the ClickLog payload.
fn chunk_of(seq: u64, ips: &[u32]) -> Chunk {
    let mut bytes = Vec::with_capacity(12 + ips.len() * 4);
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&(ips.len() as u32).to_le_bytes());
    for ip in ips {
        bytes.extend_from_slice(&ip.to_le_bytes());
    }
    Chunk::from_vec(bytes)
}

fn decode_chunk(c: &Chunk) -> (u64, Vec<u32>) {
    let b = c.bytes();
    let seq = u64::from_le_bytes(b[..8].try_into().unwrap());
    let n = u32::from_le_bytes(b[8..12].try_into().unwrap()) as usize;
    let ips = (0..n)
        .map(|i| u32::from_le_bytes(b[12 + i * 4..16 + i * 4].try_into().unwrap()))
        .collect();
    (seq, ips)
}

/// Counts distinct ips per region — the ClickLog answer (paper §5.1).
fn region_counts(batches: &BTreeMap<u64, Vec<u32>>, spec: &ClickLogSpec) -> BTreeMap<u32, usize> {
    let mut per_region: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for ips in batches.values() {
        for &ip in ips {
            per_region
                .entry(region_of(ip, spec.num_ips, spec.regions))
                .or_default()
                .insert(ip);
        }
    }
    per_region.into_iter().map(|(r, s)| (r, s.len())).collect()
}

#[test]
fn three_process_clicklog_survives_kill_and_join() {
    // --- boot: three static nodes + the TCP endpoint over them --------
    let mut children = Reaper(Vec::new());
    let mut addrs = Vec::new();
    for i in 0..3 {
        let id = i.to_string();
        let (child, addr, got) = spawn_node(&["--listen", "127.0.0.1:0", "--id", &id]);
        assert_eq!(got, i);
        children.0.push(Some(child));
        addrs.push(addr);
    }

    let endpoint = StorageEndpoint::tcp(addrs.clone(), ClusterConfig { replication: 2 })
        .with_request_timeout(Duration::from_secs(2))
        .with_retry_policy(RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(10),
        });
    let bag = endpoint.cluster().create_bag();
    let mut writer = endpoint.client(bag, 1);

    // --- the ClickLog input, chunked 50 records at a time -------------
    let spec = ClickLogSpec {
        num_ips: 4096,
        regions: 16,
        skew: 1.0,
        records: 3_000,
        seed: 0x51_0C,
    };
    let ips: Vec<u32> = ClickLogGen::new(spec.clone()).collect();
    let batches: Vec<(u64, &[u32])> = ips
        .chunks(50)
        .enumerate()
        .map(|(i, b)| (i as u64, b))
        .collect();
    let third = batches.len() / 3;

    let mut attempted = BTreeSet::new();
    let mut acked = BTreeSet::new();
    let mut insert = |writer: &mut hurricane_storage::BagClient, span: &[(u64, &[u32])]| {
        for &(seq, ips) in span {
            attempted.insert(seq);
            if writer.insert(chunk_of(seq, ips)).is_ok() {
                acked.insert(seq);
            }
        }
    };

    // Phase 1: healthy cluster.
    insert(&mut writer, &batches[..third]);

    // Phase 2: SIGKILL node 1 mid-job. Replication 2 means every acked
    // chunk has a live replica; inserts reroute around the dead process.
    let mut victim = children.0[1].take().unwrap();
    victim.kill().expect("SIGKILL node 1");
    victim.wait().expect("reap node 1");
    insert(&mut writer, &batches[third..2 * third]);

    // Phase 3: a fourth process joins through the driver's join
    // listener, mid-job, and starts taking placements.
    let join_addr = endpoint.serve_joins("127.0.0.1:0").expect("join listener");
    let (child3, addr3, id3) =
        spawn_node(&["--listen", "127.0.0.1:0", "--join", &join_addr.to_string()]);
    children.0.push(Some(child3));
    assert_eq!(id3, 3, "driver assigned the next node id");
    assert_eq!(endpoint.cluster().num_nodes(), 4, "join grew the cluster");
    writer.refresh_membership();
    insert(&mut writer, &batches[2 * third..]);

    // The joined process really received placements: ask it directly
    // over its own socket.
    let mut probe = TcpTransport::dial(&addr3, Some(StorageNodeId(3))).expect("dial joined node");
    probe
        .send(RequestEnvelope {
            id: 1,
            client: 999,
            seq: 1,
            request: StorageRequest::Sample { bag },
        })
        .expect("probe send");
    let reply = probe
        .recv_timeout(Duration::from_secs(5))
        .expect("probe reply");
    match reply.result {
        Ok(StorageResponse::Sampled(s)) => {
            assert!(s.total_chunks > 0, "joined node never received a placement")
        }
        other => panic!("unexpected probe reply: {other:?}"),
    }

    // --- drain and judge ----------------------------------------------
    endpoint.cluster().seal_bag(bag).expect("seal");
    let mut reader = endpoint.client(bag, 2);
    let mut drained: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    let mut pending_budget = 10_000u32;
    loop {
        match reader.try_remove_batch(8).expect("remove") {
            BatchRemoveResult::Chunks(chunks) => {
                pending_budget = 10_000;
                for c in &chunks {
                    let (seq, ips) = decode_chunk(c);
                    assert!(
                        drained.insert(seq, ips).is_none(),
                        "chunk {seq} drained twice"
                    );
                }
            }
            BatchRemoveResult::Pending => {
                pending_budget -= 1;
                assert!(pending_budget > 0, "sealed bag stayed pending: data lost?");
                std::thread::sleep(Duration::from_millis(1));
            }
            BatchRemoveResult::Drained => break,
        }
    }

    // Exactly-once: every acked chunk survived the kill, nothing
    // materialized that was never sent, nothing came out twice (the
    // BTreeMap insert above), and payloads crossed the wire intact.
    for seq in &acked {
        assert!(drained.contains_key(seq), "acked chunk {seq} was lost");
    }
    for (seq, got) in &drained {
        assert!(attempted.contains(seq), "chunk {seq} never inserted");
        let want = &batches[*seq as usize];
        assert_eq!(got, want.1, "chunk {seq} payload corrupted in flight");
    }

    // And the job's actual answer: distinct ips per region over the
    // drained records matches the generator's ground truth for the same
    // chunk set.
    let expected: BTreeMap<u64, Vec<u32>> = drained
        .keys()
        .map(|&seq| (seq, batches[seq as usize].1.to_vec()))
        .collect();
    assert_eq!(
        region_counts(&drained, &spec),
        region_counts(&expected, &spec),
        "ClickLog region histogram diverged"
    );

    endpoint.shutdown();
    drop(children);
}
