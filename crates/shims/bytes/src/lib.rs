//! Offline shim of the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of `bytes` it actually uses: an
//! immutable, reference-counted byte buffer that is cheap to clone and
//! derefs to `&[u8]`. Swap this for the real crate by pointing the
//! workspace dependency back at the registry.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pointer to the first byte (stable across clones: storage is shared).
    pub fn as_ptr(&self) -> *const u8 {
        self.data.as_ptr()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self { data: v.into() }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self {
            data: v.as_bytes().into(),
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_sharing() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr(), "clones share storage");
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(Vec::new()).len(), 0);
    }
}
