//! Offline shim of the `criterion` benchmark harness.
//!
//! The build environment cannot fetch crates.io, so this crate implements
//! the subset of criterion's API the workspace benches use, backed by a
//! simple adaptive wall-clock measurement: warm up, pick an iteration
//! count that fills the sample window, take samples, report the median.
//!
//! Extras over plain criterion output:
//!
//! * `BENCH_JSON=<path>` appends one JSON object per benchmark
//!   (`{"name", "ns_per_iter", "elems_per_sec"}`) — used by the repo's
//!   `BENCH_*.json` record keeping.
//! * `BENCH_SAMPLE_MS` / `BENCH_WARMUP_MS` override the measurement and
//!   warm-up windows (milliseconds). CI's bench-smoke job sets small
//!   values to exercise every bench quickly; unset, the defaults give
//!   stable medians.
//! * A positional CLI argument filters benchmarks by substring, matching
//!   `cargo bench -- <filter>` behaviour.

use std::fmt::Display;
use std::hint;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// The shim times each routine call individually, so the variants behave
/// identically; the type exists for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output: criterion would batch many per sample.
    SmallInput,
    /// Large setup output: criterion would batch few per sample.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

/// One measured sample set, reduced to its median.
#[derive(Debug, Clone, Copy)]
struct Measurement {
    ns_per_iter: f64,
}

/// The per-benchmark measurement driver handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    measurement: Option<Measurement>,
}

/// Default target wall-clock time for the measurement phase of one
/// benchmark; override with `BENCH_SAMPLE_MS`.
const DEFAULT_SAMPLE_MS: u64 = 1500;
/// Default target wall-clock time for warm-up; override with
/// `BENCH_WARMUP_MS`.
const DEFAULT_WARMUP_MS: u64 = 300;

fn window_from_env(var: &str, cell: &'static OnceLock<Duration>, default_ms: u64) -> Duration {
    *cell.get_or_init(|| {
        let ms = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(default_ms)
            .max(1);
        Duration::from_millis(ms)
    })
}

fn sample_window() -> Duration {
    static CELL: OnceLock<Duration> = OnceLock::new();
    window_from_env("BENCH_SAMPLE_MS", &CELL, DEFAULT_SAMPLE_MS)
}

fn warmup_window() -> Duration {
    static CELL: OnceLock<Duration> = OnceLock::new();
    window_from_env("BENCH_WARMUP_MS", &CELL, DEFAULT_WARMUP_MS)
}

impl Bencher {
    /// Measures `routine`, called in a timed loop.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run until the window elapses, estimating cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warmup_window() {
            hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Choose per-sample iteration counts that fill the sample window.
        let samples = self.sample_size.max(5);
        let total_iters =
            ((sample_window().as_nanos() as f64 / est_ns).ceil() as u64).max(samples as u64);
        let iters_per_sample = (total_iters / samples as u64).max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                hint::black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.measurement = Some(Measurement {
            ns_per_iter: per_iter[per_iter.len() / 2],
        });
    }

    /// Measures `routine` on fresh inputs from `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // Warm-up (setup cost excluded from the estimate's numerator).
        let mut warm_iters = 0u64;
        let mut warm_busy = Duration::ZERO;
        let warm_start = Instant::now();
        while warm_start.elapsed() < warmup_window() {
            let input = setup();
            let t = Instant::now();
            hint::black_box(routine(input));
            warm_busy += t.elapsed();
            warm_iters += 1;
        }
        let est_ns = (warm_busy.as_nanos() as f64 / warm_iters as f64).max(1.0);

        let samples = self.sample_size.max(5);
        let total_iters =
            ((sample_window().as_nanos() as f64 / est_ns).ceil() as u64).max(samples as u64);
        let iters_per_sample = (total_iters / samples as u64).max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut busy = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                hint::black_box(routine(input));
                busy += t.elapsed();
            }
            per_iter.push(busy.as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.measurement = Some(Measurement {
            ns_per_iter: per_iter[per_iter.len() / 2],
        });
    }

    /// `iter_batched` variant passing the setup output by mutable
    /// reference.
    pub fn iter_batched_ref<I, R>(
        &mut self,
        setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> R,
        size: BatchSize,
    ) {
        self.iter_batched(setup, |mut i| routine(&mut i), size);
    }
}

/// The top-level harness: owns the CLI filter and report sink.
pub struct Criterion {
    filter: Option<String>,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            json_path: std::env::var("BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Builds a harness from CLI args: the first non-flag argument is a
    /// substring filter, flags (`--bench`, `--profile-time`, ...) are
    /// ignored.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            filter,
            ..Self::default()
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, 50, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 50,
        }
    }

    /// Prints the closing summary line.
    pub fn final_summary(&mut self) {
        println!("benchmarks complete");
    }

    fn run_one(
        &mut self,
        name: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            measurement: None,
        };
        f(&mut bencher);
        let Some(m) = bencher.measurement else {
            println!("{name:<50} (no measurement)");
            return;
        };
        let mut line = format!("{name:<50} {:>14} ns/iter", format_num(m.ns_per_iter));
        let mut elems_per_sec = None;
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 * 1e9 / m.ns_per_iter;
                elems_per_sec = Some(rate);
                line.push_str(&format!("   thrpt: {:>14} elem/s", format_num(rate)));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 * 1e9 / m.ns_per_iter;
                elems_per_sec = Some(rate);
                line.push_str(&format!("   thrpt: {:>14} B/s", format_num(rate)));
            }
            None => {}
        }
        println!("{line}");
        if let Some(path) = &self.json_path {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\":\"{name}\",\"ns_per_iter\":{:.1},\"elems_per_sec\":{}}}",
                    m.ns_per_iter,
                    elems_per_sec.map_or("null".to_string(), |r| format!("{r:.1}")),
                );
            }
        }
    }
}

/// A group of benchmarks sharing throughput units and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the units for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion
            .run_one(&name, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion
            .run_one(&name, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Anything usable as a benchmark name within a group.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

fn format_num(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 3).into_benchmark_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
    }

    #[test]
    fn format_num_scales() {
        assert_eq!(format_num(12.0), "12.0");
        assert_eq!(format_num(1_500.0), "1.50k");
        assert_eq!(format_num(2_000_000.0), "2.00M");
        assert_eq!(format_num(3_100_000_000.0), "3.10G");
    }
}
