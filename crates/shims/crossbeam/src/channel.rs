//! Multi-producer multi-consumer channels with optional capacity bounds.
//!
//! Semantics follow `crossbeam-channel`: senders and receivers are
//! cloneable; `send` on a bounded channel blocks while full; dropping the
//! last receiver disconnects senders (send errors), dropping the last
//! sender disconnects receivers once the buffer drains.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// `usize::MAX` encodes "unbounded".
    capacity: usize,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    /// Signalled when an item arrives or the last sender leaves.
    recv_ready: Condvar,
    /// Signalled when space frees up or the last receiver leaves.
    send_ready: Condvar,
}

impl<T> Shared<T> {
    fn no_senders(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn no_receivers(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent value is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now; senders still exist.
    Empty,
    /// Nothing buffered and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline elapsed with nothing received.
    Timeout,
    /// Every sender is gone and the buffer is empty.
    Disconnected,
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

/// Creates a bounded MPMC channel holding at most `cap` items. `cap == 0`
/// is modelled as capacity 1 (true rendezvous is not needed here).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(cap.max(1))
}

/// Creates a receiver on which nothing is ever received and which never
/// disconnects.
pub fn never<T>() -> Receiver<T> {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity: usize::MAX,
        // One phantom sender that is never dropped keeps the channel open
        // forever: recv blocks, try_recv reports Empty.
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
    });
    Receiver { shared }
}

fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if self.shared.no_receivers() {
                return Err(SendError(value));
            }
            if queue.len() < self.shared.capacity {
                queue.push_back(value);
                drop(queue);
                self.shared.recv_ready.notify_one();
                return Ok(());
            }
            queue = self.shared.send_ready.wait(queue).unwrap();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake receivers parked on an empty queue so they observe the
            // disconnect. The lock orders the wake-up after any in-flight
            // recv reached its wait.
            let _guard = self.shared.queue.lock().unwrap();
            self.shared.recv_ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, blocking until one arrives or every sender
    /// is gone (and the buffer is empty).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.shared.send_ready.notify_one();
                return Ok(v);
            }
            if self.shared.no_senders() {
                return Err(RecvError);
            }
            queue = self.shared.recv_ready.wait(queue).unwrap();
        }
    }

    /// Receives the next item without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(v) = queue.pop_front() {
            drop(queue);
            self.shared.send_ready.notify_one();
            return Ok(v);
        }
        if self.shared.no_senders() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives the next item, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.shared.send_ready.notify_one();
                return Ok(v);
            }
            if self.shared.no_senders() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, res) = self
                .shared
                .recv_ready
                .wait_timeout(queue, deadline - now)
                .unwrap();
            queue = q;
            if res.timed_out() && queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Returns how many items are currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Returns whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.shared.queue.lock().unwrap();
            self.shared.send_ready.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn sender_drop_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7), "buffered items drain first");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn receiver_drop_fails_send() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).map(|_| ()).is_ok());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(t.join().unwrap());
    }

    #[test]
    fn bounded_send_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).is_err());
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(t.join().unwrap(), "send must fail, not hang");
    }

    #[test]
    fn mpmc_sums_once() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn never_reports_empty_forever() {
        let rx = never::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        let rx2 = rx.clone();
        assert_eq!(rx2.try_recv(), Err(TryRecvError::Empty));
    }
}
