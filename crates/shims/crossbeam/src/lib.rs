//! Offline shim of `crossbeam`: the `channel` module subset this
//! workspace uses, implemented as an MPMC queue over `Mutex` + `Condvar`.

pub mod channel;
