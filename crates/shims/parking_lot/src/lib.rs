//! Offline shim of `parking_lot`, backed by `std::sync`.
//!
//! The API mirrors the subset the workspace uses: infallible `lock()` /
//! `read()` / `write()` that recover from poisoning (a panicking thread
//! must not wedge every other lock user — matching parking_lot, which has
//! no poisoning at all).

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(v) => f.debug_tuple("Mutex").field(&&*v).finish(),
            None => write!(f, "Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free accessors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(v) => f.debug_tuple("RwLock").field(&&*v).finish(),
            None => write!(f, "RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(format!("{:?}", m), "Mutex(2)");
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
