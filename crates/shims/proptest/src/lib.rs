//! Offline shim of `proptest`.
//!
//! Implements the subset of proptest's surface syntax this workspace's
//! property tests use — the `proptest!` macro, range / regex-class /
//! tuple / collection strategies, `any::<T>()`, and the `prop_assert*`
//! family — on top of a deterministic SplitMix64 generator. No shrinking:
//! a failing case reports its seed and values via the panic message
//! instead.

use std::fmt;
use std::ops::Range;

/// Deterministic generator driving every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;

            fn arbitrary() -> FullRange<$t> {
                FullRange(std::marker::PhantomData)
            }
        }

        impl Strategy for FullRange<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Strategy for the full domain of a primitive (`any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// Uniform coin-flip strategy.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The whole-domain strategy for `T` — proptest's `any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }

        impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+)
        where
            $($s::Strategy: Strategy<Value = $s>,)+
            Self: fmt::Debug,
        {
            type Strategy = ($($s::Strategy,)+);

            fn arbitrary() -> Self::Strategy {
                ($($s::arbitrary(),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
);

/// String strategy from a character-class pattern like `"[a-z0-9 ]{0,40}"`.
///
/// Supports exactly that shape — one bracketed class (with ranges and
/// literal characters) followed by a `{min,max}` repetition — which is the
/// subset the workspace's tests use of proptest's full regex strategies.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| {
        panic!("unsupported string pattern {pattern:?}: expected `[class]{{min,max}}`")
    });
    let (class, rest) = rest
        .split_once(']')
        .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
    let (min, max) = if let Some(rep) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        let (lo, hi) = rep
            .split_once(',')
            .unwrap_or_else(|| panic!("expected `{{min,max}}` in {pattern:?}"));
        (
            lo.trim().parse().expect("min repeat"),
            hi.trim().parse().expect("max repeat"),
        )
    } else if rest.is_empty() {
        (1, 1)
    } else {
        panic!("unsupported pattern suffix {rest:?} in {pattern:?}");
    };
    assert!(min <= max, "min > max in {pattern:?}");
    (alphabet, min, max)
}

/// Collection and primitive sub-strategies, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt;
        use std::ops::Range;

        /// Strategy producing `Vec`s of `elem` with length in `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// Vector of values from `elem`, length drawn from `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        /// Uniform true/false.
        pub const ANY: super::super::BoolStrategy = super::super::BoolStrategy;
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Stable 64-bit FNV-1a over the test's module path and name: the per-test
/// base seed, so every test draws a distinct deterministic stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fails the current case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal, failing the case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts two expressions differ, failing the case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(base ^ (case as u64).wrapping_mul(0x9E37_79B9));
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let inputs = format!("{:?}", ($(&$arg,)*));
                let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                match result {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {case}: {msg}\n  inputs: {inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parses() {
        let (alphabet, min, max) = super::parse_class_pattern("[a-c9 ]{0,40}");
        assert_eq!(alphabet, vec!['a', 'b', 'c', '9', ' ']);
        assert_eq!((min, max), (0, 40));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u32..7, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 7));
        }

        #[test]
        fn string_pattern_respects_class(s in "[ab]{1,3}") {
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }

        #[test]
        fn tuples_and_any_compose(t in (any::<u8>(), 0usize..4), b in prop::bool::ANY) {
            prop_assert!(t.1 < 4);
            let _ = b;
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
