//! Max–min fair storage-bandwidth allocation.
//!
//! At any instant, each running worker demands I/O flow proportional to
//! its processing rate (`rate × (read_factor + write_factor)`), capped by
//! its task's CPU rate and, for locally-placed data, by the single home
//! disk. The shared pool — aggregate disk bandwidth times the batch-
//! sampling utilization ρ(b, m) — is divided max–min fairly: everyone
//! gets an equal share, workers that can't use their share (CPU-bound)
//! release the remainder, and the released bandwidth is redistributed
//! until it is exhausted or everyone is capped. This is the standard
//! progressive-filling algorithm.

/// One flow's demand description.
#[derive(Debug, Clone, Copy)]
pub struct FlowDemand {
    /// Maximum useful flow (bytes/s of storage traffic): the worker's CPU
    /// rate times its I/O amplification, possibly capped by a local disk.
    pub cap: f64,
}

/// Allocates the shared pool `capacity` across `flows` max–min fairly.
/// Returns the per-flow allocation, each ≤ its cap, summing to
/// `min(capacity, Σ caps)`.
pub fn max_min_fair(flows: &[FlowDemand], capacity: f64) -> Vec<f64> {
    let n = flows.len();
    let mut alloc = vec![0.0f64; n];
    if n == 0 || capacity <= 0.0 {
        return alloc;
    }
    let mut remaining = capacity;
    let mut open: Vec<usize> = (0..n).collect();
    // Progressive filling: repeatedly grant the smallest unmet cap.
    while !open.is_empty() && remaining > 1e-12 {
        let share = remaining / open.len() as f64;
        // Find flows whose cap is below the equal share; they saturate.
        let mut saturated = Vec::new();
        for &i in &open {
            if flows[i].cap - alloc[i] <= share {
                saturated.push(i);
            }
        }
        if saturated.is_empty() {
            for &i in &open {
                alloc[i] += share;
            }
            break; // Pool fully distributed.
        }
        for &i in &saturated {
            remaining -= flows[i].cap - alloc[i];
            alloc[i] = flows[i].cap;
        }
        open.retain(|i| !saturated.contains(i));
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(v: &[f64]) -> Vec<FlowDemand> {
        v.iter().map(|&cap| FlowDemand { cap }).collect()
    }

    #[test]
    fn underloaded_pool_grants_all_caps() {
        let a = max_min_fair(&caps(&[10.0, 20.0, 5.0]), 100.0);
        assert_eq!(a, vec![10.0, 20.0, 5.0]);
    }

    #[test]
    fn overloaded_pool_splits_equally() {
        let a = max_min_fair(&caps(&[100.0, 100.0]), 50.0);
        assert!((a[0] - 25.0).abs() < 1e-9);
        assert!((a[1] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn small_flows_release_to_big_ones() {
        // Pool 90: equal share 30, but flow 0 only needs 10; the released
        // 20 splits between the other two (40 each).
        let a = max_min_fair(&caps(&[10.0, 100.0, 100.0]), 90.0);
        assert!((a[0] - 10.0).abs() < 1e-9);
        assert!((a[1] - 40.0).abs() < 1e-9);
        assert!((a[2] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn conserves_capacity() {
        let flows = caps(&[3.0, 7.0, 11.0, 2.0, 40.0]);
        for capacity in [1.0, 10.0, 25.0, 100.0] {
            let a = max_min_fair(&flows, capacity);
            let total: f64 = a.iter().sum();
            let max_usable: f64 = flows.iter().map(|f| f.cap).sum();
            assert!(
                (total - capacity.min(max_usable)).abs() < 1e-6,
                "capacity {capacity}: allocated {total}"
            );
            for (x, f) in a.iter().zip(&flows) {
                assert!(*x <= f.cap + 1e-9);
            }
        }
    }

    #[test]
    fn empty_and_zero_cases() {
        assert!(max_min_fair(&[], 10.0).is_empty());
        assert_eq!(max_min_fair(&caps(&[5.0]), 0.0), vec![0.0]);
    }

    #[test]
    fn fairness_is_max_min() {
        // No flow below its cap may receive less than any other flow.
        let flows = caps(&[4.0, 50.0, 9.0, 50.0]);
        let a = max_min_fair(&flows, 60.0);
        let min_uncapped = a
            .iter()
            .zip(&flows)
            .filter(|(x, f)| **x < f.cap - 1e-9)
            .map(|(x, _)| *x)
            .fold(f64::INFINITY, f64::min);
        for &x in &a {
            assert!(x <= min_uncapped + 1e-9);
        }
    }
}
