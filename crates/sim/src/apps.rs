//! Cost models of the paper's three applications (§5.3), expressed as
//! [`SimApp`] DAGs for the Hurricane engine and as partition vectors for
//! the static baselines.
//!
//! Calibration targets the paper's testbed numbers: per-worker phase-1
//! processing ≈ 400 MB/s (16-core parse + geolocate), phase-2 (bitset
//! membership) ≈ 800 MB/s, disk-bound behaviour at ≥ 10 GB/machine, and
//! the 2-second cloning doubling ramp — together these reproduce Table 1
//! within the shape tolerances recorded in EXPERIMENTS.md.

use crate::spec::{DataPlacement, MergeModel, SimApp, SimTask};
use hurricane_common::units::{GB, MB};
use hurricane_workloads::rmat;
use hurricane_workloads::RegionWeights;

/// Per-worker phase-1 rate (parse + simulated geolocation), bytes/s.
pub const CLICKLOG_PHASE1_RATE: f64 = 400.0 * MB as f64;
/// Per-worker phase-2 rate (bitset insert), bytes/s.
pub const CLICKLOG_PHASE2_RATE: f64 = 800.0 * MB as f64;
/// Phase-3 is a popcount over the bitset: effectively instant; modelled
/// as a tiny fixed volume.
pub const CLICKLOG_PHASE3_BYTES: f64 = 1.0 * MB as f64;
/// Fraction of a phase-2 instance's input that its partial output
/// (bitset) occupies — drives merge cost.
pub const CLICKLOG_MERGE_RATIO: f64 = 0.05;
/// Merge processing rate (bitset OR at memory speed), bytes/s.
pub const CLICKLOG_MERGE_RATE: f64 = 2.0 * GB as f64;

/// Builds the ClickLog DAG (Figure 1): phase 1 fans input into per-region
/// bags; per region, phase 2 computes the distinct-IP bitset (with an OR
/// merge) and phase 3 counts it.
pub fn clicklog_app(input_bytes: f64, weights: &RegionWeights) -> SimApp {
    clicklog_app_with(input_bytes, weights, DataPlacement::Spread, true)
}

/// ClickLog with explicit placement and phase-1 partition count override
/// used by the design-evaluation figures. When `single_phase1` is false,
/// phase 1 is pre-split into one task per region (the static-partitioning
/// comparison of Figure 6 uses finer splits via
/// [`clicklog_app_partitioned`]).
pub fn clicklog_app_with(
    input_bytes: f64,
    weights: &RegionWeights,
    placement: DataPlacement,
    single_phase1: bool,
) -> SimApp {
    let mut app = SimApp {
        input_bytes,
        ..Default::default()
    };
    let mut phase1_ids = Vec::new();
    if single_phase1 {
        let mut p1 = SimTask::new("phase1", "phase1", input_bytes);
        p1.cpu_rate = CLICKLOG_PHASE1_RATE;
        p1.placement = placement;
        phase1_ids.push(app.push(p1));
    } else {
        for (r, &w) in weights.weights().iter().enumerate() {
            let mut p1 = SimTask::new(format!("phase1.{r}"), "phase1", input_bytes * w);
            p1.cpu_rate = CLICKLOG_PHASE1_RATE;
            p1.placement = placement;
            phase1_ids.push(app.push(p1));
        }
    }
    for (r, &w) in weights.weights().iter().enumerate() {
        let region_bytes = input_bytes * w;
        let mut p2 = SimTask::new(format!("phase2.{r}"), "phase2", region_bytes);
        p2.cpu_rate = CLICKLOG_PHASE2_RATE;
        p2.write_factor = CLICKLOG_MERGE_RATIO;
        p2.placement = placement;
        p2.deps = phase1_ids.clone();
        p2.merge = Some(MergeModel {
            bytes_per_instance: region_bytes * CLICKLOG_MERGE_RATIO,
            rate: CLICKLOG_MERGE_RATE,
        });
        let p2_id = app.push(p2);
        let mut p3 = SimTask::new(format!("phase3.{r}"), "phase3", CLICKLOG_PHASE3_BYTES);
        p3.cpu_rate = CLICKLOG_PHASE2_RATE;
        p3.write_factor = 0.0;
        p3.clonable = false;
        p3.deps = vec![p2_id];
        app.push(p3);
    }
    app
}

/// ClickLog with phase 2 statically pre-split into `partitions` tasks of
/// key-range-equal size (Figure 6's partition sweep). Weights are
/// stretched to the finer partitioning by subdividing each region's mass
/// uniformly.
pub fn clicklog_app_partitioned(
    input_bytes: f64,
    weights: &RegionWeights,
    partitions: usize,
) -> SimApp {
    let regions = weights.len();
    assert!(partitions >= regions && partitions.is_multiple_of(regions));
    let per = partitions / regions;
    let fine: Vec<f64> = weights
        .weights()
        .iter()
        .flat_map(|&w| std::iter::repeat_n(w / per as f64, per))
        .collect();
    clicklog_app(input_bytes, &RegionWeights::from_raw(fine))
}

/// ClickLog pre-partitioned for the Figure 6 sweep: phase 1 is split
/// into `partitions` *equal* static tasks ("To ensure a fair comparison
/// for HurricaneNC, we split the Phase 1 input into equal-sized
/// partitions such that each compute node is assigned at least one
/// partition") and phase 2 into `partitions` key-range tasks whose
/// masses come from the faithful Zipf generator — finer partitions
/// shrink the *average* task but the head partition stays comparatively
/// large, which is the figure's point.
pub fn clicklog_fig6_app(
    input_bytes: f64,
    num_keys: usize,
    skew: f64,
    partitions: usize,
) -> SimApp {
    let mut app = SimApp {
        input_bytes,
        ..Default::default()
    };
    let mut phase1_ids = Vec::new();
    for p in 0..partitions {
        let mut t = SimTask::new(
            format!("phase1.{p}"),
            "phase1",
            input_bytes / partitions as f64,
        );
        t.cpu_rate = CLICKLOG_PHASE1_RATE;
        phase1_ids.push(app.push(t));
    }
    let weights = RegionWeights::zipf(num_keys, partitions, skew);
    for (r, &w) in weights.weights().iter().enumerate() {
        let region_bytes = input_bytes * w;
        let mut p2 = SimTask::new(format!("phase2.{r}"), "phase2", region_bytes);
        p2.cpu_rate = CLICKLOG_PHASE2_RATE;
        p2.write_factor = CLICKLOG_MERGE_RATIO;
        p2.deps = phase1_ids.clone();
        p2.merge = Some(MergeModel {
            bytes_per_instance: region_bytes * CLICKLOG_MERGE_RATIO,
            rate: CLICKLOG_MERGE_RATE,
        });
        let p2_id = app.push(p2);
        let mut p3 = SimTask::new(
            format!("phase3.{r}"),
            "phase3",
            CLICKLOG_PHASE3_BYTES / partitions as f64,
        );
        p3.cpu_rate = CLICKLOG_PHASE2_RATE;
        p3.write_factor = 0.0;
        p3.clonable = false;
        p3.deps = vec![p2_id];
        app.push(p3);
    }
    app
}

/// HashJoin per-worker processing rate (probe + emit), bytes/s.
pub const JOIN_RATE: f64 = 25.0 * MB as f64;
/// Small-relation sort rate, bytes/s.
pub const JOIN_SORT_RATE: f64 = 50.0 * MB as f64;

/// Builds the HashJoin DAG (§5.3): partition + sort the small relation,
/// then stream the large relation against it, one task per partition.
/// `hit_weights` skews the per-partition probe/output volume (the paper
/// injects skew into the smaller relation, inflating some keys' hit
/// rate).
pub fn hashjoin_app(small_bytes: f64, large_bytes: f64, hit_weights: &RegionWeights) -> SimApp {
    let mut app = SimApp {
        input_bytes: small_bytes + large_bytes,
        ..Default::default()
    };
    let mut sort = SimTask::new("partition-sort", "build", small_bytes);
    sort.cpu_rate = JOIN_SORT_RATE;
    let sort_id = app.push(sort);
    for (p, &w) in hit_weights.weights().iter().enumerate() {
        // Each probe task streams its share of the large relation; the
        // hit-rate skew multiplies the work for hot partitions (matching
        // output volume explosion). Output is written back to bags.
        let parts = hit_weights.len() as f64;
        let stream_bytes = large_bytes / parts;
        let hot_factor = (w * parts).max(0.1);
        let mut probe = SimTask::new(
            format!("probe.{p}"),
            "probe",
            stream_bytes * (0.5 + 0.5 * hot_factor),
        );
        probe.cpu_rate = JOIN_RATE;
        probe.write_factor = 0.3 * hot_factor;
        probe.deps = vec![sort_id];
        probe.merge = Some(MergeModel {
            bytes_per_instance: stream_bytes * 0.02,
            rate: CLICKLOG_MERGE_RATE,
        });
        app.push(probe);
    }
    app
}

/// PageRank per-worker scatter/gather rate, bytes/s.
pub const PAGERANK_RATE: f64 = 40.0 * MB as f64;
/// Bytes per edge (vertex ids + rank message).
pub const PAGERANK_EDGE_BYTES: f64 = 12.0;

/// Builds the 5-iteration PageRank DAG (§5.3) on an RMAT-`scale` graph,
/// partitioned over `partitions` vertex ranges whose edge loads follow
/// the analytic R-MAT partition weights (high-degree vertices concentrate
/// in partition 0).
pub fn pagerank_app(scale: u32, iterations: usize, partitions: usize) -> SimApp {
    let edges = (rmat::EDGE_FACTOR << scale) as f64;
    let total_bytes = edges * PAGERANK_EDGE_BYTES;
    let weights = rmat::partition_edge_weights(scale, partitions);
    let mut app = SimApp {
        input_bytes: total_bytes,
        ..Default::default()
    };
    let mut prev_iter: Vec<usize> = Vec::new();
    for it in 0..iterations {
        let mut this_iter = Vec::new();
        for (p, &w) in weights.iter().enumerate() {
            let mut t = SimTask::new(
                format!("iter{it}.part{p}"),
                format!("iter{it}"),
                total_bytes * w,
            );
            t.cpu_rate = PAGERANK_RATE;
            t.write_factor = 0.5;
            t.deps = prev_iter.clone();
            t.merge = Some(MergeModel {
                bytes_per_instance: total_bytes * w * 0.05,
                rate: CLICKLOG_MERGE_RATE,
            });
            this_iter.push(app.push(t));
        }
        prev_iter = this_iter;
    }
    app
}

/// Aggregate storage bandwidth with `nodes` storage nodes and batch
/// factor `b` — the §5.2 "Throughput and Storage Utilization" experiment
/// (330 MB/s at 1 node scaling to ~10.5 GB/s at 32).
pub fn storage_scaling_bandwidth(disk_bw: f64, nodes: u32, b: u32) -> f64 {
    disk_bw * nodes as f64 * hurricane_storage::batch::utilization(b, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_common::units::GB;

    #[test]
    fn clicklog_dag_shape() {
        let w = RegionWeights::uniform(32);
        let app = clicklog_app(32.0 * GB as f64, &w);
        // 1 phase-1 + 32 phase-2 + 32 phase-3.
        assert_eq!(app.tasks.len(), 65);
        assert!(app.tasks[0].merge.is_none(), "phase1 merges by concat");
        assert!(app.tasks[1].merge.is_some(), "phase2 needs the OR merge");
        assert!(!app.tasks[2].clonable, "phase3 is too small to clone");
        // Phase-2 inputs sum to the full input.
        let p2_sum: f64 = app
            .tasks
            .iter()
            .filter(|t| t.phase == "phase2")
            .map(|t| t.input_bytes)
            .sum();
        assert!((p2_sum - 32.0 * GB as f64).abs() < 1.0);
    }

    #[test]
    fn skewed_clicklog_has_heavy_region() {
        let w = RegionWeights::paper_ladder(32, 1.0);
        let app = clicklog_app(32.0 * GB as f64, &w);
        let p2: Vec<f64> = app
            .tasks
            .iter()
            .filter(|t| t.phase == "phase2")
            .map(|t| t.input_bytes)
            .collect();
        let max = p2.iter().cloned().fold(0.0, f64::max);
        let min = p2.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max / min - 64.0).abs() < 1.0, "imbalance {}", max / min);
    }

    #[test]
    fn partitioned_clicklog_subdivides() {
        let w = RegionWeights::paper_ladder(32, 1.0);
        let app = clicklog_app_partitioned(32.0 * GB as f64, &w, 128);
        let p2 = app.tasks.iter().filter(|t| t.phase == "phase2").count();
        assert_eq!(p2, 128);
    }

    #[test]
    fn hashjoin_scales_hot_partitions() {
        let w = RegionWeights::paper_ladder(32, 1.0);
        let app = hashjoin_app(3.2 * GB as f64, 32.0 * GB as f64, &w);
        let probes: Vec<f64> = app
            .tasks
            .iter()
            .filter(|t| t.phase == "probe")
            .map(|t| t.input_bytes)
            .collect();
        assert_eq!(probes.len(), 32);
        let max = probes.iter().cloned().fold(0.0, f64::max);
        let min = probes.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 5.0, "hot partitions must be heavier");
    }

    #[test]
    fn pagerank_iterations_are_chained() {
        let app = pagerank_app(20, 5, 32);
        assert_eq!(app.tasks.len(), 5 * 32);
        // Iteration 1 tasks depend on all iteration 0 tasks.
        let t = &app.tasks[32];
        assert_eq!(t.deps.len(), 32);
        assert!(t.name.starts_with("iter1"));
    }

    #[test]
    fn storage_scaling_matches_paper_endpoints() {
        let one = storage_scaling_bandwidth(330e6, 1, 10);
        let thirty_two = storage_scaling_bandwidth(330e6, 32, 10);
        assert!((one - 330e6).abs() < 1e6, "single node = single disk");
        let speedup = thirty_two / one;
        assert!(
            speedup > 31.0 && speedup <= 32.0,
            "paper reports 31.9x for 32 nodes, got {speedup:.1}x"
        );
    }
}
