//! Static-partitioning baseline models: Spark, Hadoop, GraphX.
//!
//! The paper compares Hurricane against Spark 2.2 and Hadoop 2.7.4
//! (ClickLog, Fig. 12 / Tables 2–3) and GraphX (PageRank, Table 4). The
//! phenomena those systems exhibit under skew are structural, and this
//! module models exactly those structures:
//!
//! * **Static partitioning** — work is fixed per partition up front; a
//!   hot partition is processed by one worker however long it takes
//!   (list scheduling over fixed-size tasks; no cloning).
//! * **Sort-based shuffle** — map output is sorted and shuffled, adding
//!   I/O passes proportional to the data.
//! * **Memory limits** — Spark crashes when one task's working set
//!   exceeds its 16 GB task-memory cap (paper: "Spark runs out of memory
//!   and crashes with highly skewed tasks due to a hard limitation of
//!   16GB placed on task memory").
//! * **Spill** — Hadoop reducers that outgrow their buffers spill to
//!   disk, multiplying their I/O.

use crate::spec::ClusterSpec;
use hurricane_common::units::GB;

/// A static engine's cost profile.
#[derive(Debug, Clone)]
pub struct StaticEngineSpec {
    /// Engine name for reports.
    pub name: &'static str,
    /// Fixed job startup, seconds (JVM + scheduler spin-up).
    pub startup_secs: f64,
    /// Per-task dispatch overhead, seconds.
    pub per_task_secs: f64,
    /// Per-stage overhead, seconds (shuffle barrier, stage setup).
    pub per_phase_secs: f64,
    /// Extra I/O passes for sort-based shuffle (read + sort-write + read).
    pub shuffle_io_factor: f64,
    /// Per-task memory cap; a partition whose working set exceeds this
    /// crashes the job (`None` = no cap).
    pub task_mem_limit: Option<f64>,
    /// Working set as a fraction of partition bytes (deserialization
    /// blow-up; JVM object overhead makes this > 1).
    pub working_set_factor: f64,
    /// Spill threshold as a fraction of `task_mem_limit` (or of 1 GB if
    /// uncapped); beyond it the partition pays `spill_penalty`.
    pub spill_threshold: f64,
    /// I/O multiplier for spilled partitions.
    pub spill_penalty: f64,
    /// If set, spill cost grows with how far the working set exceeds the
    /// threshold (external multi-pass processing), not just by a constant
    /// factor — this is what turns the paper's hot join/PageRank
    /// partitions into ">12h" runs.
    pub superlinear_spill: bool,
}

impl StaticEngineSpec {
    /// Spark 2.2.0 (paper configuration: best-of partitions 100–10000,
    /// local input, no output replication).
    pub fn spark() -> Self {
        Self {
            name: "Spark",
            startup_secs: 6.0,
            per_task_secs: 0.01,
            per_phase_secs: 1.0,
            shuffle_io_factor: 2.0,
            task_mem_limit: Some(16.0 * GB as f64),
            working_set_factor: 2.0,
            spill_threshold: 0.5,
            spill_penalty: 2.0,
            superlinear_spill: true,
        }
    }

    /// Spark executing a sort-merge join: the join operator spills
    /// gracefully instead of materializing one key group in memory, so
    /// skew shows up as ">12h" runtimes (Table 3), not crashes.
    pub fn spark_join() -> Self {
        Self {
            name: "Spark (join)",
            task_mem_limit: None,
            spill_threshold: 1.6, // Of the 1 GB uncapped reference.
            ..Self::spark()
        }
    }

    /// Hadoop 2.7.4: much higher startup and per-task cost, spills
    /// instead of crashing.
    pub fn hadoop() -> Self {
        Self {
            name: "Hadoop",
            startup_secs: 33.0,
            per_task_secs: 0.15,
            per_phase_secs: 8.0,
            shuffle_io_factor: 3.0,
            task_mem_limit: None,
            working_set_factor: 1.0,
            spill_threshold: 0.02,
            spill_penalty: 2.5,
            superlinear_spill: false,
        }
    }

    /// GraphX: Spark's costs plus graph-specific shuffle amplification
    /// (vertex replication / triplet views).
    pub fn graphx() -> Self {
        Self {
            name: "GraphX",
            startup_secs: 8.0,
            per_task_secs: 0.01,
            per_phase_secs: 10.0,
            shuffle_io_factor: 3.5,
            // GraphX spills rather than crashing (paper: it "struggles to
            // finish executing on larger input sizes due to spilling and
            // shuffling overhead").
            task_mem_limit: None,
            working_set_factor: 2.0,
            spill_threshold: 0.4,
            spill_penalty: 2.5,
            superlinear_spill: true,
        }
    }
}

/// One map/reduce-style stage: fixed partitions processed by a pool of
/// workers.
#[derive(Debug, Clone)]
pub struct StaticPhase {
    /// Bytes per partition.
    pub partitions: Vec<f64>,
    /// Per-worker processing rate, bytes/s.
    pub cpu_rate: f64,
    /// Whether this stage's output is shuffled (pays the sort factor).
    pub shuffled: bool,
}

/// Outcome of a static-engine run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StaticOutcome {
    /// Completed in the given number of seconds.
    Finished(f64),
    /// A task exceeded the engine's task-memory cap (Fig. 12's "negative
    /// bars indicate a crash").
    OutOfMemory,
    /// Exceeded the kill threshold (paper kills runs at 1 h for ClickLog
    /// and reports ">12h" for joins/PageRank).
    TimedOut(f64),
}

impl StaticOutcome {
    /// The runtime if finished.
    pub fn secs(&self) -> Option<f64> {
        match self {
            StaticOutcome::Finished(s) => Some(*s),
            _ => None,
        }
    }
}

/// Simulates a static engine executing `phases` in sequence on `cluster`,
/// killing the run at `kill_after` seconds.
pub fn simulate_static(
    phases: &[StaticPhase],
    cluster: &ClusterSpec,
    spec: &StaticEngineSpec,
    kill_after: f64,
) -> StaticOutcome {
    let workers = (cluster.machines * cluster.slots_per_machine * 16).max(1);
    // Static engines run one task per core; the paper gives them "enough
    // tasks to utilize all available cores".
    let mut total = spec.startup_secs;
    for phase in phases {
        // OOM check: any partition whose working set exceeds the cap.
        if let Some(limit) = spec.task_mem_limit {
            let worst = phase.partitions.iter().cloned().fold(0.0, f64::max);
            if worst * spec.working_set_factor > limit {
                return StaticOutcome::OutOfMemory;
            }
        }
        // Per-partition processing time.
        let io_passes = if phase.shuffled {
            spec.shuffle_io_factor
        } else {
            1.0
        };
        let spill_ref = spec.task_mem_limit.unwrap_or(1.0 * GB as f64);
        // Disk sharing: with fewer tasks than cores, each running task
        // sees more of its machine's disk.
        let active = phase.partitions.iter().filter(|&&b| b > 0.0).count();
        let per_machine_tasks = (active as f64 / cluster.machines as f64)
            .ceil()
            .clamp(1.0, 16.0);
        let durations: Vec<f64> = phase
            .partitions
            .iter()
            .map(|&bytes| {
                let mut io = io_passes;
                let ws = bytes * spec.working_set_factor;
                let spill_at = spill_ref * spec.spill_threshold;
                if ws > spill_at {
                    io *= if spec.superlinear_spill {
                        spec.spill_penalty * (ws / spill_at).max(1.0)
                    } else {
                        spec.spill_penalty
                    };
                }
                // Each worker is one of 16 cores on a machine sharing the
                // machine's disk with the other running tasks.
                let disk_share = cluster.disk_bw / per_machine_tasks;
                let rate = (phase.cpu_rate / 16.0).min(disk_share / io.max(1.0));
                bytes / rate.max(1.0) * 1.0 + spec.per_task_secs
            })
            .collect();
        // LPT list scheduling onto the worker pool: the phase ends when
        // the last worker finishes — a hot partition serializes the tail.
        let mut sorted = durations.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let mut loads = vec![0.0f64; workers];
        for d in sorted {
            let (idx, _) = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .expect("non-empty");
            loads[idx] += d;
        }
        total += spec.per_phase_secs + loads.iter().cloned().fold(0.0, f64::max);
        if total > kill_after {
            return StaticOutcome::TimedOut(kill_after);
        }
    }
    StaticOutcome::Finished(total)
}

/// Splits `total` bytes into `n` partitions weighted by `weights`
/// (repeating the weight vector if `n` exceeds it, i.e. finer hash
/// partitions inherit the same relative skew).
pub fn weighted_partitions(total: f64, weights: &[f64], n: usize) -> Vec<f64> {
    assert!(n >= weights.len());
    let reps = n / weights.len();
    let mut out = Vec::with_capacity(n);
    for &w in weights {
        for _ in 0..reps {
            out.push(total * w / reps as f64);
        }
    }
    while out.len() < n {
        out.push(0.0);
    }
    out
}

/// Partitions `total` bytes over `n` buckets when the aggregation grain
/// is *indivisible* (a reduce key, a region's distinct-count, a vertex):
/// grain `g`'s whole mass lands in bucket `hash(g) % n`, so adding
/// partitions can never split a hot grain — the structural reason finer
/// partitioning does not rescue static engines from key skew (paper §6).
pub fn indivisible_partitions(total: f64, grain_masses: &[f64], n: usize) -> Vec<f64> {
    let mut buckets = vec![0.0f64; n];
    for (g, &mass) in grain_masses.iter().enumerate() {
        let b = (hurricane_common::SplitMix64::mix(g as u64) % n as u64) as usize;
        buckets[b] += mass * total;
    }
    buckets
}

/// The paper's tuning loop: "We try multiple values for the number of
/// partitions (ranging from 100 to 10000) and report the best runtime."
pub fn best_static_run(
    build_phases: impl Fn(usize) -> Vec<StaticPhase>,
    cluster: &ClusterSpec,
    spec: &StaticEngineSpec,
    kill_after: f64,
) -> StaticOutcome {
    let mut best: Option<StaticOutcome> = None;
    for n in [128usize, 512, 1024, 4096, 10240] {
        let outcome = simulate_static(&build_phases(n), cluster, spec, kill_after);
        best = Some(match (best, outcome) {
            (None, o) => o,
            (Some(StaticOutcome::Finished(a)), StaticOutcome::Finished(b)) => {
                StaticOutcome::Finished(a.min(b))
            }
            (Some(StaticOutcome::Finished(a)), _) => StaticOutcome::Finished(a),
            (Some(_), StaticOutcome::Finished(b)) => StaticOutcome::Finished(b),
            (Some(prev), _) => prev,
        });
    }
    best.expect("at least one partition count tried")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_common::units::{MB, MB as MBU};

    fn cluster() -> ClusterSpec {
        ClusterSpec::paper()
    }

    #[test]
    fn uniform_phases_finish() {
        let phase = StaticPhase {
            partitions: vec![100.0 * MBU as f64; 512],
            cpu_rate: 400.0 * MB as f64,
            shuffled: true,
        };
        let out = simulate_static(&[phase], &cluster(), &StaticEngineSpec::spark(), 3600.0);
        assert!(matches!(out, StaticOutcome::Finished(_)), "{out:?}");
    }

    #[test]
    fn hot_partition_dominates_runtime() {
        let mk = |hot: f64| StaticPhase {
            partitions: {
                let mut p = vec![10.0 * MBU as f64; 511];
                p.push(hot);
                p
            },
            cpu_rate: 400.0 * MB as f64,
            shuffled: false,
        };
        let spark = StaticEngineSpec::spark();
        let small = simulate_static(&[mk(10.0 * MBU as f64)], &cluster(), &spark, 1e9)
            .secs()
            .unwrap();
        let big = simulate_static(&[mk(5.0 * GB as f64)], &cluster(), &spark, 1e9)
            .secs()
            .unwrap();
        assert!(
            big > small * 5.0,
            "hot partition must serialize the phase: {small:.1}s vs {big:.1}s"
        );
    }

    #[test]
    fn spark_oom_on_giant_partition() {
        let phase = StaticPhase {
            partitions: vec![10.0 * GB as f64],
            cpu_rate: 400.0 * MB as f64,
            shuffled: true,
        };
        let out = simulate_static(&[phase], &cluster(), &StaticEngineSpec::spark(), 1e9);
        assert_eq!(out, StaticOutcome::OutOfMemory);
        // Hadoop has no cap: it spills and grinds on.
        let out = simulate_static(
            &[StaticPhase {
                partitions: vec![10.0 * GB as f64],
                cpu_rate: 400.0 * MB as f64,
                shuffled: true,
            }],
            &cluster(),
            &StaticEngineSpec::hadoop(),
            1e9,
        );
        assert!(matches!(out, StaticOutcome::Finished(_)));
    }

    #[test]
    fn kill_threshold_respected() {
        let phase = StaticPhase {
            partitions: vec![1000.0 * GB as f64],
            cpu_rate: 400.0 * MB as f64,
            shuffled: true,
        };
        let out = simulate_static(&[phase], &cluster(), &StaticEngineSpec::hadoop(), 3600.0);
        assert_eq!(out, StaticOutcome::TimedOut(3600.0));
    }

    #[test]
    fn weighted_partitions_conserve_total() {
        let w = [0.5, 0.3, 0.2];
        let parts = weighted_partitions(1000.0, &w, 300);
        assert_eq!(parts.len(), 300);
        let sum: f64 = parts.iter().sum();
        assert!((sum - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn best_static_run_picks_minimum() {
        let cluster = cluster();
        let build = |n: usize| {
            vec![StaticPhase {
                partitions: weighted_partitions(32.0 * GB as f64, &[1.0], n),
                cpu_rate: 400.0 * MB as f64,
                shuffled: true,
            }]
        };
        let best = best_static_run(build, &cluster, &StaticEngineSpec::spark(), 1e9);
        assert!(matches!(best, StaticOutcome::Finished(_)));
    }

    #[test]
    fn hadoop_slower_than_spark_on_small_input() {
        // Table 2: Hadoop 37.1s vs Spark 8.2s on 320 MB — dominated by
        // startup.
        let build = |rate: f64, n: usize| {
            vec![StaticPhase {
                partitions: weighted_partitions(320.0 * MBU as f64, &[1.0], n),
                cpu_rate: rate,
                shuffled: true,
            }]
        };
        let spark = simulate_static(
            &build(400e6, 512),
            &cluster(),
            &StaticEngineSpec::spark(),
            1e9,
        )
        .secs()
        .unwrap();
        let hadoop = simulate_static(
            &build(400e6, 512),
            &cluster(),
            &StaticEngineSpec::hadoop(),
            1e9,
        )
        .secs()
        .unwrap();
        assert!(
            hadoop > spark * 3.0,
            "spark {spark:.1}s hadoop {hadoop:.1}s"
        );
    }
}
