//! The Hurricane cluster simulator.
//!
//! A fluid-flow, event-driven model: between events every running task
//! processes input at a rate set by (a) its per-worker CPU rate times its
//! instance count and (b) its max–min fair share of the storage pool,
//! where the pool is the aggregate disk (or memory) bandwidth of the
//! cluster scaled by the batch-sampling utilization ρ(b, m) of paper
//! Eq. 1. Events — task completions, merge completions, the 2-second
//! clone ticks, crash injections, master outages — change the rate
//! vector; between events everything is linear, so the simulation jumps
//! from event to event exactly.
//!
//! Crucially, the *decision logic* is not re-modelled: clone decisions
//! call [`hurricane_core::heuristic::CloneDecision`] (Eq. 2) and storage
//! utilization calls [`hurricane_storage::batch::utilization`] (Eq. 1) —
//! the same code the threaded runtime executes.

use crate::alloc::{max_min_fair, FlowDemand};
use crate::spec::{ClusterSpec, DataPlacement, HurricaneOpts, SimApp};
use hurricane_common::metrics::TimeSeries;
use hurricane_common::units::GB;
use hurricane_core::heuristic::CloneDecision;
use hurricane_storage::batch::utilization;
use std::collections::BTreeMap;

/// Simulation output.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// End-to-end runtime, seconds (including startup).
    pub total_secs: f64,
    /// Wall-clock interval per phase label: (first start, last finish).
    pub phase_secs: BTreeMap<String, f64>,
    /// Clones created per task name.
    pub clones: BTreeMap<String, u32>,
    /// Total clones created.
    pub total_clones: u32,
    /// Highest number of simultaneously busy workers.
    pub peak_workers: usize,
    /// Highest instance count reached by any single task.
    pub peak_task_instances: usize,
    /// Bytes-processed events for throughput-over-time plots.
    pub timeline: TimeSeries,
    /// True if the simulation hit the safety time cap.
    pub timed_out: bool,
}

/// Hard cap on simulated time (the paper kills runs after 12 h; we allow
/// twice that before declaring a runaway).
pub const SIM_TIME_CAP: f64 = 24.0 * 3600.0;

#[derive(Debug, Clone, Copy, PartialEq)]
enum RunState {
    Waiting,
    Starting { at: f64 },
    Running,
    Merging { remaining: f64 },
    Done,
}

#[derive(Debug, Clone)]
struct TaskRun {
    state: RunState,
    remaining: f64,
    nodes: Vec<usize>,
    clones: u32,
    first_start: Option<f64>,
    finished_at: Option<f64>,
    last_rate: f64,
}

/// Simulates `app` on `cluster` under `opts`.
pub fn simulate(app: &SimApp, cluster: &ClusterSpec, opts: &HurricaneOpts) -> SimResult {
    let n = app.tasks.len();
    let mut runs: Vec<TaskRun> = app
        .tasks
        .iter()
        .map(|t| TaskRun {
            state: RunState::Waiting,
            remaining: t.input_bytes.max(0.0),
            nodes: Vec::new(),
            clones: 0,
            first_start: None,
            finished_at: None,
            last_rate: 0.0,
        })
        .collect();
    let mut node_alive = vec![true; cluster.machines];
    let mut node_busy = vec![0u32; cluster.machines];
    let mut timeline = TimeSeries::new();
    let mut peak_workers = 0usize;
    let max_instances = opts.max_instances.unwrap_or(cluster.machines).max(1);

    // Memory-vs-disk regime: small inputs run from page cache (Table 1's
    // first three points), large ones from disk.
    let per_machine = app.input_bytes / cluster.machines as f64;
    let disk_mode = per_machine > 4.0 * GB as f64;
    let gc_loss = match opts.gc {
        Some(gc) => {
            let spilling = per_machine * 2.5 > cluster.mem_per_machine as f64;
            if !gc.only_when_spilling || spilling {
                gc.throughput_loss
            } else {
                0.0
            }
        }
        None => 0.0,
    };

    let mut t = opts.startup_secs;
    let mut next_clone_tick = t + opts.clone_interval;
    let mut crashes = opts.crashes.clone();
    crashes.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite"));
    let mut master_crashes = opts.master_crashes.clone();
    master_crashes.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite"));
    let mut master_down_until = f64::NEG_INFINITY;
    let mut timed_out = false;
    let mut rejoins: Vec<(f64, usize)> = Vec::new();

    // Dependency counting: tasks become eligible when their pending-deps
    // counter reaches zero (O(edges) total instead of O(n·deps) per event).
    let mut pending_deps: Vec<usize> = app.tasks.iter().map(|t| t.deps.len()).collect();
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, task) in app.tasks.iter().enumerate() {
        for &d in &task.deps {
            successors[d].push(i);
        }
    }
    let mut eligible: Vec<usize> = (0..n).filter(|&i| pending_deps[i] == 0).collect();
    let mut done_count = 0usize;
    let mark_done = |i: usize,
                     pending_deps: &mut Vec<usize>,
                     eligible: &mut Vec<usize>,
                     done_count: &mut usize| {
        *done_count += 1;
        for &s in &successors[i] {
            pending_deps[s] -= 1;
            if pending_deps[s] == 0 {
                eligible.push(s);
            }
        }
    };

    let pick_node = |node_busy: &[u32], node_alive: &[bool]| -> Option<usize> {
        node_alive
            .iter()
            .enumerate()
            .filter(|&(i, &alive)| alive && (node_busy[i] as usize) < cluster.slots_per_machine)
            .min_by_key(|&(i, _)| (node_busy[i], i))
            .map(|(i, _)| i)
    };

    loop {
        // --- 1. Start tasks whose dependencies are complete. -------------
        let master_up = t >= master_down_until;
        if master_up {
            let e = 0;
            while e < eligible.len() {
                let i = eligible[e];
                if runs[i].state != RunState::Waiting {
                    eligible.swap_remove(e);
                    continue;
                }
                if let Some(node) = pick_node(&node_busy, &node_alive) {
                    node_busy[node] += 1;
                    runs[i].nodes.push(node);
                    runs[i].state = RunState::Starting {
                        at: t + opts.schedule_latency,
                    };
                    eligible.swap_remove(e);
                } else {
                    break; // No free slot: nothing else can start either.
                }
            }
        }
        // Promote started tasks whose schedule latency elapsed.
        for run in runs.iter_mut() {
            if let RunState::Starting { at } = run.state {
                if t >= at {
                    run.state = RunState::Running;
                    run.first_start.get_or_insert(t);
                }
            }
        }

        // --- 2. Compute rates. -------------------------------------------
        let alive_machines = node_alive.iter().filter(|&&a| a).count().max(1);
        let unit_bw = if disk_mode {
            cluster.disk_bw
        } else {
            cluster.mem_bw
        };
        let rho = utilization(opts.batch_factor, alive_machines as u32);
        let pool = alive_machines as f64 * unit_bw * rho * (1.0 - gc_loss);
        // Build flow demands. Spread tasks share the global pool. Local
        // tasks funnel through one home disk: reads always hit it, and a
        // single (uncloned) worker's writes do too; clones write their
        // partial outputs to their own nodes' disks (paper §5.2,
        // Configuration 3 discussion), so only reads stay on the home
        // node once a task is cloned.
        let local_pool = unit_bw * (1.0 - gc_loss);
        let mut spread_idx = Vec::new();
        let mut spread_flows = Vec::new();
        let mut local_idx = Vec::new();
        let mut local_flows = Vec::new();
        let mut io_div = vec![1.0f64; n];
        let mut rates = vec![0.0f64; n];
        for i in 0..n {
            if runs[i].state != RunState::Running {
                continue;
            }
            let task = &app.tasks[i];
            let k = runs[i].nodes.len() as f64;
            if k == 0.0 {
                continue;
            }
            let io_rw = (task.read_factor + task.write_factor).max(1e-9);
            match task.placement {
                DataPlacement::Spread => {
                    io_div[i] = io_rw;
                    let per_worker_io = (task.cpu_rate * io_rw).min(cluster.net_bw);
                    spread_idx.push(i);
                    spread_flows.push(FlowDemand {
                        cap: k * per_worker_io,
                    });
                }
                DataPlacement::Local => {
                    let home_factor = if k > 1.0 {
                        task.read_factor.max(1e-9)
                    } else {
                        io_rw
                    };
                    io_div[i] = home_factor;
                    local_idx.push(i);
                    local_flows.push(FlowDemand {
                        cap: k * task.cpu_rate * home_factor,
                    });
                }
            }
        }
        let granted = max_min_fair(&spread_flows, pool);
        for (slot, &i) in spread_idx.iter().enumerate() {
            rates[i] = granted[slot] / io_div[i];
        }
        let granted_local = max_min_fair(&local_flows, local_pool);
        for (slot, &i) in local_idx.iter().enumerate() {
            let task = &app.tasks[i];
            let k = runs[i].nodes.len() as f64;
            let mut rate = granted_local[slot] / io_div[i];
            // Cloned local tasks still pay for clone-side writes on the
            // clones' own disks.
            if k > 1.0 && task.write_factor > 0.0 {
                let write_cap = k * (unit_bw / task.write_factor).min(task.cpu_rate);
                rate = rate.min(write_cap);
            }
            rates[i] = rate.min(k * task.cpu_rate);
        }
        for i in 0..n {
            runs[i].last_rate = rates[i];
        }
        let busy_now: usize = runs
            .iter()
            .map(|r| match r.state {
                RunState::Running | RunState::Starting { .. } => r.nodes.len(),
                RunState::Merging { .. } => 1,
                _ => 0,
            })
            .sum();
        peak_workers = peak_workers.max(busy_now);

        // --- 3. Next event time. ------------------------------------------
        let mut dt = f64::INFINITY;
        for i in 0..n {
            match runs[i].state {
                RunState::Running if rates[i] > 0.0 => {
                    dt = dt.min(runs[i].remaining / rates[i]);
                }
                RunState::Starting { at } => dt = dt.min((at - t).max(0.0)),
                RunState::Merging { remaining } => {
                    let rate = app.tasks[i].merge.map(|m| m.rate).unwrap_or(f64::INFINITY);
                    dt = dt.min(remaining / rate);
                }
                _ => {}
            }
        }
        if opts.cloning {
            dt = dt.min(next_clone_tick - t);
        }
        if let Some(c) = crashes.first() {
            if c.at > t {
                dt = dt.min(c.at - t);
            } else {
                dt = 0.0;
            }
        }
        for &(at, _) in &rejoins {
            if at > t {
                dt = dt.min(at - t);
            }
        }
        if let Some(mc) = master_crashes.first() {
            if mc.at > t {
                dt = dt.min(mc.at - t);
            } else {
                dt = 0.0;
            }
        }
        if !master_up {
            dt = dt.min(master_down_until - t);
        }
        if dt == f64::INFINITY {
            // Nothing can progress: either done, or stuck waiting for a
            // resource that will never appear (all nodes dead).
            if done_count == n {
                break;
            }
            timed_out = true;
            t = SIM_TIME_CAP;
            break;
        }
        let dt = dt.max(1e-9);

        // --- 4. Advance time linearly. ------------------------------------
        let mut bytes_this_step = 0.0;
        for i in 0..n {
            if runs[i].state == RunState::Running {
                let processed = (rates[i] * dt).min(runs[i].remaining);
                runs[i].remaining -= processed;
                bytes_this_step += processed;
            }
            if let RunState::Merging { remaining } = runs[i].state {
                let rate = app.tasks[i].merge.map(|m| m.rate).unwrap_or(f64::MAX);
                runs[i].state = RunState::Merging {
                    remaining: (remaining - rate * dt).max(0.0),
                };
            }
        }
        if bytes_this_step > 0.0 {
            timeline.record(t + dt / 2.0, bytes_this_step);
        }
        t += dt;
        if t > SIM_TIME_CAP {
            timed_out = true;
            break;
        }

        // --- 5. Process events at the new time. ---------------------------
        // Task / merge completions.
        #[allow(clippy::needless_range_loop)] // walks `runs` and `app.tasks` in parallel
        for i in 0..n {
            if runs[i].state == RunState::Running && runs[i].remaining <= 1e-6 {
                let k = runs[i].nodes.len();
                for &node in &runs[i].nodes {
                    node_busy[node] = node_busy[node].saturating_sub(1);
                }
                runs[i].nodes.clear();
                let needs_merge = app.tasks[i].merge.is_some() && k > 1;
                if needs_merge {
                    let m = app.tasks[i].merge.expect("checked");
                    let merge_bytes = m.bytes_per_instance * k as f64;
                    // The merge occupies one worker.
                    if let Some(node) = pick_node(&node_busy, &node_alive) {
                        node_busy[node] += 1;
                        runs[i].nodes.push(node);
                    }
                    runs[i].state = RunState::Merging {
                        remaining: merge_bytes,
                    };
                } else {
                    runs[i].state = RunState::Done;
                    runs[i].finished_at = Some(t);
                    mark_done(i, &mut pending_deps, &mut eligible, &mut done_count);
                }
            } else if let RunState::Merging { remaining } = runs[i].state {
                if remaining <= 1e-6 {
                    for &node in &runs[i].nodes {
                        node_busy[node] = node_busy[node].saturating_sub(1);
                    }
                    runs[i].nodes.clear();
                    runs[i].state = RunState::Done;
                    runs[i].finished_at = Some(t);
                    mark_done(i, &mut pending_deps, &mut eligible, &mut done_count);
                }
            }
        }

        // Master crash landing.
        if let Some(mc) = master_crashes.first().copied() {
            if t >= mc.at {
                master_down_until = mc.at + mc.recovery_secs;
                master_crashes.remove(0);
            }
        }

        // Node crashes landing.
        while let Some(c) = crashes.first().copied() {
            if t < c.at {
                break;
            }
            crashes.remove(0);
            if c.node < node_alive.len() {
                node_alive[c.node] = false;
                node_busy[c.node] = 0;
                // Every task with an instance on the node restarts from
                // scratch (paper §4.4: discard outputs, rewind inputs,
                // terminate all running clones, reschedule).
                #[allow(clippy::needless_range_loop)] // walks `runs` and `app.tasks` in parallel
                for i in 0..n {
                    let on_node = runs[i].nodes.contains(&c.node);
                    if !on_node {
                        continue;
                    }
                    match runs[i].state {
                        RunState::Running | RunState::Starting { .. } => {
                            for &node in &runs[i].nodes {
                                if node != c.node {
                                    node_busy[node] = node_busy[node].saturating_sub(1);
                                }
                            }
                            runs[i].nodes.clear();
                            runs[i].remaining = app.tasks[i].input_bytes;
                            runs[i].state = RunState::Waiting;
                            eligible.push(i); // Deps still satisfied.
                        }
                        RunState::Merging { .. } => {
                            runs[i].nodes.clear();
                            let m = app.tasks[i].merge.expect("merging implies merge");
                            let k = (runs[i].clones + 1) as f64;
                            runs[i].state = RunState::Merging {
                                remaining: m.bytes_per_instance * k,
                            };
                            if let Some(node) = pick_node(&node_busy, &node_alive) {
                                node_busy[node] += 1;
                                runs[i].nodes.push(node);
                            }
                        }
                        _ => {}
                    }
                }
            }
            if let Some(back) = c.back_at {
                if c.node < node_alive.len() {
                    rejoins.push((back, c.node));
                    rejoins.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                }
            }
        }
        // Rejoins (paper §3.4: a compute node is added by just starting a
        // task manager on it).
        while let Some(&(at, node)) = rejoins.first() {
            if t < at {
                break;
            }
            node_alive[node] = true;
            rejoins.remove(0);
        }

        // Clone tick (paper: decisions at clone-interval granularity; the
        // instance count can double each tick because every worker of an
        // overloaded task files a request).
        if opts.cloning && t + 1e-9 >= next_clone_tick {
            next_clone_tick += opts.clone_interval;
            if master_up {
                for i in 0..n {
                    if runs[i].state != RunState::Running || !app.tasks[i].clonable {
                        continue;
                    }
                    let task = &app.tasks[i];
                    let k0 = runs[i].nodes.len();
                    if k0 == 0 {
                        continue;
                    }
                    // Overload (paper §4.2): CPU saturation — the task
                    // achieves its full CPU demand, so shared storage is
                    // not the limiter — or, for locally-placed data, home-
                    // node endpoint saturation (one NIC/disk serves every
                    // reader). A spread task bound by the shared pool does
                    // not clone (paper §3.2: peak storage bandwidth is
                    // already the best case).
                    let per_worker = rates[i] / k0 as f64;
                    let cpu_saturated = per_worker >= 0.95 * task.cpu_rate;
                    let endpoint_saturated = task.placement == DataPlacement::Local;
                    if !cpu_saturated && !endpoint_saturated {
                        continue;
                    }
                    // T_IO: a merge-less task has "minimal state and does
                    // not require a merge" (paper §3.2) — the master
                    // always grants its clones. Merge-bearing tasks pay
                    // clone-state reads and merging at the *aggregate*
                    // (spread) storage bandwidth.
                    let io_bw = if task.merge.is_some() {
                        pool.max(1.0)
                    } else {
                        f64::INFINITY
                    };
                    let mut added = 0usize;
                    while added < k0 {
                        let k = runs[i].nodes.len();
                        if k >= max_instances {
                            break;
                        }
                        let decision = CloneDecision {
                            instances: k as u32,
                            remaining_bytes: runs[i].remaining as u64,
                            drain_rate: rates[i].max(1.0),
                            io_bandwidth: io_bw,
                        };
                        if !decision.should_clone() {
                            break;
                        }
                        let Some(node) = pick_node(&node_busy, &node_alive) else {
                            break;
                        };
                        node_busy[node] += 1;
                        runs[i].nodes.push(node);
                        runs[i].clones += 1;
                        added += 1;
                    }
                }
            }
        }

        if done_count == n {
            break;
        }
    }

    // Assemble the result.
    let mut phase_bounds: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    let mut clones = BTreeMap::new();
    let mut total_clones = 0;
    let mut peak_task_instances = 0usize;
    for (i, run) in runs.iter().enumerate() {
        let task = &app.tasks[i];
        if run.clones > 0 {
            clones.insert(task.name.clone(), run.clones);
            total_clones += run.clones;
        }
        peak_task_instances = peak_task_instances.max((run.clones + 1) as usize);
        if let (Some(s), Some(f)) = (run.first_start, run.finished_at) {
            let e = phase_bounds
                .entry(task.phase.clone())
                .or_insert((f64::INFINITY, 0.0));
            e.0 = e.0.min(s);
            e.1 = e.1.max(f);
        }
    }
    let phase_secs = phase_bounds
        .into_iter()
        .map(|(k, (s, f))| (k, (f - s).max(0.0)))
        .collect();
    SimResult {
        total_secs: t,
        phase_secs,
        clones,
        total_clones,
        peak_workers,
        peak_task_instances,
        timeline,
        timed_out,
    }
}
