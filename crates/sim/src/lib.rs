//! Deterministic cluster simulator for the paper-scale evaluation.
//!
//! The real Hurricane runtime in `hurricane-core` executes on threads at
//! laptop scale; the paper's evaluation, however, spans 32 machines and
//! up to 3.2 TB of input. This crate reproduces that scale by simulating
//! time instead of burning it:
//!
//! * [`spec`] — the testbed model ([`spec::ClusterSpec::paper`] encodes
//!   the paper's 32×16-core, 330 MB/s-RAID, 40 GigE cluster), application
//!   DAGs with byte volumes and rates, and fault/GC injection plans.
//! * [`alloc`] — max–min fair storage-bandwidth allocation.
//! * [`engine`] — the fluid event-driven Hurricane simulator. It executes
//!   the *same* policy code as the runtime: Eq. 2 clone decisions from
//!   `hurricane_core::heuristic` and Eq. 1 utilization from
//!   `hurricane_storage::batch`.
//! * [`apps`] — calibrated cost models of ClickLog, HashJoin, and
//!   PageRank.
//! * [`baselines`] — structural models of Spark, Hadoop, and GraphX
//!   (static partitions, sort-based shuffle, task-memory OOM, spill).
//!
//! Every experiment in EXPERIMENTS.md drives these pieces through
//! `hurricane-bench`.

pub mod alloc;
pub mod apps;
pub mod baselines;
pub mod engine;
pub mod spec;

pub use engine::{simulate, SimResult};
pub use spec::{ClusterSpec, HurricaneOpts, SimApp, SimTask};
