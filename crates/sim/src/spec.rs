//! Simulation specifications: the cluster, the application, the knobs.
//!
//! The simulator reproduces the paper's testbed (§5): 32 machines with
//! 16 cores, 128 GB RAM, RAID-0 at ~330 MB/s, 40 GigE full bisection.
//! [`ClusterSpec::paper`] encodes exactly those numbers. Applications are
//! DAGs of [`SimTask`]s with byte volumes and processing rates; the engine
//! executes the same cloning heuristic and batch-sampling utilization
//! model as the real runtime, over simulated time.

use hurricane_common::units::{GB, MB};

/// Where a task's data lives (the Figure 7/8 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlacement {
    /// Chunks spread uniformly across all storage nodes (Hurricane's
    /// default): aggregate bandwidth scales with the cluster.
    Spread,
    /// All of a task's data on a single node: that node's disk is the
    /// ceiling no matter how many workers read it.
    Local,
}

/// The simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of machines (compute and storage are co-located, as in the
    /// paper's evaluation).
    pub machines: usize,
    /// Worker slots per machine. The paper's evaluation effectively runs
    /// one (multi-threaded) worker per machine per task; 1 reproduces the
    /// published worker counts (e.g. "26 clones in the 1st region").
    pub slots_per_machine: usize,
    /// Per-machine disk bandwidth, bytes/s (paper: ~330 MB/s RAID-0).
    pub disk_bw: f64,
    /// Per-machine NIC bandwidth, bytes/s (40 GigE = 5 GB/s); an endpoint
    /// cap on any single worker's remote I/O.
    pub net_bw: f64,
    /// Per-machine memory, bytes (128 GB). Inputs that fit in aggregate
    /// page cache are served at memory speed, reproducing Table 1's
    /// memory-vs-disk regimes.
    pub mem_per_machine: u64,
    /// Effective per-machine memory bandwidth for cached data, bytes/s.
    pub mem_bw: f64,
}

impl ClusterSpec {
    /// The paper's 32-machine testbed.
    pub fn paper() -> Self {
        Self {
            machines: 32,
            slots_per_machine: 1,
            disk_bw: 330.0 * MB as f64,
            net_bw: 5.0 * GB as f64,
            mem_per_machine: 128 * GB,
            mem_bw: 8.0 * GB as f64,
        }
    }

    /// The paper's testbed scaled to `m` machines (Figures 7/8 use 8).
    pub fn paper_scaled(m: usize) -> Self {
        Self {
            machines: m,
            ..Self::paper()
        }
    }

    /// Total worker slots.
    pub fn total_slots(&self) -> usize {
        self.machines * self.slots_per_machine
    }
}

/// The merge cost model for a clonable task that declares a merge.
#[derive(Debug, Clone, Copy)]
pub struct MergeModel {
    /// Bytes of partial output produced per instance (this is what the
    /// merge must read per clone).
    pub bytes_per_instance: f64,
    /// Merge processing rate, bytes/s (single worker).
    pub rate: f64,
}

/// One task in a simulated application.
#[derive(Debug, Clone)]
pub struct SimTask {
    /// Display name (also used for per-phase grouping, e.g. "phase1").
    pub name: String,
    /// Phase label for reporting (Figure 6's per-phase breakdown).
    pub phase: String,
    /// Indices of tasks that must complete (including their merges)
    /// before this task starts.
    pub deps: Vec<usize>,
    /// Input volume in bytes.
    pub input_bytes: f64,
    /// Per-worker processing rate when CPU-bound, bytes of input per
    /// second (the paper's workers are multi-threaded; this is the
    /// whole-worker rate).
    pub cpu_rate: f64,
    /// Bytes read from storage per input byte (usually 1.0).
    pub read_factor: f64,
    /// Bytes written to storage per input byte.
    pub write_factor: f64,
    /// Whether the runtime may clone this task.
    pub clonable: bool,
    /// Merge cost when the task ends with more than one instance.
    pub merge: Option<MergeModel>,
    /// Data placement for this task's input.
    pub placement: DataPlacement,
}

impl SimTask {
    /// Convenience constructor with spread placement and no merge.
    pub fn new(name: impl Into<String>, phase: impl Into<String>, input_bytes: f64) -> Self {
        Self {
            name: name.into(),
            phase: phase.into(),
            deps: Vec::new(),
            input_bytes,
            cpu_rate: 400.0 * MB as f64,
            read_factor: 1.0,
            write_factor: 1.0,
            clonable: true,
            merge: None,
            placement: DataPlacement::Spread,
        }
    }
}

/// A simulated application: a DAG of tasks.
#[derive(Debug, Clone, Default)]
pub struct SimApp {
    /// The tasks, referenced by index in `deps`.
    pub tasks: Vec<SimTask>,
    /// Total input bytes (for throughput normalization / memory check).
    pub input_bytes: f64,
}

impl SimApp {
    /// Adds a task, returning its index.
    pub fn push(&mut self, task: SimTask) -> usize {
        self.tasks.push(task);
        self.tasks.len() - 1
    }
}

/// A compute-node crash injected at a point in simulated time (Fig. 11).
#[derive(Debug, Clone, Copy)]
pub struct CrashEvent {
    /// When the node fails, seconds.
    pub at: f64,
    /// Which machine fails.
    pub node: usize,
    /// When the node comes back as an idle node (never, if `None`).
    pub back_at: Option<f64>,
}

/// An application-master crash (recovery pauses scheduling briefly).
#[derive(Debug, Clone, Copy)]
pub struct MasterCrashEvent {
    /// When the master fails, seconds.
    pub at: f64,
    /// Recovery duration (paper: "less than 1 second").
    pub recovery_secs: f64,
}

/// Desynchronized storage-node GC pauses (paper §5.1: the 100 GB/machine
/// runs lose ~half their overhead to "desynchronized garbage collection
/// pauses at storage nodes, which prevents the system from achieving peak
/// I/O throughput").
#[derive(Debug, Clone, Copy)]
pub struct GcModel {
    /// Fraction of peak storage throughput lost to pauses (0..1).
    pub throughput_loss: f64,
    /// Apply only when the working set exceeds aggregate memory.
    pub only_when_spilling: bool,
}

/// Hurricane-engine knobs (the design-evaluation axes of §5.2).
#[derive(Debug, Clone)]
pub struct HurricaneOpts {
    /// Enable task cloning (off = the paper's HurricaneNC).
    pub cloning: bool,
    /// Batch-sampling factor `b` (Figure 10 sweeps 1..32).
    pub batch_factor: u32,
    /// Seconds between clone decisions (paper: 2 s).
    pub clone_interval: f64,
    /// Fixed application startup cost, seconds (JVM spin-up, task-manager
    /// setup; calibrated against Table 1's smallest input).
    pub startup_secs: f64,
    /// Per-scheduled-task latency, seconds.
    pub schedule_latency: f64,
    /// Maximum instances per task (`None` = number of machines).
    pub max_instances: Option<usize>,
    /// Crash injections.
    pub crashes: Vec<CrashEvent>,
    /// Master crash injections.
    pub master_crashes: Vec<MasterCrashEvent>,
    /// GC pause model.
    pub gc: Option<GcModel>,
}

impl Default for HurricaneOpts {
    fn default() -> Self {
        Self {
            cloning: true,
            batch_factor: 10,
            clone_interval: 2.0,
            startup_secs: 4.0,
            schedule_latency: 0.05,
            max_instances: None,
            crashes: Vec::new(),
            master_crashes: Vec::new(),
            gc: None,
        }
    }
}

impl HurricaneOpts {
    /// The HurricaneNC configuration (no cloning).
    pub fn no_cloning() -> Self {
        Self {
            cloning: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_testbed() {
        let c = ClusterSpec::paper();
        assert_eq!(c.machines, 32);
        assert_eq!(c.total_slots(), 32);
        assert!((c.disk_bw - 330e6).abs() < 1e6);
        assert_eq!(c.mem_per_machine, 128 * GB);
    }

    #[test]
    fn app_push_returns_indices() {
        let mut app = SimApp::default();
        let a = app.push(SimTask::new("a", "phase1", 100.0));
        let mut b_task = SimTask::new("b", "phase2", 50.0);
        b_task.deps.push(a);
        let b = app.push(b_task);
        assert_eq!((a, b), (0, 1));
        assert_eq!(app.tasks[b].deps, vec![0]);
    }

    #[test]
    fn default_opts_match_paper_knobs() {
        let o = HurricaneOpts::default();
        assert!(o.cloning);
        assert_eq!(o.batch_factor, 10);
        assert!((o.clone_interval - 2.0).abs() < 1e-12);
        assert!(!HurricaneOpts::no_cloning().cloning);
    }
}
