//! Engine-level tests of the cluster simulator: the cloning ramp, merge
//! accounting, placement effects, and dependency ordering.
#![allow(clippy::field_reassign_with_default)] // spec-building style

use hurricane_common::units::GB;
use hurricane_sim::apps::{clicklog_app, clicklog_app_with};
use hurricane_sim::engine::simulate;
use hurricane_sim::spec::{
    ClusterSpec, DataPlacement, GcModel, HurricaneOpts, MergeModel, SimApp, SimTask,
};
use hurricane_workloads::RegionWeights;

fn cluster() -> ClusterSpec {
    ClusterSpec::paper()
}

#[test]
fn single_task_ramps_to_full_cluster() {
    // A large CPU-bound merge-less task must clone until every machine
    // runs an instance (paper §3.2: "until it either runs on every
    // compute node...").
    let mut app = SimApp::default();
    app.input_bytes = 64.0 * GB as f64;
    app.push(SimTask::new("big", "p", 64.0 * GB as f64));
    let r = simulate(&app, &cluster(), &HurricaneOpts::default());
    assert_eq!(r.peak_task_instances, 32, "should reach one per machine");
    assert_eq!(r.total_clones, 31);
}

#[test]
fn clone_ramp_doubles_per_tick() {
    // With a 2-second interval, instances roughly double per tick, so a
    // shorter interval must finish the ramp (and the task) sooner.
    let mut app = SimApp::default();
    app.input_bytes = 64.0 * GB as f64;
    app.push(SimTask::new("big", "p", 64.0 * GB as f64));
    let slow = simulate(
        &app,
        &cluster(),
        &HurricaneOpts {
            clone_interval: 4.0,
            ..HurricaneOpts::default()
        },
    );
    let fast = simulate(
        &app,
        &cluster(),
        &HurricaneOpts {
            clone_interval: 0.5,
            ..HurricaneOpts::default()
        },
    );
    assert!(
        fast.total_secs < slow.total_secs,
        "fast ramp {:.1}s vs slow ramp {:.1}s",
        fast.total_secs,
        slow.total_secs
    );
}

#[test]
fn merge_cost_is_paid_only_when_cloned() {
    let mk = |clonable: bool, merge_bytes: f64| {
        let mut app = SimApp::default();
        app.input_bytes = 32.0 * GB as f64;
        let mut t = SimTask::new("t", "p", 32.0 * GB as f64);
        t.clonable = clonable;
        t.merge = Some(MergeModel {
            bytes_per_instance: merge_bytes,
            rate: 1e9,
        });
        app.push(t);
        app
    };
    let merge_bytes = 0.25 * GB as f64;
    // Uncloned: no merge runs (a single partial is the output).
    let solo = simulate(
        &mk(false, merge_bytes),
        &cluster(),
        &HurricaneOpts::default(),
    );
    // Cloned: the merge adds a visible per-instance tail...
    let cloned = simulate(
        &mk(true, merge_bytes),
        &cluster(),
        &HurricaneOpts::default(),
    );
    assert!(cloned.total_clones > 0);
    // ...but parallelism still wins overall.
    assert!(cloned.total_secs < solo.total_secs);
    // And the tail really is the merge: shrinking it shortens the run.
    let cheap = simulate(
        &mk(true, merge_bytes / 100.0),
        &cluster(),
        &HurricaneOpts::default(),
    );
    assert!(cheap.total_secs < cloned.total_secs);
}

#[test]
fn dependencies_serialize_phases() {
    let mut app = SimApp::default();
    app.input_bytes = 8.0 * GB as f64;
    let a = app.push(SimTask::new("a", "p1", 4.0 * GB as f64));
    let mut b = SimTask::new("b", "p2", 4.0 * GB as f64);
    b.deps = vec![a];
    app.push(b);
    let r = simulate(&app, &cluster(), &HurricaneOpts::default());
    // Serial execution: total ≥ sum of the two tasks run alone.
    let solo_total: f64 = 2.0 * {
        let mut solo = SimApp::default();
        solo.input_bytes = 4.0 * GB as f64;
        solo.push(SimTask::new("x", "p", 4.0 * GB as f64));
        simulate(&solo, &cluster(), &HurricaneOpts::default()).total_secs
            - HurricaneOpts::default().startup_secs
    };
    assert!(
        r.total_secs + 1e-9 >= solo_total * 0.9,
        "dependent tasks must not overlap: {:.1}s vs {:.1}s serial",
        r.total_secs,
        solo_total
    );
    assert!(r.phase_secs.contains_key("p1") && r.phase_secs.contains_key("p2"));
}

#[test]
fn spread_beats_local_under_skew() {
    let w = RegionWeights::paper_ladder(32, 1.0);
    let c8 = ClusterSpec::paper_scaled(8);
    let spread = simulate(
        &clicklog_app_with(80.0 * GB as f64, &w, DataPlacement::Spread, true),
        &c8,
        &HurricaneOpts::default(),
    );
    let local = simulate(
        &clicklog_app_with(80.0 * GB as f64, &w, DataPlacement::Local, true),
        &c8,
        &HurricaneOpts::default(),
    );
    assert!(
        spread.total_secs < local.total_secs * 0.6,
        "spreading must dominate: spread {:.0}s local {:.0}s",
        spread.total_secs,
        local.total_secs
    );
}

#[test]
fn gc_model_slows_spilling_runs_only() {
    let w = RegionWeights::uniform(32);
    let gc = HurricaneOpts {
        gc: Some(GcModel {
            throughput_loss: 0.4,
            only_when_spilling: true,
        }),
        ..HurricaneOpts::default()
    };
    // 32 GB fits memory: GC model must not fire.
    let small_plain = simulate(
        &clicklog_app(32.0 * GB as f64, &w),
        &cluster(),
        &HurricaneOpts::default(),
    );
    let small_gc = simulate(&clicklog_app(32.0 * GB as f64, &w), &cluster(), &gc);
    assert!((small_plain.total_secs - small_gc.total_secs).abs() < 1e-6);
    // 3.2 TB spills: GC must slow it.
    let big_plain = simulate(
        &clicklog_app(3200.0 * GB as f64, &w),
        &cluster(),
        &HurricaneOpts::default(),
    );
    let big_gc = simulate(&clicklog_app(3200.0 * GB as f64, &w), &cluster(), &gc);
    assert!(big_gc.total_secs > big_plain.total_secs * 1.2);
}

#[test]
fn master_outage_delays_scheduling_only() {
    use hurricane_sim::spec::MasterCrashEvent;
    let w = RegionWeights::uniform(32);
    let app = clicklog_app(64.0 * GB as f64, &w);
    let plain = simulate(&app, &cluster(), &HurricaneOpts::default());
    // A master outage while tasks are running barely matters (paper
    // §4.4: compute nodes proceed independently).
    let opts = HurricaneOpts {
        master_crashes: vec![MasterCrashEvent {
            at: 8.0,
            recovery_secs: 1.0,
        }],
        ..HurricaneOpts::default()
    };
    let crashed = simulate(&app, &cluster(), &opts);
    assert!(crashed.total_secs <= plain.total_secs + 3.0);
}

#[test]
fn dead_cluster_times_out_instead_of_hanging() {
    use hurricane_sim::spec::CrashEvent;
    let mut app = SimApp::default();
    app.input_bytes = 320.0 * GB as f64;
    app.push(SimTask::new("t", "p", 320.0 * GB as f64));
    let crashes = (0..32)
        .map(|n| CrashEvent {
            at: 10.0,
            node: n,
            back_at: None,
        })
        .collect();
    let r = simulate(
        &app,
        &cluster(),
        &HurricaneOpts {
            crashes,
            ..HurricaneOpts::default()
        },
    );
    assert!(r.timed_out, "an unschedulable app must report a timeout");
}

#[test]
fn batch_factor_one_loses_a_third() {
    // The Figure 10 headline as an engine property: disk-bound phase 1
    // at b=1 runs ≈1/ρ(1,32) ≈ 1.58x slower than b=10.
    let w = RegionWeights::uniform(32);
    let app = clicklog_app(320.0 * GB as f64, &w);
    let b1 = simulate(
        &app,
        &cluster(),
        &HurricaneOpts {
            batch_factor: 1,
            ..HurricaneOpts::default()
        },
    );
    let b10 = simulate(&app, &cluster(), &HurricaneOpts::default());
    let ratio = b1.total_secs / b10.total_secs;
    assert!(
        (1.3..1.7).contains(&ratio),
        "expected ~1.5x penalty at b=1, got {ratio:.2}x"
    );
}
