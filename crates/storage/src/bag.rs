//! `BagClient` — the per-worker handle to one bag.
//!
//! A bag client combines the cluster connection with two private
//! pseudorandom cyclic placements (one for inserts, one for removes,
//! paper §3.3). Multiple clients on the same bag interleave freely: the
//! per-node read pointers give exactly-once chunk delivery, which is the
//! property task clones rely on to partition work dynamically (late
//! binding of chunks to workers, paper §2.2).

use crate::cluster::StorageCluster;
use crate::error::StorageError;
use crate::node::{BagSample, NodeRemove, NodeRemoveBatch};
use crate::placement::CyclicPlacement;
use crate::rpc::RpcPort;
use hurricane_common::{BagId, DetRng};
use hurricane_format::Chunk;
use std::sync::Arc;

/// How a client reaches storage: direct in-process method calls on the
/// shared cluster object, or correlated messages over the RPC boundary
/// ([`crate::rpc`]). Both expose the same cluster-level data-plane
/// semantics; the port is chosen at client construction and invisible to
/// everything above [`BagClient`].
pub(crate) enum StoragePort {
    /// In-process method calls (the original path; tests and benches).
    Direct(Arc<StorageCluster>),
    /// Correlated request/response messages to per-node server loops.
    Rpc(RpcPort),
}

impl StoragePort {
    pub(crate) fn cluster(&self) -> &Arc<StorageCluster> {
        match self {
            StoragePort::Direct(c) => c,
            StoragePort::Rpc(p) => p.cluster(),
        }
    }

    /// Number of storage nodes addressable through this port. A direct
    /// port tracks cluster growth; an RPC port tracks its connection set,
    /// which grows at [`StoragePort::refresh`] when a membership is
    /// attached.
    pub(crate) fn num_nodes(&self) -> usize {
        match self {
            StoragePort::Direct(c) => c.num_nodes(),
            StoragePort::Rpc(p) => p.num_nodes(),
        }
    }

    /// Syncs an RPC port's connections with its membership view (no-op
    /// for direct ports, which read the live cluster already).
    pub(crate) fn refresh(&mut self) {
        if let StoragePort::Rpc(p) = self {
            p.refresh_membership();
        }
    }

    pub(crate) fn insert_batch(
        &mut self,
        primary_idx: usize,
        bag: BagId,
        chunks: &[Chunk],
    ) -> Result<(), StorageError> {
        match self {
            StoragePort::Direct(c) => c.insert_batch(primary_idx, bag, chunks),
            StoragePort::Rpc(p) => p.insert_batch(primary_idx, bag, chunks),
        }
    }

    pub(crate) fn remove(
        &mut self,
        primary_idx: usize,
        bag: BagId,
    ) -> Result<NodeRemove, StorageError> {
        match self {
            StoragePort::Direct(c) => c.remove(primary_idx, bag),
            StoragePort::Rpc(p) => p.remove(primary_idx, bag),
        }
    }

    pub(crate) fn remove_batch(
        &mut self,
        primary_idx: usize,
        bag: BagId,
        max_n: usize,
    ) -> Result<NodeRemoveBatch, StorageError> {
        match self {
            StoragePort::Direct(c) => c.remove_batch(primary_idx, bag, max_n),
            StoragePort::Rpc(p) => p.remove_batch(primary_idx, bag, max_n),
        }
    }

    pub(crate) fn sample_bag(&mut self, bag: BagId) -> Result<BagSample, StorageError> {
        match self {
            StoragePort::Direct(c) => c.sample_bag(bag),
            StoragePort::Rpc(p) => p.sample_bag(bag),
        }
    }
}

/// Outcome of a bag-level remove attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoveResult {
    /// A chunk was removed; the caller now owns its processing.
    Chunk(Chunk),
    /// No chunk is available right now, but the bag is not sealed — more
    /// data may still be inserted. Callers typically back off and retry.
    Pending,
    /// The bag is sealed and fully drained: the worker can terminate
    /// (paper §2.2: "The remove operation fails when a bag is empty,
    /// allowing a worker to terminate").
    Drained,
}

/// Outcome of a bag-level batched remove attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchRemoveResult {
    /// At least one chunk was removed (up to the requested maximum).
    Chunks(Vec<Chunk>),
    /// Nothing available right now; the bag is not sealed.
    Pending,
    /// The bag is sealed and fully drained.
    Drained,
}

/// A client handle for inserting into / removing from one bag.
pub struct BagClient {
    pub(crate) port: StoragePort,
    pub(crate) bag: BagId,
    insert_cursor: CyclicPlacement,
    pub(crate) remove_cursor: CyclicPlacement,
    rng: DetRng,
    /// Per-target scratch buckets reused across `insert_batch` calls so a
    /// steady stream of batches allocates nothing.
    insert_buckets: Vec<Vec<Chunk>>,
    /// When set, every insert and remove addresses exactly this node —
    /// no cyclic spreading, no re-routing. See
    /// [`BagClient::with_pinned_node`].
    pinned: Option<usize>,
}

impl BagClient {
    /// Creates a client for `bag`. Each client should use a distinct
    /// `seed` so that placement cycles decorrelate across workers.
    pub fn new(cluster: Arc<StorageCluster>, bag: BagId, seed: u64) -> Self {
        Self::with_port(StoragePort::Direct(cluster), bag, seed)
    }

    pub(crate) fn with_port(port: StoragePort, bag: BagId, seed: u64) -> Self {
        let mut rng = DetRng::new(seed);
        let m = port.num_nodes();
        Self {
            insert_cursor: CyclicPlacement::new(m, &mut rng),
            remove_cursor: CyclicPlacement::new(m, &mut rng),
            port,
            bag,
            rng,
            insert_buckets: Vec::new(),
            pinned: None,
        }
    }

    /// Pins this client to storage node `idx`: every insert lands there
    /// (errors propagate instead of re-routing — the caller must learn
    /// the write failed) and removes probe only that node.
    ///
    /// Bag chunks are normally *unordered* — cyclic placement spreads
    /// them across nodes and readers interleave node streams. A pinned
    /// client trades that balance for the one ordering guarantee storage
    /// does make: per-node FIFO. Spill runs in the merge plane
    /// (`core/merges.rs`) depend on it — a sorted run written through a
    /// pinned client reads back in exactly its written (sorted) order.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the current membership.
    #[must_use]
    pub fn with_pinned_node(mut self, idx: usize) -> Self {
        assert!(
            idx < self.port.num_nodes(),
            "pinned node {idx} out of range"
        );
        self.pinned = Some(idx);
        self
    }

    /// The bag this client addresses.
    pub fn bag_id(&self) -> BagId {
        self.bag
    }

    /// The cluster this client talks to.
    pub fn cluster(&self) -> &Arc<StorageCluster> {
        self.port.cluster()
    }

    /// Picks up storage nodes added since this client was created
    /// (paper §3.4: the master informs compute nodes about new nodes).
    /// Over an RPC port this first syncs the connection set with the
    /// attached membership view, then grows the placement cycles to
    /// cover the new nodes.
    pub fn refresh_membership(&mut self) {
        self.port.refresh();
        let m = self.port.num_nodes();
        if m > self.insert_cursor.len() {
            self.insert_cursor.grow(m, &mut self.rng);
        }
        if m > self.remove_cursor.len() {
            self.remove_cursor.grow(m, &mut self.rng);
        }
    }

    /// Inserts `chunk`, targeting the next storage node in this client's
    /// pseudorandom cyclic order. If that node refuses (down / draining),
    /// the next nodes in the cycle are tried — data placement has no
    /// locality to preserve, so any node is as good as any other.
    pub fn insert(&mut self, chunk: Chunk) -> Result<(), StorageError> {
        if let Some(p) = self.pinned {
            return self
                .port
                .insert_batch(p, self.bag, std::slice::from_ref(&chunk));
        }
        let m = self.insert_cursor.len();
        let mut last_err = None;
        for _ in 0..m {
            let target = self.insert_cursor.next_node();
            match self
                .port
                .insert_batch(target, self.bag, std::slice::from_ref(&chunk))
            {
                Ok(()) => return Ok(()),
                Err(e) if Self::reroutes(&e) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(StorageError::AllReplicasDown(self.bag)))
    }

    /// Whether an insert error means "try the next node in the cycle":
    /// the target is down, draining, disk-sick
    /// ([`StorageError::routes_around`]), wholly unreachable, or its
    /// transport dropped. Anything else (sealed, collected, codec) is a
    /// caller error and propagates.
    fn reroutes(e: &StorageError) -> bool {
        e.routes_around()
            || matches!(
                e,
                StorageError::AllReplicasDown(_) | StorageError::Disconnected(_)
            )
    }

    /// Inserts every chunk of `chunks` with one cluster call per target
    /// node instead of one per chunk.
    ///
    /// The placement cursor still advances chunk-by-chunk (a cheap local
    /// operation), so per-cycle balance is identical to repeated
    /// [`BagClient::insert`]; what is amortized is the expensive part —
    /// storage-node lock acquisitions and replication fan-out, which
    /// happen at most once per node per batch. Prefer
    /// [`BagClient::insert_batch_vec`] when the chunks can be given away:
    /// it buckets by move, with no per-chunk refcount traffic.
    pub fn insert_batch(&mut self, chunks: &[Chunk]) -> Result<(), StorageError> {
        if chunks.is_empty() {
            return Ok(());
        }
        if let Some(p) = self.pinned {
            return self.port.insert_batch(p, self.bag, chunks);
        }
        self.bucket_chunks(chunks.iter().cloned());
        self.dispatch_buckets()
    }

    /// [`BagClient::insert_batch`] taking the chunks by value: bucketing
    /// moves each chunk, so a producer that drains its accumulator into
    /// this call (see [`crate::batch::ChunkBatch::flush_into`]) hands the
    /// storage layer ownership with zero defensive copies.
    pub fn insert_batch_vec(&mut self, chunks: Vec<Chunk>) -> Result<(), StorageError> {
        if chunks.is_empty() {
            return Ok(());
        }
        if let Some(p) = self.pinned {
            return self.port.insert_batch(p, self.bag, &chunks);
        }
        self.bucket_chunks(chunks.into_iter());
        self.dispatch_buckets()
    }

    /// Buckets chunks into per-target runs following the cyclic order.
    /// The buckets are client-owned scratch space: cleared, never
    /// deallocated (the RPC port drains them by value when staging).
    fn bucket_chunks(&mut self, chunks: impl Iterator<Item = Chunk>) {
        let m = self.insert_cursor.len();
        self.insert_buckets.resize_with(m, Vec::new);
        for bucket in &mut self.insert_buckets {
            bucket.clear();
        }
        for chunk in chunks {
            self.insert_buckets[self.insert_cursor.next_node()].push(chunk);
        }
    }

    fn dispatch_buckets(&mut self) -> Result<(), StorageError> {
        let m = self.insert_buckets.len();
        // Over RPC the buckets are staged (and possibly coalesced with
        // later batches) before going on the wire, all submitted before
        // any ack is awaited.
        if let StoragePort::Rpc(port) = &mut self.port {
            return port.insert_buckets(self.bag, &mut self.insert_buckets);
        }
        for (target, bucket) in self.insert_buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            // Primary target first; on refusal (down / draining) re-route
            // the whole bucket to the next nodes, as `insert` does.
            let mut landed = false;
            let mut last_err = None;
            for offset in 0..m {
                let idx = (target + offset) % m;
                match self.port.insert_batch(idx, self.bag, bucket) {
                    Ok(()) => {
                        landed = true;
                        break;
                    }
                    Err(e) if Self::reroutes(&e) => last_err = Some(e),
                    Err(e) => return Err(e),
                }
            }
            if !landed {
                return Err(last_err.unwrap_or(StorageError::AllReplicasDown(self.bag)));
            }
        }
        Ok(())
    }

    /// Attempts to remove one chunk, probing storage nodes in cyclic order.
    ///
    /// Probes up to one full cycle. Near bag emptiness this needs more
    /// probing (paper §3.3); the prefetcher amortizes that cost with its
    /// `b` outstanding requests.
    pub fn try_remove(&mut self) -> Result<RemoveResult, StorageError> {
        let m = if self.pinned.is_some() {
            1
        } else {
            self.remove_cursor.len()
        };
        let mut saw_pending = false;
        let mut down = 0usize;
        for _ in 0..m {
            let target = self
                .pinned
                .unwrap_or_else(|| self.remove_cursor.next_node());
            match self.port.remove(target, self.bag) {
                Ok(NodeRemove::Chunk(c)) => return Ok(RemoveResult::Chunk(c)),
                Ok(NodeRemove::Empty) => saw_pending = true,
                Ok(NodeRemove::Eof) => {}
                Err(e) if Self::reroutes(&e) => down += 1,
                Err(e) => return Err(e),
            }
        }
        if down == m {
            return Err(StorageError::AllReplicasDown(self.bag));
        }
        if saw_pending || !self.port.cluster().is_sealed(self.bag)? {
            Ok(RemoveResult::Pending)
        } else {
            Ok(RemoveResult::Drained)
        }
    }

    /// Attempts to remove up to `max_n` chunks, probing storage nodes in
    /// cyclic order and taking as many chunks from each probed node as
    /// the budget allows — one storage round-trip per node rather than
    /// per chunk (the data-plane analog of batch sampling, paper §3.3).
    ///
    /// Over either port the probe loop is sequential — a full-budget
    /// probe usually fills from the first non-empty node, so one message
    /// moves the whole batch. (Scattering capped sub-requests across all
    /// nodes was tried and rejected: it multiplies message count by `m`
    /// per batch. Latency hiding for reads belongs to the
    /// [`Prefetcher`](crate::prefetch::Prefetcher), whose RPC pipeline
    /// keeps `b` of these probes in flight.)
    pub fn try_remove_batch(&mut self, max_n: usize) -> Result<BatchRemoveResult, StorageError> {
        let m = if self.pinned.is_some() {
            1
        } else {
            self.remove_cursor.len()
        };
        let mut got: Vec<Chunk> = Vec::new();
        let mut saw_pending = false;
        let mut down = 0usize;
        for _ in 0..m {
            let budget = max_n - got.len();
            if budget == 0 {
                break;
            }
            let target = self
                .pinned
                .unwrap_or_else(|| self.remove_cursor.next_node());
            match self.port.remove_batch(target, self.bag, budget) {
                Ok(batch) => {
                    if batch.exhausted && !batch.eof {
                        saw_pending = true;
                    }
                    got.extend(batch.chunks);
                }
                Err(e) if Self::reroutes(&e) => down += 1,
                Err(e) => return Err(e),
            }
        }
        if !got.is_empty() {
            return Ok(BatchRemoveResult::Chunks(got));
        }
        if down == m {
            return Err(StorageError::AllReplicasDown(self.bag));
        }
        if saw_pending || !self.port.cluster().is_sealed(self.bag)? {
            Ok(BatchRemoveResult::Pending)
        } else {
            Ok(BatchRemoveResult::Drained)
        }
    }

    /// Removes one chunk, spinning (with exponential backoff capped at
    /// 1 ms) while the bag is `Pending`. Returns `None` once drained.
    pub fn remove_blocking(&mut self) -> Result<Option<Chunk>, StorageError> {
        let mut backoff_us = 10u64;
        loop {
            match self.try_remove()? {
                RemoveResult::Chunk(c) => return Ok(Some(c)),
                RemoveResult::Drained => return Ok(None),
                RemoveResult::Pending => {
                    std::thread::sleep(std::time::Duration::from_micros(backoff_us));
                    backoff_us = (backoff_us * 2).min(1000);
                }
            }
        }
    }

    /// Samples the bag's cluster-wide state (for progress estimation).
    pub fn sample(&mut self) -> Result<BagSample, StorageError> {
        self.port.sample_bag(self.bag)
    }

    /// Enables cross-batch insert coalescing on an RPC port: successive
    /// [`BagClient::insert_batch`] calls stage their buckets and the port
    /// sends one merged envelope per (node, bag) once `window_chunks`
    /// chunks are staged. Staged chunks are durable only after the next
    /// flush — call [`BagClient::flush`] at batch-boundary handoffs (the
    /// engine's writers do). No-op over a direct port, which has no
    /// per-message cost to amortize.
    pub fn set_coalescing(&mut self, window_chunks: usize) {
        if let StoragePort::Rpc(port) = &mut self.port {
            port.set_coalescing(window_chunks);
        }
    }

    /// Builder form of [`BagClient::set_coalescing`].
    #[must_use]
    pub fn with_coalescing(mut self, window_chunks: usize) -> Self {
        self.set_coalescing(window_chunks);
        self
    }

    /// Bounds the outstanding on-wire request budget of each underlying
    /// RPC connection (writer flow control; see
    /// [`crate::rpc::NodeConnection::with_credit`]). No-op over a direct
    /// port.
    pub fn set_writer_credit(&mut self, credit: usize) {
        if let StoragePort::Rpc(port) = &mut self.port {
            port.set_writer_credit(credit);
        }
    }

    /// Flushes any coalesced inserts still staged on the port. After this
    /// returns `Ok`, every chunk handed to `insert_batch` is durable at
    /// storage. A no-op over a direct port or when nothing is staged.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        match &mut self.port {
            StoragePort::Rpc(port) => port.flush(),
            StoragePort::Direct(_) => Ok(()),
        }
    }

    /// RPC data-plane statistics of this client's port — envelope counts,
    /// staged chunks, flushes. `None` over a direct port.
    pub fn port_stats(&self) -> Option<crate::rpc::PortStats> {
        match &self.port {
            StoragePort::Rpc(port) => Some(port.stats()),
            StoragePort::Direct(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use std::collections::HashSet;

    fn chunk(v: u64) -> Chunk {
        Chunk::from_vec(v.to_le_bytes().to_vec())
    }

    fn chunk_val(c: &Chunk) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(c.bytes());
        u64::from_le_bytes(b)
    }

    #[test]
    fn insert_remove_roundtrip_single_client() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, 1);
        for i in 0..100 {
            client.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let mut got = HashSet::new();
        while let RemoveResult::Chunk(c) = client.try_remove().unwrap() {
            got.insert(chunk_val(&c));
        }
        assert_eq!(got.len(), 100);
        assert_eq!(client.try_remove().unwrap(), RemoveResult::Drained);
    }

    #[test]
    fn inserts_spread_across_nodes() {
        let cluster = StorageCluster::new(8, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, 2);
        for i in 0..800 {
            client.insert(chunk(i)).unwrap();
        }
        for idx in 0..8 {
            let s = cluster.node(idx).sample(bag).unwrap();
            assert_eq!(
                s.total_chunks, 100,
                "cyclic placement must balance perfectly per cycle"
            );
        }
    }

    #[test]
    fn two_clients_share_exactly_once() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, 3);
        for i in 0..200 {
            producer.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let mut a = BagClient::new(cluster.clone(), bag, 4);
        let mut b = BagClient::new(cluster.clone(), bag, 5);
        let mut got = Vec::new();
        loop {
            let mut progressed = false;
            if let RemoveResult::Chunk(c) = a.try_remove().unwrap() {
                got.push(chunk_val(&c));
                progressed = true;
            }
            if let RemoveResult::Chunk(c) = b.try_remove().unwrap() {
                got.push(chunk_val(&c));
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        got.sort_unstable();
        let expected: Vec<u64> = (0..200).collect();
        assert_eq!(got, expected, "every chunk exactly once across clients");
    }

    #[test]
    fn insert_batch_preserves_cyclic_balance() {
        let cluster = StorageCluster::new(8, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, 2);
        let chunks: Vec<Chunk> = (0..800u64).map(chunk).collect();
        for batch in chunks.chunks(100) {
            client.insert_batch(batch).unwrap();
        }
        for idx in 0..8 {
            let s = cluster.node(idx).sample(bag).unwrap();
            assert_eq!(
                s.total_chunks, 100,
                "batched inserts keep per-cycle balance"
            );
        }
    }

    #[test]
    fn batch_roundtrip_exactly_once() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, 3);
        let chunks: Vec<Chunk> = (0..250u64).map(chunk).collect();
        client.insert_batch(&chunks).unwrap();
        cluster.seal_bag(bag).unwrap();
        let mut got = HashSet::new();
        let mut consumer = BagClient::new(cluster.clone(), bag, 4);
        loop {
            match consumer.try_remove_batch(64).unwrap() {
                BatchRemoveResult::Chunks(batch) => {
                    for c in batch {
                        assert!(got.insert(chunk_val(&c)), "duplicate delivery");
                    }
                }
                BatchRemoveResult::Drained => break,
                BatchRemoveResult::Pending => unreachable!("sealed bag"),
            }
        }
        assert_eq!(got.len(), 250);
    }

    #[test]
    fn batch_remove_reports_pending_then_drained() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, 5);
        assert_eq!(
            client.try_remove_batch(8).unwrap(),
            BatchRemoveResult::Pending
        );
        cluster.seal_bag(bag).unwrap();
        assert_eq!(
            client.try_remove_batch(8).unwrap(),
            BatchRemoveResult::Drained
        );
    }

    #[test]
    fn insert_batch_reroutes_around_down_node() {
        let cluster = StorageCluster::new(3, ClusterConfig::default());
        let bag = cluster.create_bag();
        cluster.node(1).fail();
        let mut client = BagClient::new(cluster.clone(), bag, 6);
        let chunks: Vec<Chunk> = (0..30u64).map(chunk).collect();
        client.insert_batch(&chunks).unwrap();
        let total: u64 = [0, 2]
            .iter()
            .map(|&i| cluster.node(i).sample(bag).unwrap().total_chunks)
            .sum();
        assert_eq!(total, 30, "all chunks must land on live nodes");
    }

    #[test]
    fn pending_until_sealed() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, 6);
        assert_eq!(client.try_remove().unwrap(), RemoveResult::Pending);
        cluster.seal_bag(bag).unwrap();
        assert_eq!(client.try_remove().unwrap(), RemoveResult::Drained);
    }

    #[test]
    fn insert_skips_down_node() {
        let cluster = StorageCluster::new(3, ClusterConfig::default());
        let bag = cluster.create_bag();
        cluster.node(1).fail();
        let mut client = BagClient::new(cluster.clone(), bag, 7);
        for i in 0..30 {
            client.insert(chunk(i)).unwrap();
        }
        let total: u64 = [0, 2]
            .iter()
            .map(|&i| cluster.node(i).sample(bag).unwrap().total_chunks)
            .sum();
        assert_eq!(total, 30, "all chunks must land on live nodes");
    }

    #[test]
    fn remove_tolerates_down_node_without_replication_until_needed() {
        let cluster = StorageCluster::new(3, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, 8);
        for i in 0..30 {
            client.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        cluster.node(1).fail();
        // Chunks on live nodes are still retrievable; the client keeps
        // probing past the dead node.
        let mut count = 0;
        for _ in 0..100 {
            match client.try_remove().unwrap() {
                RemoveResult::Chunk(_) => count += 1,
                _ => break,
            }
        }
        assert_eq!(count, 20, "two thirds of the chunks live on healthy nodes");
    }

    #[test]
    fn all_nodes_down_is_error() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, 9);
        client.insert(chunk(1)).unwrap();
        cluster.node(0).fail();
        cluster.node(1).fail();
        assert!(matches!(
            client.try_remove(),
            Err(StorageError::AllReplicasDown(_))
        ));
        assert!(matches!(
            client.insert(chunk(2)),
            Err(StorageError::NodeDown(_) | StorageError::AllReplicasDown(_))
        ));
    }

    #[test]
    fn membership_refresh_reaches_new_node() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, 10);
        cluster.add_node();
        client.refresh_membership();
        for i in 0..30 {
            client.insert(chunk(i)).unwrap();
        }
        assert!(
            cluster.node(2).sample(bag).unwrap().total_chunks >= 9,
            "new node should receive its cyclic share"
        );
    }

    #[test]
    fn rpc_membership_refresh_reaches_new_node() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let ep = crate::endpoint::StorageEndpoint::channel(cluster.clone());
        let mut client = ep.client(bag, 10);
        ep.add_node();
        client.refresh_membership();
        for i in 0..30 {
            client.insert(chunk(i)).unwrap();
        }
        assert!(
            cluster.node(2).sample(bag).unwrap().total_chunks >= 9,
            "joined node should receive its cyclic share over RPC"
        );
    }

    #[test]
    fn pinned_client_keeps_fifo_on_one_node() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagClient::new(cluster.clone(), bag, 13).with_pinned_node(2);
        for i in 0..50 {
            w.insert(chunk(i)).unwrap();
        }
        // Everything landed on the pinned node, nothing elsewhere.
        assert_eq!(cluster.node(2).sample(bag).unwrap().total_chunks, 50);
        for idx in [0, 1, 3] {
            assert_eq!(cluster.node(idx).sample(bag).unwrap().total_chunks, 0);
        }
        cluster.seal_bag(bag).unwrap();
        // A pinned reader sees the exact insertion order (per-node FIFO).
        let mut r = BagClient::new(cluster.clone(), bag, 14).with_pinned_node(2);
        let mut got = Vec::new();
        loop {
            match r.try_remove_batch(7).unwrap() {
                BatchRemoveResult::Chunks(batch) => got.extend(batch.iter().map(chunk_val)),
                BatchRemoveResult::Drained => break,
                BatchRemoveResult::Pending => unreachable!("sealed bag"),
            }
        }
        let expected: Vec<u64> = (0..50).collect();
        assert_eq!(got, expected, "pinned reads must preserve write order");
    }

    #[test]
    fn pinned_insert_propagates_node_failure() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut w = BagClient::new(cluster.clone(), bag, 15).with_pinned_node(0);
        cluster.node(0).fail();
        // No silent re-route: the caller must learn the write failed
        // even though node 1 is healthy.
        assert!(matches!(w.insert(chunk(1)), Err(StorageError::NodeDown(_))));
        assert_eq!(cluster.node(1).sample(bag).unwrap().total_chunks, 0);
    }

    #[test]
    fn remove_blocking_sees_concurrent_producer() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let cluster2 = cluster.clone();
        let producer = std::thread::spawn(move || {
            let mut p = BagClient::new(cluster2.clone(), bag, 11);
            for i in 0..50 {
                p.insert(chunk(i)).unwrap();
            }
            cluster2.seal_bag(bag).unwrap();
        });
        let mut consumer = BagClient::new(cluster.clone(), bag, 12);
        let mut n = 0;
        while let Some(_c) = consumer.remove_blocking().unwrap() {
            n += 1;
        }
        producer.join().unwrap();
        assert_eq!(n, 50);
    }
}
