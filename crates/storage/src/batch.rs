//! Batch-sampling math (paper §3.3, Eq. 1).
//!
//! With `m` storage nodes and each compute node keeping `b` outstanding
//! requests spread over distinct random nodes, the cluster carries `b·m`
//! outstanding requests, and the probability that a given storage node has
//! at least one request — its expected utilization — is
//!
//! ```text
//! ρ(b, m) = 1 − (1 − 1/m)^(b·m)          (Eq. 1)
//! ```
//!
//! The paper picks `b = 10`, giving > 99 % utilization "even for thousands
//! of storage nodes". This module implements the analytic bound, a
//! Monte-Carlo estimator used to validate it (experiment E13), and the
//! drain-latency estimate `m·L/b` for nearly-empty bags.
//!
//! It also hosts [`ChunkBatch`], the write-side counterpart of batch
//! sampling: an accumulator of sealed chunks that producers flush through
//! [`BagClient::insert_batch`](crate::bag::BagClient::insert_batch) in
//! runs of up to `b`, amortizing storage-node locking and replication
//! fan-out the same way the read side amortizes probe round-trips.

use crate::bag::BagClient;
use crate::error::StorageError;
use hurricane_common::DetRng;
use hurricane_format::Chunk;

/// An accumulator of completed chunks awaiting one batched insert.
#[derive(Debug)]
pub struct ChunkBatch {
    chunks: Vec<Chunk>,
    capacity: usize,
}

impl ChunkBatch {
    /// Creates a batch that triggers a flush at `capacity` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be at least 1");
        Self {
            chunks: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends a sealed chunk; returns true when the batch reached
    /// capacity and should be flushed.
    pub fn push(&mut self, chunk: Chunk) -> bool {
        self.chunks.push(chunk);
        self.chunks.len() >= self.capacity
    }

    /// Number of chunks buffered.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Returns whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Inserts every buffered chunk through `client` in one batched call,
    /// draining the buffer **by value**: the chunks are moved into
    /// [`BagClient::insert_batch_vec`], so downstream ports (bucketing,
    /// RPC staging, envelope construction) take ownership without a
    /// defensive copy or per-chunk refcount traffic. No-op when empty.
    ///
    /// On error the drained chunks are consumed with the failed insert —
    /// the batch does not retain them for retry (callers recover at the
    /// task level, not the batch level).
    pub fn flush_into(&mut self, client: &mut BagClient) -> Result<(), StorageError> {
        if self.chunks.is_empty() {
            return Ok(());
        }
        let run = std::mem::replace(&mut self.chunks, Vec::with_capacity(self.capacity));
        client.insert_batch_vec(run)
    }
}

/// The utilization lower bound of Eq. 1: `1 − (1 − 1/m)^(b·m)`.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn utilization(b: u32, m: u32) -> f64 {
    assert!(m > 0, "utilization needs at least one storage node");
    if b == 0 {
        return 0.0;
    }
    let m = f64::from(m);
    1.0 - (1.0 - 1.0 / m).powf(f64::from(b) * m)
}

/// Smallest batching factor achieving at least `target` utilization on `m`
/// nodes. Saturates at 64: beyond that, utilization gains are below f64
/// noise for any realistic `m`.
pub fn min_batch_for(target: f64, m: u32) -> u32 {
    for b in 1..=64 {
        if utilization(b, m) >= target {
            return b;
        }
    }
    64
}

/// Expected latency (in units of one probe round-trip `l`) for removing an
/// item from a nearly-empty bag: ≈ `m · l / b` (paper §3.3).
pub fn drain_latency(m: u32, b: u32, l: f64) -> f64 {
    assert!(b > 0, "drain latency needs b > 0");
    f64::from(m) * l / f64::from(b)
}

/// Monte-Carlo estimate of storage utilization under batch sampling.
///
/// Each of `m` compute nodes repeatedly holds `b` outstanding requests to
/// `b` *distinct* storage nodes chosen uniformly (the paper's scheme).
/// Returns the fraction of storage nodes with ≥ 1 pending request averaged
/// over `rounds` independent placements.
///
/// The analytic bound models requests as independent (not distinct per
/// compute node), so the simulated utilization should meet or exceed
/// [`utilization`] — distinctness can only spread load better.
pub fn simulate_utilization(b: u32, m: u32, rounds: u32, rng: &mut DetRng) -> f64 {
    assert!(m > 0 && rounds > 0);
    let b_eff = (b as usize).min(m as usize);
    let mut busy_total = 0u64;
    let mut hit = vec![false; m as usize];
    for _ in 0..rounds {
        hit.fill(false);
        for _compute in 0..m {
            for node in rng.sample_distinct(m as usize, b_eff) {
                hit[node] = true;
            }
        }
        busy_total += hit.iter().filter(|&&h| h).count() as u64;
    }
    busy_total as f64 / (u64::from(m) * u64::from(rounds)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, StorageCluster};

    #[test]
    fn chunk_batch_flushes_at_capacity() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, 1);
        let mut batch = ChunkBatch::new(8);
        let mut flushes = 0;
        for i in 0..20u8 {
            if batch.push(Chunk::from_vec(vec![i])) {
                batch.flush_into(&mut client).unwrap();
                flushes += 1;
            }
        }
        batch.flush_into(&mut client).unwrap();
        assert_eq!(flushes, 2, "20 chunks at capacity 8 = 2 full flushes");
        assert!(batch.is_empty());
        assert_eq!(cluster.sample_bag(bag).unwrap().total_chunks, 20);
    }

    #[test]
    fn matches_paper_reference_points() {
        // Paper §3.3: "With b = 1 outstanding requests, the utilization is
        // at least 63%, with b = 2, the utilization is 86%, and with b = 3,
        // the utilization is 95%."
        let m = 1000;
        assert!((utilization(1, m) - 0.632).abs() < 0.01);
        assert!((utilization(2, m) - 0.865).abs() < 0.01);
        assert!((utilization(3, m) - 0.950).abs() < 0.01);
        // "we pick b = 10, which ensures over 99% utilization even for
        // thousands of storage nodes."
        assert!(utilization(10, 1000) > 0.99);
        assert!(utilization(10, 10_000) > 0.99);
    }

    #[test]
    fn monotone_in_b() {
        for m in [2u32, 8, 32, 512] {
            let mut prev = 0.0;
            for b in 1..16 {
                let u = utilization(b, m);
                assert!(u > prev, "utilization must rise with b (m={m}, b={b})");
                prev = u;
            }
        }
    }

    #[test]
    fn bounded_by_one() {
        for m in [1u32, 2, 32, 4096] {
            for b in [0u32, 1, 10, 64] {
                let u = utilization(b, m);
                assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    #[test]
    fn single_node_always_fully_utilized() {
        assert!((utilization(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_batch_reasonable() {
        assert_eq!(min_batch_for(0.6, 1000), 1);
        assert_eq!(min_batch_for(0.95, 1000), 3);
        assert!(min_batch_for(0.99, 1000) <= 10);
    }

    #[test]
    fn drain_latency_matches_formula() {
        assert!((drain_latency(32, 10, 1.0) - 3.2).abs() < 1e-12);
        assert!((drain_latency(32, 1, 0.5) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn simulation_meets_analytic_bound() {
        let mut rng = DetRng::new(42);
        for (b, m) in [(1u32, 32u32), (2, 32), (3, 32), (10, 32), (2, 128)] {
            let sim = simulate_utilization(b, m, 200, &mut rng);
            let bound = utilization(b, m);
            assert!(
                sim >= bound - 0.03,
                "b={b} m={m}: simulated {sim:.3} below bound {bound:.3}"
            );
        }
    }

    #[test]
    fn simulation_with_b_at_least_m_is_total() {
        let mut rng = DetRng::new(7);
        // With b >= m, every compute node probes every storage node.
        let u = simulate_utilization(32, 8, 50, &mut rng);
        assert!((u - 1.0).abs() < 1e-12);
    }
}
