//! The storage cluster: node membership, bag lifecycle, replication.
//!
//! The cluster object is what compute nodes are configured with (paper §3:
//! "each compute node ... is configured so that it knows the list of
//! storage nodes"). It owns bag metadata — the authoritative sealed flag —
//! and implements primary–backup replication (paper §4.4): with a
//! replication factor of `n + 1`, each chunk written to primary node `i`
//! is also written to the next `n` nodes in ring order, and removes mirror
//! the primary's pointer advance onto the backups so a failover resumes
//! from (approximately) the primary's position.
//!
//! A design note on failover atomicity: mirroring the pointer to backups is
//! a second message, not a distributed transaction. If the primary dies
//! between serving a remove and the mirror landing, the backup re-serves
//! one chunk. The paper's system has the same window; its applications
//! tolerate it because compute-node recovery rewinds and restarts tasks
//! whose workers crashed mid-flight.
//!
//! Mirrors carry chunk *identities*, not counts: every insert run is
//! minted a unique id ([`crate::node::next_run_id`]) before the replica
//! fan-out, and a serving replica reports which `(run, position)` tags it
//! consumed ([`crate::node::TagSegment`]). A backup whose log diverged
//! from the serving replica's — a partial replicated insert landed at one
//! but not the other — consumes exactly the served chunks and keeps the
//! marooned ones live, instead of blindly skipping `n` entries past data
//! the serving replica never saw (the double-serve hazard the fault
//! simulator used to document as modeled-away).

use crate::error::StorageError;
use crate::node::{next_run_id, BagSample, NodeRemove, NodeRemoveBatch, StorageNode};
use crate::segment::SegmentStore;
use hurricane_common::{BagId, StorageNodeId};
use hurricane_format::Chunk;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Total copies of each chunk (1 = no replication). Paper §4.4: "an
    /// application can tolerate n storage node failures by using n + 1
    /// replication"; the evaluation runs with replication disabled unless
    /// stated, so the default is 1.
    pub replication: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self { replication: 1 }
    }
}

/// Durable-storage settings for a cluster (`SEGMENT.md`): the segment
/// store nodes journal to, and the per-node resident-memory budget.
/// Every node journals into its own `node-<i>` namespace of the shared
/// store, so one data directory (or one in-memory virtual disk, for the
/// fault simulator) holds the whole cluster's durable state.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The shared segment-store root: a disk directory
    /// ([`SegmentStore::disk`]) or an in-memory virtual disk
    /// ([`SegmentStore::mem`]).
    pub store: SegmentStore,
    /// Per-node resident chunk-byte budget; `u64::MAX` keeps everything
    /// in memory. See [`StorageNode::durable`].
    pub spill_threshold_bytes: u64,
}

#[derive(Debug, Default)]
struct BagMeta {
    sealed: bool,
    collected: bool,
}

/// Append-ordering locks keyed by (bag, origin); see
/// [`StorageCluster::insert_batch`].
type OrderLocks = HashMap<(BagId, u32), Arc<parking_lot::Mutex<()>>>;

/// The set of storage nodes plus bag metadata.
///
/// Bag metadata is read on every data-plane operation (is the bag known?
/// sealed?) but written only by control-plane calls (create / seal /
/// collect), so it lives behind an `RwLock`: concurrent workers share the
/// read lock instead of serializing on a metadata mutex.
pub struct StorageCluster {
    nodes: RwLock<Vec<Arc<StorageNode>>>,
    config: ClusterConfig,
    /// Durable-storage settings; `None` keeps every node memory-only.
    /// Kept so nodes added later ([`StorageCluster::add_node`]) journal
    /// to the same store as the founding members.
    durability: Option<DurabilityConfig>,
    bags: RwLock<HashMap<BagId, BagMeta>>,
    next_bag: AtomicU64,
    /// Per-(bag, origin) append-ordering locks, used only when
    /// replication > 1: holding one across the replica fan-out
    /// guarantees every replica's origin stream receives chunks in the
    /// same order, which count-based pointer mirroring depends on. With
    /// replication = 1 the map stays empty and inserts never touch it.
    repl_order: RwLock<OrderLocks>,
}

impl StorageCluster {
    /// Creates a cluster of `m` healthy storage nodes.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or if the replication factor exceeds `m`.
    pub fn new(m: usize, config: ClusterConfig) -> Arc<Self> {
        Self::build(m, config, None)
    }

    /// Creates a cluster of `m` *durable* storage nodes journaling into
    /// `durability.store`, each recovering whatever its `node-<i>`
    /// namespace already holds — a restart from an existing data
    /// directory resumes with all bag contents and consumed-pointer
    /// state intact.
    ///
    /// # Panics
    ///
    /// As [`StorageCluster::new`]; additionally panics if the segment
    /// store cannot be opened or recovered from.
    pub fn new_durable(m: usize, config: ClusterConfig, durability: DurabilityConfig) -> Arc<Self> {
        Self::build(m, config, Some(durability))
    }

    fn build(m: usize, config: ClusterConfig, durability: Option<DurabilityConfig>) -> Arc<Self> {
        assert!(m > 0, "a cluster needs at least one storage node");
        assert!(
            config.replication >= 1 && config.replication <= m,
            "replication factor must be in 1..=m"
        );
        let nodes = (0..m)
            .map(|i| Self::build_node(i as u32, durability.as_ref()))
            .collect();
        Arc::new(Self {
            nodes: RwLock::new(nodes),
            config,
            durability,
            bags: RwLock::new(HashMap::new()),
            next_bag: AtomicU64::new(0),
            repl_order: RwLock::new(HashMap::new()),
        })
    }

    fn build_node(id: u32, durability: Option<&DurabilityConfig>) -> Arc<StorageNode> {
        match durability {
            Some(d) => {
                let store = d
                    .store
                    .subdir(&format!("node-{id}"))
                    .expect("create node segment-store namespace");
                Arc::new(
                    StorageNode::durable(StorageNodeId(id), store, d.spill_threshold_bytes)
                        .expect("recover storage node from segment store"),
                )
            }
            None => Arc::new(StorageNode::new(StorageNodeId(id))),
        }
    }

    /// Number of storage nodes (including down / draining ones).
    pub fn num_nodes(&self) -> usize {
        self.nodes.read().len()
    }

    /// Returns a handle to node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> Arc<StorageNode> {
        self.nodes.read()[i].clone()
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.config.replication
    }

    /// Adds a storage node (paper §3.4). Returns its index. Existing bag
    /// clients keep their old cycle until they call
    /// `BagClient::refresh_membership`; new clients see the new node
    /// immediately.
    pub fn add_node(&self) -> usize {
        let mut nodes = self.nodes.write();
        let id = nodes.len() as u32;
        nodes.push(Self::build_node(id, self.durability.as_ref()));
        nodes.len() - 1
    }

    /// Starts draining node `i`: it stops accepting inserts but still
    /// serves removes; it can be decommissioned once `is_drained` reports
    /// true (paper §3.4).
    pub fn drain_node(&self, i: usize) {
        self.nodes.read()[i].start_draining();
    }

    /// Allocates a fresh bag id. Bags are created lazily at nodes on first
    /// touch; the cluster records the authoritative metadata.
    pub fn create_bag(&self) -> BagId {
        let id = BagId(self.next_bag.fetch_add(1, Ordering::Relaxed));
        self.bags.write().insert(id, BagMeta::default());
        id
    }

    pub(crate) fn check_bag(&self, bag: BagId) -> Result<(), StorageError> {
        let bags = self.bags.read();
        match bags.get(&bag) {
            None => Err(StorageError::UnknownBag(bag)),
            Some(m) if m.collected => Err(StorageError::BagCollected(bag)),
            Some(_) => Ok(()),
        }
    }

    /// Validates `bag` and returns its sealed flag in one metadata-lock
    /// acquisition — the hot path's single metadata touch.
    pub(crate) fn bag_state(&self, bag: BagId) -> Result<bool, StorageError> {
        let bags = self.bags.read();
        match bags.get(&bag) {
            None => Err(StorageError::UnknownBag(bag)),
            Some(m) if m.collected => Err(StorageError::BagCollected(bag)),
            Some(m) => Ok(m.sealed),
        }
    }

    /// Returns whether `bag` is sealed (the cluster-level flag is the
    /// authority; per-node flags only reject late inserts).
    pub fn is_sealed(&self, bag: BagId) -> Result<bool, StorageError> {
        let bags = self.bags.read();
        bags.get(&bag)
            .map(|m| m.sealed)
            .ok_or(StorageError::UnknownBag(bag))
    }

    /// Seals `bag` cluster-wide: no more inserts anywhere. Down nodes are
    /// skipped (they reject inserts anyway while down, and the cluster
    /// flag governs end-of-bag detection).
    pub fn seal_bag(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_bag(bag)?;
        {
            let mut bags = self.bags.write();
            bags.get_mut(&bag)
                .ok_or(StorageError::UnknownBag(bag))?
                .sealed = true;
        }
        for node in self.nodes.read().iter() {
            let _ = node.seal(bag);
        }
        Ok(())
    }

    /// Re-opens `bag` for another full read (paper §4.3 "reusing the
    /// contents of a bag"): rewinds the read pointer at every node. The
    /// sealed flag is retained, so readers still observe end-of-bag.
    pub fn rewind_bag(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_bag(bag)?;
        for node in self.nodes.read().iter() {
            match node.rewind(bag) {
                Ok(()) | Err(StorageError::NodeDown(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Discards all contents of `bag` and reopens it for inserts — used to
    /// clear partial outputs when restarting failed tasks (paper §4.4).
    pub fn discard_bag(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_bag(bag)?;
        {
            let mut bags = self.bags.write();
            bags.get_mut(&bag)
                .ok_or(StorageError::UnknownBag(bag))?
                .sealed = false;
        }
        for node in self.nodes.read().iter() {
            match node.discard(bag) {
                Ok(()) | Err(StorageError::NodeDown(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Garbage-collects `bag` cluster-wide.
    pub fn collect_bag(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_bag(bag)?;
        {
            let mut bags = self.bags.write();
            bags.get_mut(&bag)
                .ok_or(StorageError::UnknownBag(bag))?
                .collected = true;
        }
        for node in self.nodes.read().iter() {
            let _ = node.collect(bag);
        }
        self.repl_order.write().retain(|(b, _), _| *b != bag);
        Ok(())
    }

    /// Aggregated sample of `bag` across all reachable nodes — the master's
    /// input for estimating remaining work (paper §4.2).
    pub fn sample_bag(&self, bag: BagId) -> Result<BagSample, StorageError> {
        self.check_bag(bag)?;
        let mut agg = BagSample {
            sealed: true,
            ..BagSample::default()
        };
        for node in self.nodes.read().iter() {
            match node.sample(bag) {
                Ok(s) => agg.merge(&s),
                Err(StorageError::NodeDown(_)) => {}
                Err(e) => return Err(e),
            }
        }
        agg.sealed = self.is_sealed(bag)?;
        Ok(agg)
    }

    /// Replica node indices for a chunk whose primary is `primary`.
    fn replicas(&self, primary: usize, m: usize) -> impl DoubleEndedIterator<Item = usize> {
        let r = self.config.replication;
        (0..r).map(move |k| (primary + k) % m)
    }

    /// Inserts `chunk` into `bag` at primary node `primary_idx`, writing
    /// backups per the replication factor.
    ///
    /// Succeeds if the write lands on at least one replica; a fully
    /// unreachable replica set is an error.
    pub fn insert(&self, primary_idx: usize, bag: BagId, chunk: Chunk) -> Result<(), StorageError> {
        self.insert_batch(primary_idx, bag, std::slice::from_ref(&chunk))
    }

    /// Returns the append-ordering lock for `(bag, origin)`, creating it
    /// on first use. Only called when replication > 1.
    pub(crate) fn order_lock(&self, bag: BagId, origin: u32) -> Arc<parking_lot::Mutex<()>> {
        if let Some(l) = self.repl_order.read().get(&(bag, origin)) {
            return l.clone();
        }
        self.repl_order
            .write()
            .entry((bag, origin))
            .or_default()
            .clone()
    }

    /// Batched [`StorageCluster::insert`]: writes every chunk of `chunks`
    /// to primary `primary_idx` with one storage-node call per replica —
    /// replication is mirrored per batch, not per chunk. The whole batch
    /// is one insert run sharing one [`next_run_id`] across replicas, so
    /// pointer mirrors can name its chunks by identity.
    ///
    /// Replicated writes take two precautions:
    ///
    /// * **Backups before primary.** A chunk only becomes removable once
    ///   it lands at the primary; writing backups first means any remove
    ///   that wins the race finds the chunk already present at every
    ///   backup, so a failover after the primary's death can always
    ///   serve what the primary served from its own log.
    /// * **Per-(bag, origin) append ordering.** Concurrent writers to the
    ///   same primary serialize their replica fan-out on a tiny ordering
    ///   lock so every replica's origin stream holds the runs in the
    ///   same order. Identity-tagged mirroring no longer *requires* this
    ///   for correctness, but converged logs keep the mirror scan O(batch)
    ///   and failover positions exact. With replication = 1 neither cost
    ///   is paid.
    pub fn insert_batch(
        &self,
        primary_idx: usize,
        bag: BagId,
        chunks: &[Chunk],
    ) -> Result<(), StorageError> {
        if self.bag_state(bag)? {
            return Err(StorageError::BagSealed(bag));
        }
        if chunks.is_empty() {
            return Ok(());
        }
        let nodes = self.nodes.read();
        let m = nodes.len();
        let origin = (primary_idx % m) as u32;
        let run = next_run_id();
        if self.config.replication > 1 {
            let lock = self.order_lock(bag, origin);
            let _held = lock.lock();
            Self::insert_batch_inner(
                &nodes,
                self.replicas(primary_idx, m),
                bag,
                chunks,
                origin,
                run,
            )
        } else {
            Self::insert_batch_inner(
                &nodes,
                self.replicas(primary_idx, m),
                bag,
                chunks,
                origin,
                run,
            )
        }
    }

    fn insert_batch_inner(
        nodes: &[Arc<StorageNode>],
        replicas: impl DoubleEndedIterator<Item = usize>,
        bag: BagId,
        chunks: &[Chunk],
        origin: u32,
        run: u64,
    ) -> Result<(), StorageError> {
        let mut landed = 0usize;
        let mut last_err = None;
        // Reverse order: backups first, primary last (see insert_batch).
        for idx in replicas.rev() {
            match nodes[idx].insert_run(bag, chunks, origin, run) {
                Ok(()) => landed += 1,
                // Down, draining, or disk-sick replicas are routed around:
                // the write still succeeds if any replica journals it
                // (see [`StorageError::routes_around`]).
                Err(e) if e.routes_around() => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        if landed > 0 {
            Ok(())
        } else {
            Err(last_err.unwrap_or(StorageError::AllReplicasDown(bag)))
        }
    }

    /// Removes the next chunk of `bag` whose primary is `primary_idx`.
    ///
    /// On primary failure the first reachable backup serves the request
    /// (failover); successful removes are mirrored to the remaining live
    /// replicas so their pointers track the serving node.
    pub fn remove(&self, primary_idx: usize, bag: BagId) -> Result<NodeRemove, StorageError> {
        // Single-chunk removes ride the batch path so the mirror carries
        // the served chunk's identity tag.
        let batch = self.remove_batch(primary_idx, bag, 1)?;
        Ok(match batch.chunks.into_iter().next() {
            Some(c) => NodeRemove::Chunk(c),
            None if batch.eof => NodeRemove::Eof,
            None => NodeRemove::Empty,
        })
    }

    /// Batched [`StorageCluster::remove`]: removes up to `max_n` chunks
    /// whose primary is `primary_idx` in one storage-node call, mirroring
    /// the whole batch's pointer advance to the live backups at once.
    pub fn remove_batch(
        &self,
        primary_idx: usize,
        bag: BagId,
        max_n: usize,
    ) -> Result<NodeRemoveBatch, StorageError> {
        let sealed = self.bag_state(bag)?;
        let nodes = self.nodes.read();
        let m = nodes.len();
        let origin = (primary_idx % m) as u32;
        let mut serving = None;
        let mut first_empty: Option<NodeRemoveBatch> = None;
        let mut probed_empty: Vec<usize> = Vec::new();
        for idx in self.replicas(primary_idx, m) {
            match nodes[idx].remove_from_batch(bag, origin, max_n) {
                // An empty serve is not authoritative: replica logs can
                // diverge — this replica restarted and recovered a log
                // missing runs that landed only at a backup while it was
                // down. Keep probing; the group is exhausted only when
                // every reachable replica comes back empty, otherwise
                // acked chunks marooned at a backup would be masked by
                // a premature end-of-bag.
                Ok(outcome) if outcome.chunks.is_empty() => {
                    probed_empty.push(idx);
                    if first_empty.is_none() {
                        first_empty = Some(outcome);
                    }
                }
                Ok(outcome) => {
                    serving = Some((idx, outcome));
                    break;
                }
                // A replica that can't serve (down, or its segment log
                // can't journal the consume) fails over to the next one.
                Err(e) if e.routes_around() => continue,
                Err(e) => return Err(e),
            }
        }
        let Some((served_by, mut outcome)) = serving else {
            let Some(mut outcome) = first_empty else {
                return Err(StorageError::AllReplicasDown(bag));
            };
            outcome.eof = outcome.exhausted && sealed;
            return Ok(outcome);
        };
        // Reconcile a fallback serve: a replica probed empty above may
        // have concurrently served the very same chunks to another
        // reader whose mirror hadn't landed at `served_by` yet. Claim
        // the served identities at each such replica and drop whatever
        // it reports already consumed — those chunks belong to the
        // other reader. An unreachable replica claims nothing (its
        // consumed state can't race anyone while it's down).
        for &idx in &probed_empty {
            if outcome.chunks.is_empty() {
                break;
            }
            if let Ok(already) = nodes[idx].claim_consumed(bag, origin, &outcome.tags) {
                outcome.drop_already_consumed(&already);
            }
        }
        if !outcome.chunks.is_empty() {
            for idx in self.replicas(primary_idx, m) {
                // Replicas probed empty were just claimed — the claim
                // is the mirror.
                if idx != served_by && !probed_empty.contains(&idx) {
                    let _ = nodes[idx].mirror_consumed(bag, origin, &outcome.tags);
                }
            }
        }
        // As in `remove`, the cluster-level sealed flag is the authority
        // for end-of-bag.
        outcome.eof = outcome.exhausted && sealed;
        Ok(outcome)
    }

    /// Non-destructive full scan of `bag` (replay of work bags). With
    /// replication, chunks are deduplicated by reading each primary's log
    /// only (backups hold copies of the same chunks under the same bag, so
    /// a naive scan would double-count; primaries-only is exact when all
    /// primaries are up, and falls back to backups for down primaries).
    pub fn snapshot_bag(&self, bag: BagId) -> Result<Vec<Chunk>, StorageError> {
        self.check_bag(bag)?;
        let nodes = self.nodes.read();
        let m = nodes.len();
        let mut out = Vec::new();
        if self.config.replication == 1 {
            // Unreplicated snapshots cannot route around a disk-sick
            // node — no other node holds its chunks — so only NodeDown,
            // whose data a restart may still recover, is skipped.
            for node in nodes.iter() {
                match node.snapshot(bag) {
                    Ok(chunks) => out.extend(chunks),
                    Err(StorageError::NodeDown(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            return Ok(out);
        }
        // Replicated: a chunk addressed to primary p also lives at
        // p+1..p+r-1, tagged with origin p. Reconstruct one copy per chunk
        // by reading each origin's log from the first live replica.
        for p in 0..m {
            let mut served = false;
            for k in 0..self.config.replication {
                let idx = (p + k) % m;
                match nodes[idx].snapshot_from(bag, p as u32) {
                    Ok(chunks) => {
                        out.extend(chunks);
                        served = true;
                        break;
                    }
                    Err(e) if e.routes_around() => continue,
                    Err(e) => return Err(e),
                }
            }
            if !served {
                return Err(StorageError::AllReplicasDown(bag));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(b: &[u8]) -> Chunk {
        Chunk::from_vec(b.to_vec())
    }

    fn drain_all(cluster: &StorageCluster, bag: BagId) -> Vec<Chunk> {
        let m = cluster.num_nodes();
        let mut out = Vec::new();
        for idx in 0..m {
            while let NodeRemove::Chunk(c) = cluster.remove(idx, bag).unwrap() {
                out.push(c);
            }
        }
        out
    }

    #[test]
    fn create_seal_remove_lifecycle() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        for i in 0..8u8 {
            cluster.insert(i as usize % 4, bag, chunk(&[i])).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        assert!(cluster.is_sealed(bag).unwrap());
        assert_eq!(
            cluster.insert(0, bag, chunk(b"late")),
            Err(StorageError::BagSealed(bag))
        );
        let got = drain_all(&cluster, bag);
        assert_eq!(got.len(), 8);
        // Fully drained + sealed => every node reports Eof.
        for idx in 0..4 {
            assert_eq!(cluster.remove(idx, bag).unwrap(), NodeRemove::Eof);
        }
    }

    #[test]
    fn unsealed_empty_reports_empty_not_eof() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        assert_eq!(cluster.remove(0, bag).unwrap(), NodeRemove::Empty);
    }

    #[test]
    fn unknown_bag_rejected() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        assert_eq!(
            cluster.insert(0, BagId(99), chunk(b"x")),
            Err(StorageError::UnknownBag(BagId(99)))
        );
    }

    #[test]
    fn sample_aggregates_across_nodes() {
        let cluster = StorageCluster::new(3, ClusterConfig::default());
        let bag = cluster.create_bag();
        cluster.insert(0, bag, chunk(b"aa")).unwrap();
        cluster.insert(1, bag, chunk(b"bbb")).unwrap();
        let s = cluster.sample_bag(bag).unwrap();
        assert_eq!(s.total_chunks, 2);
        assert_eq!(s.remaining_bytes, 5);
        assert!(!s.sealed);
        cluster.seal_bag(bag).unwrap();
        assert!(cluster.sample_bag(bag).unwrap().sealed);
    }

    #[test]
    fn replication_writes_backups() {
        let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        cluster.insert(0, bag, chunk(b"x")).unwrap();
        // Primary 0 and backup 1 both hold the chunk; backups store it
        // under the primary's origin stream (samples count only the
        // node's own stream, so cluster-wide sums stay exact).
        assert_eq!(cluster.node(0).sample(bag).unwrap().total_chunks, 1);
        assert_eq!(cluster.node(1).snapshot_from(bag, 0).unwrap().len(), 1);
        assert_eq!(cluster.node(1).sample(bag).unwrap().total_chunks, 0);
        assert!(cluster.node(2).snapshot_from(bag, 0).unwrap().is_empty());
    }

    #[test]
    fn failover_serves_from_backup() {
        let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        cluster.insert(0, bag, chunk(b"a")).unwrap();
        cluster.insert(0, bag, chunk(b"b")).unwrap();
        cluster.seal_bag(bag).unwrap();
        // Remove one chunk normally: backup pointer mirrors.
        assert_eq!(
            cluster.remove(0, bag).unwrap(),
            NodeRemove::Chunk(chunk(b"a"))
        );
        // Kill the primary; the backup serves the remainder from the
        // mirrored position.
        cluster.node(0).fail();
        assert_eq!(
            cluster.remove(0, bag).unwrap(),
            NodeRemove::Chunk(chunk(b"b"))
        );
        assert_eq!(cluster.remove(0, bag).unwrap(), NodeRemove::Eof);
    }

    #[test]
    fn all_replicas_down_is_an_error() {
        let cluster = StorageCluster::new(2, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        cluster.insert(0, bag, chunk(b"a")).unwrap();
        cluster.node(0).fail();
        cluster.node(1).fail();
        assert_eq!(
            cluster.remove(0, bag),
            Err(StorageError::AllReplicasDown(bag))
        );
    }

    #[test]
    fn insert_survives_one_down_replica() {
        let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        cluster.node(0).fail();
        cluster.insert(0, bag, chunk(b"x")).unwrap();
        assert_eq!(cluster.node(1).snapshot_from(bag, 0).unwrap().len(), 1);
    }

    #[test]
    fn discard_then_reuse() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        cluster.insert(0, bag, chunk(b"x")).unwrap();
        cluster.seal_bag(bag).unwrap();
        cluster.discard_bag(bag).unwrap();
        assert!(!cluster.is_sealed(bag).unwrap());
        cluster.insert(1, bag, chunk(b"y")).unwrap();
        let s = cluster.sample_bag(bag).unwrap();
        assert_eq!(s.total_chunks, 1);
    }

    #[test]
    fn rewind_allows_second_pass() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        cluster.insert(0, bag, chunk(b"x")).unwrap();
        cluster.seal_bag(bag).unwrap();
        assert_eq!(drain_all(&cluster, bag).len(), 1);
        cluster.rewind_bag(bag).unwrap();
        assert!(cluster.is_sealed(bag).unwrap(), "rewind keeps the seal");
        assert_eq!(drain_all(&cluster, bag).len(), 1);
    }

    #[test]
    fn collect_blocks_access() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        cluster.insert(0, bag, chunk(b"x")).unwrap();
        cluster.collect_bag(bag).unwrap();
        assert_eq!(cluster.remove(0, bag), Err(StorageError::BagCollected(bag)));
    }

    #[test]
    fn snapshot_without_replication_sees_everything() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        for i in 0..10u8 {
            cluster.insert(i as usize % 4, bag, chunk(&[i])).unwrap();
        }
        drain_all(&cluster, bag);
        assert_eq!(cluster.snapshot_bag(bag).unwrap().len(), 10);
    }

    #[test]
    fn snapshot_with_replication_dedups() {
        let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        for i in 0..6u8 {
            cluster.insert(i as usize % 3, bag, chunk(&[i])).unwrap();
        }
        assert_eq!(cluster.snapshot_bag(bag).unwrap().len(), 6);
    }

    #[test]
    fn add_node_grows_cluster() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        assert_eq!(cluster.num_nodes(), 2);
        let idx = cluster.add_node();
        assert_eq!(idx, 2);
        assert_eq!(cluster.num_nodes(), 3);
        let bag = cluster.create_bag();
        cluster.insert(2, bag, chunk(b"x")).unwrap();
        assert_eq!(cluster.node(2).sample(bag).unwrap().total_chunks, 1);
    }

    #[test]
    fn insert_batch_replicates_whole_batch() {
        let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        let chunks: Vec<Chunk> = (0..6u8).map(|i| chunk(&[i])).collect();
        cluster.insert_batch(0, bag, &chunks).unwrap();
        assert_eq!(cluster.node(0).sample(bag).unwrap().total_chunks, 6);
        assert_eq!(cluster.node(1).snapshot_from(bag, 0).unwrap().len(), 6);
    }

    #[test]
    fn remove_batch_drains_and_mirrors() {
        let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        for i in 0..8u8 {
            cluster.insert(0, bag, chunk(&[i])).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let got = cluster.remove_batch(0, bag, 5).unwrap();
        assert_eq!(got.chunks.len(), 5);
        assert!(!got.eof);
        // The backup's pointer followed the batch: a failover now serves
        // exactly the remaining three chunks.
        cluster.node(0).fail();
        let rest = cluster.remove_batch(0, bag, 100).unwrap();
        assert_eq!(rest.chunks.len(), 3);
        assert!(rest.eof);
    }

    #[test]
    fn concurrent_replicated_inserts_keep_replica_order_identical() {
        // Count-based pointer mirroring requires every replica's origin
        // stream to hold chunks in the same order. Hammer one primary
        // from many threads and compare the full streams.
        let cluster = StorageCluster::new(2, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let cluster = &cluster;
                s.spawn(move || {
                    for i in 0..500u16 {
                        let payload = [t, i.to_le_bytes()[0], i.to_le_bytes()[1]];
                        cluster.insert(0, bag, chunk(&payload)).unwrap();
                    }
                });
            }
        });
        let primary = cluster.node(0).snapshot_from(bag, 0).unwrap();
        let backup = cluster.node(1).snapshot_from(bag, 0).unwrap();
        assert_eq!(primary.len(), 2000);
        assert_eq!(primary, backup, "replica append order must be identical");
    }

    #[test]
    fn mirrored_pointer_never_lags_under_concurrent_insert_remove() {
        // Backup-first replica writes: a chunk is only removable once the
        // backup already holds it, so every successful remove's mirror
        // finds a chunk to skip. Race inserts against removes, then kill
        // the primary and drain: nothing may be served twice.
        let cluster = StorageCluster::new(2, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        let total = 2000u64;
        let removed: Vec<Chunk> = std::thread::scope(|s| {
            let inserter = {
                let cluster = &cluster;
                s.spawn(move || {
                    for i in 0..total {
                        cluster.insert(0, bag, chunk(&i.to_le_bytes())).unwrap();
                    }
                })
            };
            let remover = {
                let cluster = &cluster;
                s.spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < (total / 2) as usize {
                        match cluster.remove(0, bag).unwrap() {
                            NodeRemove::Chunk(c) => got.push(c),
                            _ => std::thread::yield_now(),
                        }
                    }
                    got
                })
            };
            inserter.join().unwrap();
            remover.join().unwrap()
        });
        cluster.seal_bag(bag).unwrap();
        cluster.node(0).fail();
        let mut seen: std::collections::HashSet<Vec<u8>> =
            removed.iter().map(|c| c.bytes().to_vec()).collect();
        loop {
            match cluster.remove(0, bag).unwrap() {
                NodeRemove::Chunk(c) => {
                    assert!(
                        seen.insert(c.bytes().to_vec()),
                        "failover re-served an already-delivered chunk"
                    );
                }
                NodeRemove::Eof => break,
                NodeRemove::Empty => unreachable!("sealed"),
            }
        }
        assert_eq!(seen.len() as u64, total, "chunks lost across failover");
    }

    #[test]
    fn empty_replica_does_not_mask_chunks_at_backup() {
        // Divergent logs: a value lands only at the backup (the primary
        // was down during the insert), then the primary comes back with
        // a log that never saw it. The group-level remove must keep
        // probing past the primary's empty serve and deliver the
        // marooned chunk instead of declaring a premature end-of-bag.
        let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        cluster.node(0).fail();
        cluster.insert(0, bag, chunk(b"marooned")).unwrap(); // backup 1 only
        cluster.node(0).recover();
        cluster.seal_bag(bag).unwrap();
        let got = cluster.remove_batch(0, bag, 8).unwrap();
        assert_eq!(got.chunks, vec![chunk(b"marooned")]);
        let end = cluster.remove_batch(0, bag, 8).unwrap();
        assert!(end.chunks.is_empty() && end.eof);
    }

    #[test]
    fn durable_cluster_recovers_node_from_shared_store() {
        let store = SegmentStore::mem();
        let cluster = StorageCluster::new_durable(
            2,
            ClusterConfig::default(),
            DurabilityConfig {
                store,
                spill_threshold_bytes: u64::MAX,
            },
        );
        let bag = cluster.create_bag();
        cluster.insert(0, bag, chunk(b"x")).unwrap();
        cluster.node(0).crash_lose_memory();
        cluster.node(0).restart_recover().unwrap();
        assert_eq!(
            cluster.remove(0, bag).unwrap(),
            NodeRemove::Chunk(chunk(b"x"))
        );
        // Nodes added later join the same store.
        let idx = cluster.add_node();
        assert!(cluster.node(idx).is_durable());
    }

    #[test]
    fn remove_batch_eof_follows_cluster_seal() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let got = cluster.remove_batch(0, bag, 4).unwrap();
        assert!(got.chunks.is_empty() && !got.eof, "unsealed: pending");
        cluster.seal_bag(bag).unwrap();
        let got = cluster.remove_batch(0, bag, 4).unwrap();
        assert!(got.eof, "sealed and empty: end of bag");
    }

    #[test]
    fn fallback_probe_claims_instead_of_double_serving() {
        // Reader A served the bag's chunks at the primary, but its
        // mirror to the backup is still in flight when reader B's probe
        // runs: the primary answers empty while the backup would serve
        // the same chunks again. B's claim at the primary must reveal
        // the concurrent serve so B drops them.
        let cluster = StorageCluster::new(2, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        cluster.insert(0, bag, chunk(b"x")).unwrap();
        cluster.insert(0, bag, chunk(b"y")).unwrap();
        // Reader A, mid-flight: consumed at the primary, mirror pending.
        let served = cluster.node(0).remove_batch(bag, 8).unwrap();
        assert_eq!(served.chunks.len(), 2);
        // Reader B via the cluster: primary empty, backup serves, claim
        // reports both chunks already delivered.
        let got = cluster.remove_batch(0, bag, 8).unwrap();
        assert!(
            got.chunks.is_empty(),
            "claim must drop concurrently served chunks, got {:?}",
            got.chunks
        );
        // The backup's pointer advanced with the claim-drop: the group
        // is drained for good.
        cluster.seal_bag(bag).unwrap();
        let end = cluster.remove_batch(0, bag, 8).unwrap();
        assert!(end.chunks.is_empty() && end.eof);
    }

    #[test]
    fn fallback_probe_serves_chunks_the_empty_replica_never_held() {
        // The dual of the claim test: a run that landed only at the
        // backup (the primary missed the insert — a divergent log).
        // The primary's claim knows nothing of the identity, so the
        // probe delivers the marooned chunk exactly once; a replicated
        // insert of the same identity arriving at the primary later
        // lands already consumed.
        let cluster = StorageCluster::new(2, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        let run = next_run_id();
        cluster
            .node(1)
            .insert_run(bag, &[chunk(b"marooned")], 0, run)
            .unwrap();
        let got = cluster.remove_batch(0, bag, 8).unwrap();
        assert_eq!(got.chunks, vec![chunk(b"marooned")]);
        // The in-flight replicated copy lands at the primary after the
        // serve: the claim pre-consumed its identity, so it can never
        // be served a second time.
        cluster
            .node(0)
            .insert_run(bag, &[chunk(b"marooned")], 0, run)
            .unwrap();
        cluster.seal_bag(bag).unwrap();
        let end = cluster.remove_batch(0, bag, 8).unwrap();
        assert!(end.chunks.is_empty() && end.eof, "got {:?}", end.chunks);
    }

    #[test]
    fn drain_node_rejects_inserts_but_serves() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        cluster.insert(0, bag, chunk(b"x")).unwrap();
        cluster.drain_node(0);
        assert!(matches!(
            cluster.insert(0, bag, chunk(b"y")),
            Err(StorageError::NodeDraining(_))
        ));
        assert_eq!(
            cluster.remove(0, bag).unwrap(),
            NodeRemove::Chunk(chunk(b"x"))
        );
        assert!(cluster.node(0).is_drained().unwrap());
    }
}
