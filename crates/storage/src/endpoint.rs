//! One unified way to reach storage: the [`StorageEndpoint`] builder.
//!
//! Hurricane grew four ways to open a [`BagClient`] — direct cluster
//! calls, inline RPC dispatch, channel servers, and hand-built ports —
//! each with its own constructor and its own knob plumbing. A
//! `StorageEndpoint` replaces all of them: pick a *plane*, set the
//! shared knobs once, and mint as many clients and ports as needed.
//!
//! | constructor | data path | use |
//! |---|---|---|
//! | [`StorageEndpoint::direct`] | in-process method calls | tests, benches, single-process runs |
//! | [`StorageEndpoint::inline`] | RPC messages, same-thread dispatch | protocol testing without thread hops |
//! | [`StorageEndpoint::channel`] | RPC over in-process channel servers | multi-threaded single-process runs |
//! | [`StorageEndpoint::tcp`] | RPC over sockets to `hurricane-node` processes | real clusters |
//! | [`StorageEndpoint::custom`] | RPC over caller-supplied connectors | fault simulation, harnesses |
//!
//! Every non-direct plane is membership-backed: clients and prefetchers
//! observe [`Membership`] epoch bumps and extend themselves to nodes
//! that join mid-job (`tcp` via [`JoinServer`], `channel` via
//! [`StorageEndpoint::sync`] after [`StorageCluster::add_node`]).
//!
//! Knobs are consuming builder methods; set them before sharing the
//! endpoint:
//!
//! ```
//! use hurricane_storage::{ClusterConfig, StorageCluster, StorageEndpoint};
//! use std::time::Duration;
//!
//! let cluster = StorageCluster::new(4, ClusterConfig::default());
//! let bag = cluster.create_bag();
//! let endpoint = StorageEndpoint::channel(cluster)
//!     .with_request_timeout(Duration::from_secs(5))
//!     .with_retry_attempts(3);
//! let mut client = endpoint.client(bag, 7);
//! client.insert(hurricane_format::Chunk::from_vec(vec![1, 2, 3])).unwrap();
//! endpoint.shutdown();
//! ```

use crate::bag::{BagClient, StoragePort};
use crate::cluster::{ClusterConfig, StorageCluster};
use crate::membership::Membership;
use crate::rpc::{
    RetryPolicy, RpcPort, StorageRpc, DEFAULT_DISPATCH_THREADS, DEFAULT_REQUEST_TIMEOUT,
};
use crate::tcp::{JoinServer, TcpConnector};
use hurricane_common::{BagId, StorageNodeId};
use parking_lot::Mutex;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Which data plane an endpoint reaches storage over.
enum Plane {
    /// Direct in-process method calls on the cluster.
    Direct(Arc<StorageCluster>),
    /// RPC envelopes dispatched inline on the caller's thread.
    Inline(Arc<StorageCluster>),
    /// RPC over in-process channel servers; the [`StorageRpc`] is built
    /// lazily so builder knobs set after the constructor still apply.
    Channel {
        cluster: Arc<StorageCluster>,
        rpc: Mutex<Option<Arc<StorageRpc>>>,
    },
    /// RPC over a live membership of caller-reachable nodes: TCP members
    /// ([`TcpConnector`]) or custom connectors (fault simulation).
    Mesh {
        cluster: Arc<StorageCluster>,
        membership: Membership,
        join: Mutex<Option<JoinServer>>,
    },
}

/// The one way to reach bag storage: a plane plus shared client knobs.
/// See the [module docs](self) for the plane table.
pub struct StorageEndpoint {
    plane: Plane,
    timeout: Duration,
    retry: RetryPolicy,
    writer_credit: Option<usize>,
    coalesce_chunks: usize,
    dispatch_threads: usize,
}

impl StorageEndpoint {
    fn with_plane(plane: Plane) -> Self {
        Self {
            plane,
            timeout: DEFAULT_REQUEST_TIMEOUT,
            retry: RetryPolicy::default(),
            writer_credit: None,
            coalesce_chunks: 0,
            dispatch_threads: DEFAULT_DISPATCH_THREADS,
        }
    }

    /// Direct in-process calls on `cluster` — no RPC boundary.
    pub fn direct(cluster: Arc<StorageCluster>) -> Self {
        Self::with_plane(Plane::Direct(cluster))
    }

    /// The RPC message protocol with inline dispatch: envelopes are
    /// built and served on the caller's thread. The full protocol
    /// without the thread hops, for colocated compute and storage.
    pub fn inline(cluster: Arc<StorageCluster>) -> Self {
        Self::with_plane(Plane::Inline(cluster))
    }

    /// RPC over in-process channel servers: per-node dispatch pools,
    /// real concurrency, no sockets. The servers start on first use and
    /// honor [`StorageEndpoint::with_dispatch_threads`] /
    /// [`StorageEndpoint::with_request_timeout`].
    pub fn channel(cluster: Arc<StorageCluster>) -> Self {
        Self::with_plane(Plane::Channel {
            cluster,
            rpc: Mutex::new(None),
        })
    }

    /// RPC over TCP to `hurricane-node` processes at `addrs` (one data
    /// address per node, in node-id order).
    ///
    /// The local cluster holds *metadata authority* — bag registry, seal
    /// state, placement and replication math — while every data-plane
    /// operation goes over the sockets; node `i`'s local shadow never
    /// stores chunks. Call [`StorageEndpoint::serve_joins`] to let more
    /// nodes join mid-job.
    pub fn tcp<I, S>(addrs: I, config: ClusterConfig) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let membership = Membership::new();
        let mut n = 0;
        for (i, addr) in addrs.into_iter().enumerate() {
            membership.join(Arc::new(TcpConnector {
                node: StorageNodeId(i as u32),
                addr: addr.into(),
            }));
            n = i + 1;
        }
        let cluster = StorageCluster::new(n, config);
        Self::with_plane(Plane::Mesh {
            cluster,
            membership,
            join: Mutex::new(None),
        })
    }

    /// RPC over caller-supplied connectors: `membership` must hold one
    /// [`crate::Connect`] per cluster node, index-aligned. The seam for
    /// fault-injection harnesses and hand-built transports
    /// ([`crate::membership::OnceConnect`]).
    pub fn custom(cluster: Arc<StorageCluster>, membership: Membership) -> Self {
        Self::with_plane(Plane::Mesh {
            cluster,
            membership,
            join: Mutex::new(None),
        })
    }

    // -- knobs ------------------------------------------------------------

    /// Per-request reply timeout (default 10 s).
    pub fn with_request_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Full retry policy for timed-out requests (default: fail fast).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Retry budget with the default backoff; `attempts` counts total
    /// tries (1 = fail fast).
    pub fn with_retry_attempts(self, attempts: u32) -> Self {
        let retry = RetryPolicy::with_attempts(attempts);
        self.with_retry_policy(retry)
    }

    /// Per-connection writer credit: how many requests one connection
    /// keeps in flight before the writer blocks.
    pub fn with_writer_credit(mut self, credit: usize) -> Self {
        self.writer_credit = Some(credit.max(1));
        self
    }

    /// Insert-coalescing window in chunks for minted clients (0 = off):
    /// staged inserts flush as batched envelopes.
    pub fn with_coalescing(mut self, chunks: usize) -> Self {
        self.coalesce_chunks = chunks;
        self
    }

    /// Per-node server dispatch pool size (`channel` plane only).
    pub fn with_dispatch_threads(mut self, threads: usize) -> Self {
        self.dispatch_threads = threads.max(1);
        self
    }

    // -- accessors --------------------------------------------------------

    /// The cluster holding this endpoint's metadata authority.
    pub fn cluster(&self) -> &Arc<StorageCluster> {
        match &self.plane {
            Plane::Direct(c) | Plane::Inline(c) => c,
            Plane::Channel { cluster, .. } | Plane::Mesh { cluster, .. } => cluster,
        }
    }

    /// The live membership view, if this plane has one (`channel`,
    /// `tcp`, `custom`). Direct and inline planes read the cluster
    /// itself and need no membership.
    pub fn membership(&self) -> Option<Membership> {
        match &self.plane {
            Plane::Direct(_) | Plane::Inline(_) => None,
            Plane::Channel { .. } => Some(self.channel_rpc().membership().clone()),
            Plane::Mesh { membership, .. } => Some(membership.clone()),
        }
    }

    /// The lazily started channel-plane [`StorageRpc`]. Panics on other
    /// planes (callers reaching for the rpc know they built `channel`).
    fn channel_rpc(&self) -> Arc<StorageRpc> {
        let Plane::Channel { cluster, rpc } = &self.plane else {
            panic!("not a channel endpoint");
        };
        rpc.lock()
            .get_or_insert_with(|| {
                Arc::new(StorageRpc::serve_with(
                    cluster.clone(),
                    self.dispatch_threads,
                    self.timeout,
                ))
            })
            .clone()
    }

    /// Opens a fresh data-plane port, or `None` on the direct plane
    /// (which has no RPC port by construction).
    pub fn port(&self) -> Option<RpcPort> {
        let mut port = match &self.plane {
            Plane::Direct(_) => return None,
            Plane::Inline(cluster) => RpcPort::inline(cluster.clone()),
            Plane::Channel { .. } => self.channel_rpc().port(),
            Plane::Mesh {
                cluster,
                membership,
                ..
            } => RpcPort::from_membership(cluster.clone(), membership.clone(), self.timeout),
        };
        port.set_retry_policy(self.retry);
        if let Some(credit) = self.writer_credit {
            port.set_writer_credit(credit);
        }
        Some(port)
    }

    /// Opens a bag client for `bag`. Give each client a distinct `seed`
    /// so placement cycles decorrelate across workers.
    pub fn client(&self, bag: BagId, seed: u64) -> BagClient {
        let port = match self.port() {
            None => StoragePort::Direct(self.cluster().clone()),
            Some(port) => StoragePort::Rpc(port),
        };
        let client = BagClient::with_port(port, bag, seed);
        if self.coalesce_chunks > 0 {
            client.with_coalescing(self.coalesce_chunks)
        } else {
            client
        }
    }

    // -- membership control ----------------------------------------------

    /// Publishes cluster nodes added since the last sync to the RPC
    /// plane. Required on the `channel` plane after
    /// [`StorageCluster::add_node`]; a no-op elsewhere (`tcp` joins
    /// arrive through the join server, direct/inline read the live
    /// cluster).
    pub fn sync(&self) {
        if let Plane::Channel { rpc, .. } = &self.plane {
            if let Some(rpc) = rpc.lock().as_ref() {
                rpc.sync();
            }
        }
    }

    /// Adds a storage node and publishes it to the RPC plane. Returns
    /// the new node's index. Existing clients pick it up on their next
    /// membership refresh. Not for the `tcp` plane, where nodes join
    /// themselves via [`StorageEndpoint::serve_joins`].
    pub fn add_node(&self) -> usize {
        let idx = self.cluster().add_node();
        self.sync();
        idx
    }

    /// Starts the join listener on `listen` (`tcp` plane): starting
    /// `hurricane-node --join` processes announce themselves here and
    /// enter the membership live. Returns the bound address.
    ///
    /// # Errors
    ///
    /// On non-`tcp`/`custom` planes, or when the listener cannot bind.
    pub fn serve_joins(&self, listen: &str) -> io::Result<SocketAddr> {
        let Plane::Mesh {
            cluster,
            membership,
            join,
        } = &self.plane
        else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "join server requires a tcp/custom endpoint",
            ));
        };
        let server = JoinServer::bind(cluster.clone(), membership.clone(), listen)?;
        let addr = server.local_addr();
        *join.lock() = Some(server);
        Ok(addr)
    }

    /// Tears the endpoint down: stops channel servers and the join
    /// listener. Remote `hurricane-node` processes are *not* stopped —
    /// they serve other drivers' connections independently.
    pub fn shutdown(&self) {
        match &self.plane {
            Plane::Channel { rpc, .. } => {
                if let Some(rpc) = rpc.lock().as_ref() {
                    rpc.shutdown();
                }
            }
            Plane::Mesh { join, .. } => {
                if let Some(server) = join.lock().take() {
                    server.shutdown();
                }
            }
            Plane::Direct(_) | Plane::Inline(_) => {}
        }
    }
}

impl std::fmt::Debug for StorageEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match &self.plane {
            Plane::Direct(_) => "direct",
            Plane::Inline(_) => "inline",
            Plane::Channel { .. } => "channel",
            Plane::Mesh { .. } => "mesh",
        };
        f.debug_struct("StorageEndpoint")
            .field("mode", &mode)
            .field("nodes", &self.cluster().num_nodes())
            .field("timeout", &self.timeout)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hurricane_format::Chunk;

    fn chunk(v: u64) -> Chunk {
        Chunk::from_vec(v.to_le_bytes().to_vec())
    }

    fn roundtrip(endpoint: &StorageEndpoint, n: u64) {
        let bag = endpoint.cluster().create_bag();
        let mut client = endpoint.client(bag, 7);
        for v in 0..n {
            client.insert(chunk(v)).unwrap();
        }
        endpoint.cluster().seal_bag(bag).unwrap();
        let mut got = 0;
        while client.remove_blocking().unwrap().is_some() {
            got += 1;
        }
        assert_eq!(got, n);
    }

    #[test]
    fn every_in_process_plane_roundtrips() {
        for make in [
            StorageEndpoint::direct as fn(Arc<StorageCluster>) -> StorageEndpoint,
            StorageEndpoint::inline,
            StorageEndpoint::channel,
        ] {
            let cluster = StorageCluster::new(3, ClusterConfig::default());
            let endpoint = make(cluster).with_retry_attempts(2);
            roundtrip(&endpoint, 40);
            endpoint.shutdown();
        }
    }

    #[test]
    fn direct_plane_has_no_port() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        assert!(StorageEndpoint::direct(cluster.clone()).port().is_none());
        assert!(StorageEndpoint::inline(cluster).port().is_some());
    }

    #[test]
    fn channel_add_node_is_visible_to_refreshed_clients() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let endpoint = StorageEndpoint::channel(cluster.clone());
        let mut client = endpoint.client(bag, 3);
        let idx = endpoint.add_node();
        client.refresh_membership();
        for v in 0..30 {
            client.insert(chunk(v)).unwrap();
        }
        assert!(
            cluster.node(idx).sample(bag).unwrap().total_chunks >= 9,
            "added node must receive its cyclic share"
        );
        endpoint.shutdown();
    }

    #[test]
    fn tcp_endpoint_reaches_real_sockets() {
        use crate::node::StorageNode;
        use crate::tcp::TcpNodeServer;

        let servers: Vec<TcpNodeServer> = (0..2)
            .map(|i| {
                TcpNodeServer::bind(Arc::new(StorageNode::new(StorageNodeId(i))), "127.0.0.1:0")
                    .unwrap()
            })
            .collect();
        let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
        let endpoint = StorageEndpoint::tcp(addrs, ClusterConfig::default())
            .with_request_timeout(Duration::from_secs(5));
        roundtrip(&endpoint, 24);
        // The local shadow nodes never stored a byte: the data went over
        // the wire.
        let bag = endpoint.cluster().create_bag();
        let mut client = endpoint.client(bag, 9);
        client.insert(chunk(99)).unwrap();
        for i in 0..2 {
            assert_eq!(
                endpoint.cluster().node(i).sample(bag).unwrap().total_chunks,
                0
            );
        }
        endpoint.shutdown();
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn serve_joins_rejects_in_process_planes() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let endpoint = StorageEndpoint::direct(cluster);
        assert!(endpoint.serve_joins("127.0.0.1:0").is_err());
    }
}
