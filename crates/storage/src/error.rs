//! Storage-layer error types.

use core::fmt;
use hurricane_common::{BagId, StorageNodeId};
use hurricane_format::CodecError;

/// Errors surfaced by storage nodes, the cluster, and bag clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The addressed storage node is down (crashed or unreachable).
    NodeDown(StorageNodeId),
    /// The addressed storage node is draining and rejects new inserts
    /// (paper §3.4: a node being removed stops accepting inserts while
    /// still serving removes).
    NodeDraining(StorageNodeId),
    /// The bag was sealed; no further inserts are allowed.
    BagSealed(BagId),
    /// The bag id is not registered with the cluster.
    UnknownBag(BagId),
    /// The bag was garbage-collected.
    BagCollected(BagId),
    /// Every replica of the addressed data is down.
    AllReplicasDown(BagId),
    /// The RPC transport to the addressed storage node is gone: its server
    /// loop shut down (or a network connection dropped). Unlike
    /// [`StorageError::NodeDown`], this is a property of the *connection*,
    /// not the node — the node may be healthy and reachable over a fresh
    /// transport.
    Disconnected(StorageNodeId),
    /// An RPC request got no reply within the client's timeout. The
    /// request may still execute at the server; callers must treat the
    /// operation's outcome as unknown.
    Timeout(StorageNodeId),
    /// The prefetcher's fetch loop terminated without reaching end-of-bag
    /// (its thread died or its transport was lost mid-stream). Consumers
    /// must not mistake this for a drained bag.
    PrefetchAborted,
    /// A work-bag record failed to decode.
    Codec(CodecError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NodeDown(n) => write!(f, "storage node {n} is down"),
            StorageError::NodeDraining(n) => {
                write!(f, "storage node {n} is draining and rejects inserts")
            }
            StorageError::BagSealed(b) => write!(f, "bag {b} is sealed against inserts"),
            StorageError::UnknownBag(b) => write!(f, "bag {b} is not registered"),
            StorageError::BagCollected(b) => write!(f, "bag {b} was garbage-collected"),
            StorageError::AllReplicasDown(b) => {
                write!(f, "all replicas holding bag {b} data are down")
            }
            StorageError::Disconnected(n) => {
                write!(f, "transport to storage node {n} is disconnected")
            }
            StorageError::Timeout(n) => {
                write!(f, "request to storage node {n} timed out")
            }
            StorageError::PrefetchAborted => {
                write!(f, "prefetch stream ended before end-of-bag")
            }
            StorageError::Codec(e) => write!(f, "work bag record corrupt: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<CodecError> for StorageError {
    fn from(e: CodecError) -> Self {
        StorageError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_subject() {
        assert!(StorageError::NodeDown(StorageNodeId(3))
            .to_string()
            .contains("sn3"));
        assert!(StorageError::BagSealed(BagId(9))
            .to_string()
            .contains("bag9"));
    }

    #[test]
    fn codec_error_converts() {
        let e: StorageError = CodecError::Truncated.into();
        assert!(matches!(e, StorageError::Codec(CodecError::Truncated)));
    }
}
