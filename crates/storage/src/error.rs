//! Storage-layer error types.

use core::fmt;
use hurricane_common::{BagId, StorageNodeId};
use hurricane_format::CodecError;

/// Errors surfaced by storage nodes, the cluster, and bag clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The addressed storage node is down (crashed or unreachable).
    NodeDown(StorageNodeId),
    /// The addressed storage node is draining and rejects new inserts
    /// (paper §3.4: a node being removed stops accepting inserts while
    /// still serving removes).
    NodeDraining(StorageNodeId),
    /// The bag was sealed; no further inserts are allowed.
    BagSealed(BagId),
    /// The bag id is not registered with the cluster.
    UnknownBag(BagId),
    /// The bag was garbage-collected.
    BagCollected(BagId),
    /// Every replica of the addressed data is down.
    AllReplicasDown(BagId),
    /// The RPC transport to the addressed storage node is gone: its server
    /// loop shut down (or a network connection dropped). Unlike
    /// [`StorageError::NodeDown`], this is a property of the *connection*,
    /// not the node — the node may be healthy and reachable over a fresh
    /// transport.
    Disconnected(StorageNodeId),
    /// An RPC request got no reply within the client's timeout. The
    /// request may still execute at the server; callers must treat the
    /// operation's outcome as unknown.
    Timeout(StorageNodeId),
    /// The prefetcher's fetch loop terminated without reaching end-of-bag
    /// (its thread died or its transport was lost mid-stream). Consumers
    /// must not mistake this for a drained bag.
    PrefetchAborted,
    /// A work-bag record failed to decode.
    Codec(CodecError),
    /// The node's data dir is out of space (`ENOSPC`): a segment-log
    /// append could not journal the operation. Non-retryable *at this
    /// node* — the disk stays full — but replicated writers route the
    /// data to the remaining replicas, like
    /// [`StorageError::NodeDraining`].
    DiskFull(StorageNodeId),
    /// A segment-log I/O operation failed for a reason other than space
    /// (a failed write, a read-back whose CRC no longer matches, a torn
    /// frame). Possibly transient, so retryable — and replicated callers
    /// additionally route around the node, like
    /// [`StorageError::NodeDown`].
    DiskIo(StorageNodeId),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NodeDown(n) => write!(f, "storage node {n} is down"),
            StorageError::NodeDraining(n) => {
                write!(f, "storage node {n} is draining and rejects inserts")
            }
            StorageError::BagSealed(b) => write!(f, "bag {b} is sealed against inserts"),
            StorageError::UnknownBag(b) => write!(f, "bag {b} is not registered"),
            StorageError::BagCollected(b) => write!(f, "bag {b} was garbage-collected"),
            StorageError::AllReplicasDown(b) => {
                write!(f, "all replicas holding bag {b} data are down")
            }
            StorageError::Disconnected(n) => {
                write!(f, "transport to storage node {n} is disconnected")
            }
            StorageError::Timeout(n) => {
                write!(f, "request to storage node {n} timed out")
            }
            StorageError::PrefetchAborted => {
                write!(f, "prefetch stream ended before end-of-bag")
            }
            StorageError::Codec(e) => write!(f, "work bag record corrupt: {e}"),
            StorageError::DiskFull(n) => {
                write!(f, "storage node {n} data dir is out of space")
            }
            StorageError::DiskIo(n) => {
                write!(f, "storage node {n} segment-log I/O failed")
            }
        }
    }
}

impl StorageError {
    /// Whether retrying the same operation against the *same node* can
    /// succeed. [`StorageError::DiskIo`] and timeouts are transient;
    /// [`StorageError::DiskFull`] is not (the disk stays full until an
    /// operator frees space), and neither are the bag-state errors.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            StorageError::Timeout(_) | StorageError::Disconnected(_) | StorageError::DiskIo(_)
        )
    }

    /// Whether a replicated caller should treat this node as unusable for
    /// the operation and route to the remaining replicas: the node is
    /// down, draining, or its disk can no longer journal
    /// ([`StorageError::DiskFull`] / [`StorageError::DiskIo`]).
    pub fn routes_around(&self) -> bool {
        matches!(
            self,
            StorageError::NodeDown(_)
                | StorageError::NodeDraining(_)
                | StorageError::DiskFull(_)
                | StorageError::DiskIo(_)
        )
    }

    /// Classifies a segment-log I/O failure at `node`: `ENOSPC` becomes
    /// [`StorageError::DiskFull`], anything else [`StorageError::DiskIo`].
    pub fn from_disk_io(node: StorageNodeId, e: &std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::StorageFull || e.raw_os_error() == Some(28) {
            StorageError::DiskFull(node)
        } else {
            StorageError::DiskIo(node)
        }
    }
}

impl std::error::Error for StorageError {}

impl From<CodecError> for StorageError {
    fn from(e: CodecError) -> Self {
        StorageError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_subject() {
        assert!(StorageError::NodeDown(StorageNodeId(3))
            .to_string()
            .contains("sn3"));
        assert!(StorageError::BagSealed(BagId(9))
            .to_string()
            .contains("bag9"));
    }

    #[test]
    fn codec_error_converts() {
        let e: StorageError = CodecError::Truncated.into();
        assert!(matches!(e, StorageError::Codec(CodecError::Truncated)));
    }

    #[test]
    fn disk_errors_classify_from_io() {
        let n = StorageNodeId(2);
        let enospc = std::io::Error::from_raw_os_error(28);
        assert_eq!(
            StorageError::from_disk_io(n, &enospc),
            StorageError::DiskFull(n)
        );
        let kind = std::io::Error::new(std::io::ErrorKind::StorageFull, "full");
        assert_eq!(
            StorageError::from_disk_io(n, &kind),
            StorageError::DiskFull(n)
        );
        let other = std::io::Error::other("bad sector");
        assert_eq!(
            StorageError::from_disk_io(n, &other),
            StorageError::DiskIo(n)
        );
    }

    #[test]
    fn disk_errors_route_around_but_only_io_retries() {
        let n = StorageNodeId(0);
        assert!(StorageError::DiskFull(n).routes_around());
        assert!(StorageError::DiskIo(n).routes_around());
        assert!(!StorageError::DiskFull(n).is_retryable());
        assert!(StorageError::DiskIo(n).is_retryable());
        assert!(StorageError::Timeout(n).is_retryable());
        assert!(!StorageError::BagSealed(BagId(1)).routes_around());
    }
}
