//! Storage-layer error types.

use core::fmt;
use hurricane_common::{BagId, StorageNodeId};
use hurricane_format::CodecError;

/// Errors surfaced by storage nodes, the cluster, and bag clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The addressed storage node is down (crashed or unreachable).
    NodeDown(StorageNodeId),
    /// The addressed storage node is draining and rejects new inserts
    /// (paper §3.4: a node being removed stops accepting inserts while
    /// still serving removes).
    NodeDraining(StorageNodeId),
    /// The bag was sealed; no further inserts are allowed.
    BagSealed(BagId),
    /// The bag id is not registered with the cluster.
    UnknownBag(BagId),
    /// The bag was garbage-collected.
    BagCollected(BagId),
    /// Every replica of the addressed data is down.
    AllReplicasDown(BagId),
    /// A work-bag record failed to decode.
    Codec(CodecError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NodeDown(n) => write!(f, "storage node {n} is down"),
            StorageError::NodeDraining(n) => {
                write!(f, "storage node {n} is draining and rejects inserts")
            }
            StorageError::BagSealed(b) => write!(f, "bag {b} is sealed against inserts"),
            StorageError::UnknownBag(b) => write!(f, "bag {b} is not registered"),
            StorageError::BagCollected(b) => write!(f, "bag {b} was garbage-collected"),
            StorageError::AllReplicasDown(b) => {
                write!(f, "all replicas holding bag {b} data are down")
            }
            StorageError::Codec(e) => write!(f, "work bag record corrupt: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<CodecError> for StorageError {
    fn from(e: CodecError) -> Self {
        StorageError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_subject() {
        assert!(StorageError::NodeDown(StorageNodeId(3))
            .to_string()
            .contains("sn3"));
        assert!(StorageError::BagSealed(BagId(9))
            .to_string()
            .contains("bag9"));
    }

    #[test]
    fn codec_error_converts() {
        let e: StorageError = CodecError::Truncated.into();
        assert!(matches!(e, StorageError::Codec(CodecError::Truncated)));
    }
}
