//! Hurricane's decentralized bag storage layer.
//!
//! All input, intermediate, and output data in Hurricane lives in *bags*
//! (paper §3.3): unordered collections of fixed-size chunks spread
//! uniformly across every storage node. Bags expose two core operations —
//! `insert(chunk)` and `remove() -> chunk` — with the guarantee that each
//! inserted chunk is removed **exactly once**, which is what lets any
//! number of task clones share one input bag without coordination.
//!
//! Layout of this crate:
//!
//! * [`node`] — one storage node: append-only chunk logs per bag, a
//!   sequential read pointer (exactly-once removal), sampling, rewind,
//!   sealing, and fault injection.
//! * [`cluster`] — the set of storage nodes plus bag metadata, primary–
//!   backup replication, failover, and dynamic node addition / draining
//!   (paper §3.4, §4.4).
//! * [`placement`] — the pseudorandom cyclic permutation policy that
//!   decides which node receives each insert / serves each remove. Pure,
//!   shared with the simulator.
//! * [`batch`] — batch-sampling math: the utilization lower bound of
//!   paper Eq. 1 and a Monte-Carlo counterpart used to validate it.
//! * [`rpc`] — the explicit message boundary between compute and storage:
//!   request/response enums covering the node API, a [`rpc::Transport`]
//!   trait (in-process channels today, a network socket tomorrow),
//!   per-node server loops, the correlation layer that lets clients
//!   keep many requests in flight, and retry-safe request semantics
//!   (bounded retransmission under a server-side dedup window, so a
//!   duplicated or retried envelope can never double-insert or lose a
//!   removed chunk).
//! * [`bag`] — `BagClient`, the per-worker handle combining placement with
//!   cluster access over either the direct or the RPC port; [`prefetch`]
//!   adds the b-outstanding-requests pipeline.
//! * [`segment`] — the durable storage plane (`SEGMENT.md`): append-only
//!   CRC-framed segment logs per `(bag, origin)` stream, on disk or on
//!   the fault simulator's in-memory virtual disk. Durable nodes
//!   ([`StorageNode::durable`]) journal every append, pointer advance,
//!   and lifecycle event, recover all of it by log scan on restart, and
//!   spill cold chunks back to the log under a resident-memory budget.
//! * [`workbag`] — typed bags of task descriptors used for decentralized
//!   scheduling (ready / running / done, paper §4.1).

pub mod bag;
pub mod batch;
pub mod cluster;
pub mod endpoint;
pub mod error;
pub mod membership;
pub mod node;
pub mod placement;
pub mod prefetch;
pub mod rpc;
pub mod segment;
pub mod tcp;
pub mod wire;
pub mod workbag;

pub use bag::{BagClient, BatchRemoveResult, RemoveResult};
pub use cluster::{ClusterConfig, DurabilityConfig, StorageCluster};
pub use endpoint::StorageEndpoint;
pub use error::StorageError;
pub use membership::{Connect, Member, Membership, OnceConnect};
pub use node::{next_run_id, BagSample, NodeRemoveBatch, StorageNode, TagSegment};
pub use rpc::{
    ChunkRun, PortStats, ReplyEnvelope, RequestEnvelope, RetryPolicy, RpcPort, ServedKind,
    ServerDedup, StorageRequest, StorageResponse, StorageRpc, Transport,
};
pub use segment::{SegmentLog, SegmentStore};
pub use tcp::{join_cluster, JoinServer, TcpConnector, TcpNodeServer, TcpTransport};
pub use workbag::WorkBag;
