//! Epoch-versioned cluster membership: the live node view that lets the
//! RPC plane grow mid-job.
//!
//! Before this module, every RPC surface froze the node set at
//! construction time: `StorageRpc::serve` snapshotted the cluster,
//! `RpcPort` held a fixed connection vector, and a node added to the
//! cluster afterwards was reachable only through the direct in-process
//! API. A [`Membership`] is the shared, versioned view that replaces
//! those snapshots: an ordered list of members (index = cluster node
//! index) plus an **epoch** counter bumped on every change. Holders of
//! the view — [`crate::rpc::RpcPort`] via
//! [`crate::rpc::RpcPort::refresh_membership`], and through it
//! [`crate::BagClient`] and the prefetcher — compare the epoch they last
//! saw against [`Membership::epoch`] and extend their connection sets
//! (and placement cycles) when it moved.
//!
//! Members carry a [`Connect`] factory rather than a live connection, so
//! one membership serves any number of ports: each port dials its own
//! private connections (the RPC layer's connections are not shareable —
//! they hold per-client correlation state). The factory abstracts the
//! transport exactly like [`crate::rpc::Transport`] does: in-process
//! channel servers, inline dispatch, a TCP address to dial, or a
//! fault-injection harness all plug in the same way.
//!
//! Join order is append-only and indices are never reused: a member's
//! index is its [`hurricane_common::StorageNodeId`], which placement
//! arithmetic (`primary + k` replica walks) depends on. "Leave" is
//! *draining* (paper §3.4) — the node refuses inserts, serves its
//! remaining chunks, and is decommissioned only once drained — so a
//! departed node keeps its slot; its connector simply starts failing
//! with [`StorageError::Disconnected`] once the process is gone, which
//! the replica failover path already tolerates.

use crate::error::StorageError;
use crate::rpc::Transport;
use hurricane_common::StorageNodeId;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Dials one storage node: the connection factory a [`Membership`] entry
/// carries. Implementations exist for the in-process channel server
/// (`StorageRpc`), inline dispatch, the TCP transport, and test
/// harnesses.
pub trait Connect: Send + Sync {
    /// Opens a fresh connection to the node. Called once per port per
    /// member; the returned transport is owned by that port alone.
    fn connect(&self) -> Result<Box<dyn Transport>, StorageError>;
}

/// One entry of the membership view.
#[derive(Clone)]
pub struct Member {
    /// The node's cluster identity — always equal to its index in the
    /// view (indices are never reused; see the module docs).
    pub node: StorageNodeId,
    /// Factory for private connections to the node.
    pub connector: Arc<dyn Connect>,
}

impl std::fmt::Debug for Member {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Member").field("node", &self.node).finish()
    }
}

#[derive(Default)]
struct Inner {
    /// Bumped on every view change. Readers cache the epoch they last
    /// acted on and refresh when it moves — one relaxed load on the hot
    /// path, no lock.
    epoch: AtomicU64,
    view: RwLock<Vec<Member>>,
}

/// A shared, epoch-versioned view of the storage node set. Cheap to
/// clone (one `Arc`); all clones observe the same view.
#[derive(Clone, Default)]
pub struct Membership {
    inner: Arc<Inner>,
}

impl Membership {
    /// Creates an empty membership (epoch 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current view version. Moves on every [`Membership::join`];
    /// equality with a cached value means the cached view is current.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Number of members ever joined (drained members keep their slot).
    pub fn len(&self) -> usize {
        self.inner.view.read().len()
    }

    /// Whether no member has joined yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a member, assigning it the next index as its node id, and
    /// bumps the epoch. Returns the assigned id.
    pub fn join(&self, connector: Arc<dyn Connect>) -> StorageNodeId {
        let mut view = self.inner.view.write();
        let node = StorageNodeId(view.len() as u32);
        view.push(Member { node, connector });
        // Publish the new length only after the entry is in place; the
        // write lock orders the push, the Release pairs with `epoch`'s
        // Acquire.
        self.inner.epoch.fetch_add(1, Ordering::Release);
        node
    }

    /// A snapshot of the current view, in index order.
    pub fn members(&self) -> Vec<Member> {
        self.inner.view.read().clone()
    }

    /// The member at `idx`, if joined.
    pub fn member(&self, idx: usize) -> Option<Member> {
        self.inner.view.read().get(idx).cloned()
    }
}

/// A [`Connect`] that hands out one pre-built transport, then fails.
///
/// The adapter for call sites that construct a connection by hand (a
/// loopback pair, a pre-dialed socket, a harness transport) and want it
/// in a [`Membership`]: the first dial returns the transport, every
/// later dial reports [`StorageError::Disconnected`] — which is accurate,
/// since nothing can re-create the hand-built connection.
pub struct OnceConnect {
    node: StorageNodeId,
    slot: parking_lot::Mutex<Option<Box<dyn Transport>>>,
}

impl OnceConnect {
    /// Wraps a ready transport for a one-time hand-out.
    pub fn new(transport: Box<dyn Transport>) -> Arc<Self> {
        Arc::new(Self {
            node: transport.node(),
            slot: parking_lot::Mutex::new(Some(transport)),
        })
    }
}

impl Connect for OnceConnect {
    fn connect(&self) -> Result<Box<dyn Transport>, StorageError> {
        self.slot
            .lock()
            .take()
            .ok_or(StorageError::Disconnected(self.node))
    }
}

impl std::fmt::Debug for OnceConnect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnceConnect")
            .field("node", &self.node)
            .finish()
    }
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Membership")
            .field("epoch", &self.epoch())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::StorageNode;
    use crate::rpc::InlineTransport;

    struct InlineConnector {
        node: Arc<StorageNode>,
    }

    impl Connect for InlineConnector {
        fn connect(&self) -> Result<Box<dyn Transport>, StorageError> {
            Ok(Box::new(InlineTransport::new(self.node.clone())))
        }
    }

    #[test]
    fn join_assigns_sequential_ids_and_bumps_epoch() {
        let ms = Membership::new();
        assert_eq!(ms.epoch(), 0);
        assert!(ms.is_empty());
        let a = ms.join(Arc::new(InlineConnector {
            node: Arc::new(StorageNode::new(StorageNodeId(0))),
        }));
        let b = ms.join(Arc::new(InlineConnector {
            node: Arc::new(StorageNode::new(StorageNodeId(1))),
        }));
        assert_eq!((a, b), (StorageNodeId(0), StorageNodeId(1)));
        assert_eq!(ms.epoch(), 2);
        assert_eq!(ms.len(), 2);
        let view = ms.members();
        assert_eq!(view[0].node, StorageNodeId(0));
        assert_eq!(view[1].node, StorageNodeId(1));
    }

    #[test]
    fn clones_share_one_view() {
        let ms = Membership::new();
        let other = ms.clone();
        ms.join(Arc::new(InlineConnector {
            node: Arc::new(StorageNode::new(StorageNodeId(0))),
        }));
        assert_eq!(other.len(), 1);
        assert_eq!(other.epoch(), ms.epoch());
    }

    #[test]
    fn member_connector_dials() {
        let ms = Membership::new();
        let node = Arc::new(StorageNode::new(StorageNodeId(0)));
        ms.join(Arc::new(InlineConnector { node }));
        let member = ms.member(0).unwrap();
        let transport = member.connector.connect().unwrap();
        assert_eq!(transport.node(), StorageNodeId(0));
    }
}
